//! Workspace model: token streams plus the structural facts the rules need.
//!
//! Extraction is token-based (no AST): functions with brace-matched bodies,
//! enum variant lists, `#[cfg(test)]`-region tracking, impl-block method
//! qualification, lock-typed field discovery, and "pattern position" regions
//! (match arms, `matches!` second argument, `let`/`if let`/`while let`
//! patterns) so rules can tell construction from matching.

use std::collections::BTreeSet;
use std::fs;
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok, TokKind};

/// A function item extracted from a file.
#[derive(Debug, Clone)]
pub struct Function {
    /// Simple name (`handle`).
    pub name: String,
    /// Qualified name (`AmCore::handle` for impl methods, else the simple name).
    pub qual: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, excluding the outer braces.
    pub body: Range<usize>,
    /// True if the function is a `#[test]` or lives inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// An enum item with its variants.
#[derive(Debug, Clone)]
pub struct EnumDef {
    pub name: String,
    pub line: u32,
    pub variants: Vec<(String, u32)>,
}

/// One parsed source file.
#[derive(Debug)]
pub struct FileModel {
    /// Path relative to the workspace root (or the bare file name in fixture mode).
    pub rel: String,
    /// Crate directory name, e.g. `elan-rt` (empty in fixture mode).
    pub crate_name: String,
    pub toks: Vec<Tok>,
    pub functions: Vec<Function>,
    pub enums: Vec<EnumDef>,
    /// Field names declared with a `Mutex<..>` type anywhere in the file.
    pub mutex_fields: BTreeSet<String>,
    /// Field names declared with a `RwLock<..>` type anywhere in the file.
    pub rwlock_fields: BTreeSet<String>,
    /// Token-index ranges that are in *pattern* position.
    pub pattern_regions: Vec<Range<usize>>,
}

impl FileModel {
    /// True if token index `i` falls inside any pattern region.
    pub fn in_pattern(&self, i: usize) -> bool {
        self.pattern_regions.iter().any(|r| r.contains(&i))
    }

    /// The innermost function whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&Function> {
        self.functions
            .iter()
            .filter(|f| f.body.contains(&i))
            .min_by_key(|f| f.body.end - f.body.start)
    }

    /// True if token index `i` is inside test-only code (a `#[test]` fn or a
    /// `#[cfg(test)]` region). Tokens outside any function (module items) are
    /// treated as non-test unless they sit inside a test function body.
    pub fn is_test_at(&self, i: usize) -> bool {
        self.enclosing_fn(i).map(|f| f.is_test).unwrap_or(false)
    }
}

/// The whole parsed workspace (or a single fixture file).
#[derive(Debug)]
pub struct Workspace {
    pub files: Vec<FileModel>,
    /// True when analysing a standalone fixture: every rule applies to every file.
    pub fixture_mode: bool,
    /// Workspace root directory (None in fixture mode / unit tests). Rules
    /// that read committed manifests (WIRE_COMPAT) resolve them against this.
    pub root: Option<PathBuf>,
}

impl Workspace {
    /// Parse every `.rs` file under `<root>/crates/*/src` (excluding the
    /// checker itself, `elan-verify`), plus the facade crate's own sources:
    /// `<root>/src` (including `src/bin/*`) as crate `elan` and
    /// `<root>/tests` as crate `tests`, so the process-split entry points
    /// and integration tests are under the same discipline.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let crates_dir = root.join("crates");
        let mut files = Vec::new();
        let entries = fs::read_dir(&crates_dir)
            .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let crate_name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            if crate_name == "elan-verify" {
                continue; // the checker does not analyse itself
            }
            let src = dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let mut rs_files = Vec::new();
            collect_rs(&src, &mut rs_files)?;
            rs_files.sort();
            for path in rs_files {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(parse_file(&path, rel, crate_name.clone())?);
            }
        }
        // Root-crate scan roots: the facade's src/ (with the coordinator and
        // worker bins) and the workspace-level integration tests.
        for (sub, crate_name) in [("src", "elan"), ("tests", "tests")] {
            let dir = root.join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut rs_files = Vec::new();
            collect_rs(&dir, &mut rs_files)?;
            rs_files.sort();
            for path in rs_files {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(parse_file(&path, rel, crate_name.to_string())?);
            }
        }
        if files.is_empty() {
            return Err(format!(
                "no Rust sources found under {}",
                crates_dir.display()
            ));
        }
        Ok(Workspace {
            files,
            fixture_mode: false,
            root: Some(root.to_path_buf()),
        })
    }

    /// Parse a single standalone file as a fixture workspace.
    pub fn load_fixture(path: &Path) -> Result<Workspace, String> {
        let rel = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("fixture.rs")
            .to_string();
        let file = parse_file(path, rel, String::new())?;
        Ok(Workspace {
            files: vec![file],
            fixture_mode: true,
            root: None,
        })
    }

    pub fn file_named(&self, suffix: &str) -> Option<&FileModel> {
        self.files.iter().find(|f| f.rel.ends_with(suffix))
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn parse_file(path: &Path, rel: String, crate_name: String) -> Result<FileModel, String> {
    let src =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Ok(parse_source(&src, rel, crate_name))
}

/// Parse source text into a [`FileModel`]. Exposed for unit tests.
pub fn parse_source(src: &str, rel: String, crate_name: String) -> FileModel {
    let toks = lex(src);
    let mut functions = Vec::new();
    let mut enums = Vec::new();
    let mut mutex_fields = BTreeSet::new();
    let mut rwlock_fields = BTreeSet::new();

    // --- item scan: functions, enums, impl blocks, test regions -----------
    let n = toks.len();
    let mut depth: i32 = 0;
    // Brace depths at which a `#[cfg(test)]` mod body opened.
    let mut test_region: Vec<i32> = Vec::new();
    // (type name, brace depth of the impl body `{`).
    let mut impl_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_test = false;
    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        match t.text.as_str() {
            "#" => {
                // attribute: `#[...]` or `#![...]`
                let mut j = i + 1;
                if j < n && toks[j].is("!") {
                    j += 1;
                }
                if j < n && toks[j].is("[") {
                    let end = match_bracket(&toks, j, "[", "]");
                    let body = &toks[j + 1..end.min(n)];
                    let has_test = body.iter().any(|t| t.is_ident("test"));
                    let has_not = body.iter().any(|t| t.is_ident("not"));
                    if has_test && !has_not {
                        pending_test = true;
                    }
                    i = end + 1;
                    // A test attribute only opens a test region if it
                    // annotates an *item*. Statement-level attributes
                    // (`#[cfg(test)] self.cvar.notify_all();`) must not
                    // leak `pending_test` onto the next function in the
                    // file, so drop it unless the next token can begin
                    // an item (or another attribute).
                    if pending_test
                        && !toks.get(i).is_some_and(|t| {
                            matches!(
                                t.text.as_str(),
                                "#" | "pub"
                                    | "mod"
                                    | "impl"
                                    | "fn"
                                    | "struct"
                                    | "enum"
                                    | "union"
                                    | "trait"
                                    | "const"
                                    | "static"
                                    | "type"
                                    | "unsafe"
                                    | "async"
                                    | "extern"
                                    | "use"
                                    | "macro_rules"
                            )
                        })
                    {
                        pending_test = false;
                    }
                } else {
                    i += 1;
                }
            }
            "{" => {
                depth += 1;
                i += 1;
            }
            "}" => {
                depth -= 1;
                while test_region.last().is_some_and(|&d| d > depth) {
                    test_region.pop();
                }
                while impl_stack.last().is_some_and(|(_, d)| *d > depth) {
                    impl_stack.pop();
                }
                i += 1;
            }
            "mod" => {
                // `mod name {` or `mod name;`
                let mut j = i + 1;
                while j < n && !(toks[j].is("{") || toks[j].is(";")) {
                    j += 1;
                }
                if j < n && toks[j].is("{") {
                    depth += 1;
                    if pending_test {
                        test_region.push(depth);
                    }
                }
                pending_test = false;
                i = j + 1;
            }
            "impl" => {
                // `impl<G> Type { .. }` or `impl Trait for Type { .. }`
                let mut j = i + 1;
                // skip generic params
                if j < n && toks[j].is("<") {
                    j = skip_angles(&toks, j);
                }
                let mut name = String::new();
                let mut after_for = false;
                while j < n && !toks[j].is("{") && !toks[j].is(";") {
                    if toks[j].is_ident("for") {
                        after_for = true;
                        name.clear();
                    } else if toks[j].kind == TokKind::Ident && name.is_empty() {
                        name = toks[j].text.clone();
                        if after_for {
                            break;
                        }
                    } else if toks[j].is("<") {
                        j = skip_angles(&toks, j);
                        continue;
                    }
                    j += 1;
                }
                while j < n && !toks[j].is("{") && !toks[j].is(";") {
                    j += 1;
                }
                if j < n && toks[j].is("{") {
                    depth += 1;
                    impl_stack.push((name, depth));
                }
                pending_test = false;
                i = j + 1;
            }
            "fn" => {
                // `fn` not followed by an identifier is a fn-pointer type
                // (`f: fn(u32) -> u32`), not an item.
                if i + 1 >= n || toks[i + 1].kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let fn_line = t.line;
                let name = toks[i + 1].text.clone();
                // find body `{` (paren depth 0) or `;` (trait decl)
                let mut j = i + 2;
                let mut paren: i32 = 0;
                while j < n {
                    match toks[j].text.as_str() {
                        "(" | "[" => paren += 1,
                        ")" | "]" => paren -= 1,
                        "{" if paren == 0 => break,
                        ";" if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j < n && toks[j].is("{") {
                    let end = match_bracket(&toks, j, "{", "}");
                    let is_test = pending_test || !test_region.is_empty();
                    let qual = match impl_stack.last() {
                        Some((ty, _)) if !ty.is_empty() => format!("{ty}::{name}"),
                        _ => name.clone(),
                    };
                    functions.push(Function {
                        name,
                        qual,
                        line: fn_line,
                        body: j + 1..end,
                        is_test,
                    });
                    pending_test = false;
                    // continue scanning *inside* the body so nested items and
                    // inner test mods are still discovered
                    depth += 1;
                    i = j + 1;
                } else {
                    pending_test = false;
                    i = j + 1;
                }
            }
            "enum" => {
                if i + 1 < n && toks[i + 1].kind == TokKind::Ident {
                    let name = toks[i + 1].text.clone();
                    let line = toks[i + 1].line;
                    let mut j = i + 2;
                    if j < n && toks[j].is("<") {
                        j = skip_angles(&toks, j);
                    }
                    if j < n && toks[j].is("{") {
                        let end = match_bracket(&toks, j, "{", "}");
                        let variants = parse_variants(&toks, j + 1, end);
                        enums.push(EnumDef {
                            name,
                            line,
                            variants,
                        });
                        depth += 1;
                        i = j + 1;
                        pending_test = false;
                        continue;
                    }
                }
                pending_test = false;
                i += 1;
            }
            "struct" | "const" | "static" | "use" | "type" | "trait" => {
                pending_test = false;
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }

    // --- lock-typed field discovery ---------------------------------------
    for i in 0..n {
        if toks[i].is(":") && toks[i].kind == TokKind::Punct && i > 0 {
            if toks[i - 1].kind != TokKind::Ident {
                continue;
            }
            let field = &toks[i - 1].text;
            // scan a short window after the colon, stopping at separators that
            // cannot belong to the field's own type head
            let mut j = i + 1;
            let stop = (i + 9).min(n);
            while j < stop {
                match toks[j].text.as_str() {
                    "," | ";" | ")" | "}" | "=" => break,
                    "Mutex" => {
                        mutex_fields.insert(field.clone());
                        break;
                    }
                    "RwLock" => {
                        rwlock_fields.insert(field.clone());
                        break;
                    }
                    _ => j += 1,
                }
            }
        }
    }

    // --- pattern regions ---------------------------------------------------
    let pattern_regions = find_pattern_regions(&toks);

    FileModel {
        rel,
        crate_name,
        toks,
        functions,
        enums,
        mutex_fields,
        rwlock_fields,
        pattern_regions,
    }
}

/// Returns the index of the bracket matching `toks[open]` (which must be
/// `open_s`). If unbalanced, returns `toks.len()`.
pub fn match_bracket(toks: &[Tok], open: usize, open_s: &str, close_s: &str) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is(open_s) {
            depth += 1;
        } else if t.is(close_s) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len()
}

/// Skip a balanced `<...>` run starting at `toks[i] == "<"`. `>>` closes two.
fn skip_angles(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            ">>" => {
                depth -= 2;
                if depth <= 0 {
                    return j + 1;
                }
            }
            "{" | ";" => return j, // malformed; bail
            _ => {}
        }
        j += 1;
    }
    j
}

fn parse_variants(toks: &[Tok], start: usize, end: usize) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        // skip attributes
        while i < end && toks[i].is("#") {
            if i + 1 < end && toks[i + 1].is("[") {
                i = match_bracket(toks, i + 1, "[", "]") + 1;
            } else {
                i += 1;
            }
        }
        if i >= end {
            break;
        }
        if toks[i].kind == TokKind::Ident {
            out.push((toks[i].text.clone(), toks[i].line));
            i += 1;
            // skip payload
            if i < end && toks[i].is("(") {
                i = match_bracket(toks, i, "(", ")") + 1;
            } else if i < end && toks[i].is("{") {
                i = match_bracket(toks, i, "{", "}") + 1;
            } else if i < end && toks[i].is("=") {
                while i < end && !toks[i].is(",") {
                    i += 1;
                }
            }
            // skip trailing comma
            if i < end && toks[i].is(",") {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    out
}

fn find_pattern_regions(toks: &[Tok]) -> Vec<Range<usize>> {
    let mut regions = Vec::new();
    let n = toks.len();
    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        if t.is_ident("match") && (i == 0 || !(toks[i - 1].is(".") || toks[i - 1].is("::"))) {
            // find body `{` at paren depth 0
            let mut j = i + 1;
            let mut paren = 0i32;
            while j < n {
                match toks[j].text.as_str() {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    "{" if paren == 0 => break,
                    ";" if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j < n && toks[j].is("{") {
                let body_end = match_bracket(toks, j, "{", "}");
                collect_match_arm_patterns(toks, j + 1, body_end, &mut regions);
            }
            i += 1;
        } else if t.is_ident("matches") && i + 2 < n && toks[i + 1].is("!") && toks[i + 2].is("(") {
            let close = match_bracket(toks, i + 2, "(", ")");
            // find top-level comma
            let mut depth = 0i32;
            let mut k = i + 3;
            while k < close.min(n) {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => {
                        regions.push(k + 1..close);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            i += 3;
        } else if t.is_ident("let") {
            // pattern = tokens between `let` and the first top-level `=`
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < n {
                match toks[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" if depth > 0 => depth -= 1,
                    "=" if depth == 0 && toks[j].kind == TokKind::Punct => break,
                    ";" if depth == 0 => break,
                    "}" | ")" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j > i + 1 {
                regions.push(i + 1..j);
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

fn collect_match_arm_patterns(
    toks: &[Tok],
    start: usize,
    end: usize,
    regions: &mut Vec<Range<usize>>,
) {
    let mut i = start;
    while i < end {
        // arm pattern runs until `=>` at relative depth 0
        let arm_start = i;
        let mut depth = 0i32;
        let mut j = i;
        let mut found = false;
        while j < end {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=>" if depth == 0 => {
                    found = true;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if !found {
            break;
        }
        regions.push(arm_start..j);
        // skip arm value
        let mut k = j + 1;
        if k < end && toks[k].is("{") {
            k = match_bracket(toks, k, "{", "}") + 1;
            if k < end && toks[k].is(",") {
                k += 1;
            }
        } else {
            let mut d = 0i32;
            while k < end {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => {
                        if d == 0 {
                            break;
                        }
                        d -= 1;
                    }
                    "," if d == 0 => {
                        k += 1;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        i = k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        parse_source(src, "t.rs".into(), "t".into())
    }

    #[test]
    fn extracts_functions_and_impls() {
        let m = model(
            "impl Foo { fn bar(&self) -> u32 { 1 } }\nfn baz() {}\n\
             #[cfg(test)] mod tests { #[test] fn t1() { baz(); } }",
        );
        let names: Vec<&str> = m.functions.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(names, vec!["Foo::bar", "baz", "t1"]);
        assert!(!m.functions[0].is_test);
        assert!(!m.functions[1].is_test);
        assert!(m.functions[2].is_test);
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let m = model("#[cfg(not(test))] fn a() {}");
        assert!(!m.functions[0].is_test);
    }

    #[test]
    fn statement_level_test_attrs_do_not_leak_onto_later_fns() {
        let m = model(
            "fn a(&self) { #[cfg(test)] self.notify(); }\n\
             fn b() {}\n\
             #[cfg(test)] fn c() {}",
        );
        assert!(
            !m.functions[0].is_test,
            "a has a test *statement*, not attr"
        );
        assert!(!m.functions[1].is_test, "b must not inherit the leak");
        assert!(m.functions[2].is_test, "c is genuinely cfg(test)");
    }

    #[test]
    fn extracts_enum_variants() {
        let m = model("pub enum Msg { A, B(u32), C { x: u8 }, #[doc = \"d\"] D, }");
        let v: Vec<&str> = m.enums[0]
            .variants
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(v, vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn discovers_lock_fields() {
        let m = model(
            "struct S { state: Mutex<u32>, senders: RwLock<HashMap<K, V>>, \
             chaos: Option<Mutex<E>>, plain: u32 }",
        );
        assert!(m.mutex_fields.contains("state"));
        assert!(m.mutex_fields.contains("chaos"));
        assert!(m.rwlock_fields.contains("senders"));
        assert!(!m.mutex_fields.contains("plain"));
    }

    #[test]
    fn match_arms_are_pattern_regions() {
        let m = model(
            "fn f(m: Msg) { match m { Msg::A => { go(Msg::B) } Msg::C { x } => x, _ => {} } }",
        );
        // Msg::A and Msg::C are in pattern position; Msg::B (arm value) is not.
        let find = |name: &str| {
            m.toks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.is_ident(name))
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        };
        let a = find("A")[0];
        let b = find("B")[0];
        let c = find("C")[0];
        assert!(m.in_pattern(a));
        assert!(!m.in_pattern(b));
        assert!(m.in_pattern(c));
    }

    #[test]
    fn if_let_and_matches_are_pattern_regions() {
        let m = model(
            "fn f(m: Msg) -> bool { if let Msg::A = m { return true; } matches!(m, Msg::B) }",
        );
        let idx: Vec<usize> = m
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("A") || t.is_ident("B"))
            .map(|(i, _)| i)
            .collect();
        for i in idx {
            assert!(m.in_pattern(i), "token {i} should be in a pattern region");
        }
    }
}
