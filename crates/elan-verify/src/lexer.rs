//! A lightweight Rust lexer sufficient for invariant analysis.
//!
//! This is deliberately *not* a full Rust lexer. It tokenises identifiers,
//! punctuation, and literals while stripping comments and string contents so
//! that the higher-level model extraction (functions, enums, match arms, lock
//! acquisition sites) can operate on a clean token stream with accurate line
//! numbers. It handles the constructs that would otherwise corrupt brace
//! matching: line/block comments (nested), string literals with escapes, raw
//! strings with hash fences, char literals vs. lifetimes, and multi-character
//! operators such as `=>`, `::`, `->`, `..=`.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `match`, `self`, `foo_bar`, ...).
    Ident,
    /// Integer or float literal (value content preserved in `text`).
    Number,
    /// String, raw string, char, or byte literal (content replaced by a
    /// canonical placeholder so embedded braces cannot confuse matching).
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Single punctuation character: `{ } ( ) [ ] ; , . & * + - / % ! ? < > = | ^ @ # $ : `
    Punct,
    /// Multi-character operator: `:: -> => == != <= >= && || .. ..= ... << >> += -= *= /=`
    Op,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Lex `src` into a token vector. Never fails: unknown bytes are skipped.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::with_capacity(src.len() / 4);
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    macro_rules! push {
        ($kind:expr, $text:expr) => {
            toks.push(Tok {
                kind: $kind,
                text: $text,
                line,
            })
        };
    }

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < n && b[i + 1] == '/' => {
                // line comment (incl. doc comments)
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // block comment, possibly nested
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                // string literal
                i += 1;
                while i < n {
                    match b[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                push!(TokKind::Literal, "\"\"".to_string());
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                // r"...", r#"..."#, br"...", b"..."
                let start_line = line;
                let mut j = i;
                if b[j] == 'b' {
                    j += 1;
                }
                let raw = j < n && b[j] == 'r';
                if raw {
                    j += 1;
                }
                let mut hashes = 0usize;
                while raw && j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                // b[j] == '"'
                j += 1;
                loop {
                    if j >= n {
                        break;
                    }
                    match b[j] {
                        '\n' => {
                            line += 1;
                            j += 1;
                        }
                        '\\' if !raw => j += 2,
                        '"' => {
                            // check closing hash fence
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while seen < hashes && k < n && b[k] == '#' {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break;
                            }
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                i = j;
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "\"\"".to_string(),
                    line: start_line,
                });
            }
            '\'' => {
                // char literal or lifetime
                if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                    // could be 'a (lifetime) or 'a' (char)
                    let mut j = i + 1;
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' && j == i + 2 {
                        // 'x' char literal
                        push!(TokKind::Literal, "''".to_string());
                        i = j + 1;
                    } else {
                        // lifetime
                        let text: String = b[i..j].iter().collect();
                        push!(TokKind::Lifetime, text);
                        i = j;
                    }
                } else {
                    // escaped or symbol char literal: '\n', '\'', '{'
                    let mut j = i + 1;
                    if j < n && b[j] == '\\' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    // consume closing quote if present
                    if j < n && b[j] == '\'' {
                        j += 1;
                    }
                    push!(TokKind::Literal, "''".to_string());
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n
                    && (b[j].is_ascii_alphanumeric()
                        || b[j] == '_'
                        || b[j] == '.' && {
                            // only part of number if followed by digit (avoid `1.method()` and `1..2`)
                            j + 1 < n && b[j + 1].is_ascii_digit()
                        })
                {
                    j += 1;
                }
                let text: String = b[i..j].iter().collect();
                push!(TokKind::Number, text);
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let text: String = b[i..j].iter().collect();
                push!(TokKind::Ident, text);
                i = j;
            }
            _ => {
                // punctuation, possibly multi-char
                let two: String = b[i..(i + 2).min(n)].iter().collect();
                let three: String = b[i..(i + 3).min(n)].iter().collect();
                if three == "..=" || three == "..." {
                    push!(TokKind::Op, three);
                    i += 3;
                } else if matches!(
                    two.as_str(),
                    "::" | "->"
                        | "=>"
                        | "=="
                        | "!="
                        | "<="
                        | ">="
                        | "&&"
                        | "||"
                        | ".."
                        | "<<"
                        | ">>"
                        | "+="
                        | "-="
                        | "*="
                        | "/="
                        | "%="
                        | "&="
                        | "|="
                        | "^="
                ) {
                    push!(TokKind::Op, two);
                    i += 2;
                } else {
                    push!(TokKind::Punct, c.to_string());
                    i += 1;
                }
            }
        }
    }
    toks
}

fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= n {
            return false;
        }
    }
    if b[j] == 'r' {
        j += 1;
        while j < n && b[j] == '#' {
            j += 1;
        }
    }
    // must now be at a quote and must not be a plain identifier like `run`
    if j >= n || b[j] != '"' {
        return false;
    }
    // ensure the prefix chars were only b/r/#
    b[i..j].iter().all(|&c| c == 'b' || c == 'r' || c == '#')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let toks = lex("fn a() { /* {not} */ let s = \"}{\"; // }\n }");
        let braces: Vec<&str> = toks
            .iter()
            .filter(|t| t.text == "{" || t.text == "}")
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(braces, vec!["{", "}"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        // 'x' and '\n' are char literals; "str" is an ident.
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            2
        );
    }

    #[test]
    fn raw_strings() {
        let toks = lex("let x = r#\"hello \"{\" world\"#; let y = 1;");
        assert!(toks.iter().any(|t| t.is_ident("y")));
        assert!(!toks.iter().any(|t| t.text == "{"));
    }

    #[test]
    fn multi_char_ops() {
        let toks = lex("a => b :: c -> d ..= e << f");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Op)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ops, vec!["=>", "::", "->", "..=", "<<"]);
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\nc");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }
}
