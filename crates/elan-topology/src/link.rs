//! Link levels and transports (Fig. 9 of the paper).

use std::fmt;

/// The four typical levels of links between two GPUs (§IV-2).
///
/// Ordering is by "distance": `L1 < L2 < L3 < L4`, so `min_by_key` on a link
/// level picks the nearest neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkLevel {
    /// Traverses only PCIe switches (same PCIe switch).
    L1,
    /// Traverses a PCIe host bridge (same socket, different switch).
    L2,
    /// Traverses a socket-level link such as QPI (same node, cross-socket).
    L3,
    /// Traverses the network (different nodes).
    L4,
}

impl LinkLevel {
    /// The best transport available on this link level: P2P is only enabled
    /// on L1; L2 and L3 use CPU shared memory; the network is the only way
    /// across nodes.
    pub fn transport(self) -> Transport {
        match self {
            LinkLevel::L1 => Transport::P2p,
            LinkLevel::L2 | LinkLevel::L3 => Transport::Shm,
            LinkLevel::L4 => Transport::Net,
        }
    }

    /// All levels, nearest first.
    pub const ALL: [LinkLevel; 4] = [LinkLevel::L1, LinkLevel::L2, LinkLevel::L3, LinkLevel::L4];
}

impl fmt::Display for LinkLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkLevel::L1 => "L1",
            LinkLevel::L2 => "L2",
            LinkLevel::L3 => "L3",
            LinkLevel::L4 => "L4",
        };
        f.write_str(s)
    }
}

/// The three ways to communicate between PCIe-interconnected GPUs (§IV-2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Transport {
    /// Peer-to-peer GPU memory access over PCIe — the fastest.
    P2p,
    /// CPU shared memory as a bridge.
    Shm,
    /// The network (InfiniBand with RDMA in the paper's testbed).
    Net,
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Transport::P2p => "P2P",
            Transport::Shm => "SHM",
            Transport::Net => "NET",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_mapping_follows_paper() {
        assert_eq!(LinkLevel::L1.transport(), Transport::P2p);
        assert_eq!(LinkLevel::L2.transport(), Transport::Shm);
        assert_eq!(LinkLevel::L3.transport(), Transport::Shm);
        assert_eq!(LinkLevel::L4.transport(), Transport::Net);
    }

    #[test]
    fn nearer_levels_order_first() {
        assert!(LinkLevel::L1 < LinkLevel::L2);
        assert!(LinkLevel::L2 < LinkLevel::L3);
        assert!(LinkLevel::L3 < LinkLevel::L4);
    }

    #[test]
    fn transports_order_by_preference() {
        // P2P > SHM > NET in bandwidth; Ord is by enum position (preference).
        assert!(Transport::P2p < Transport::Shm);
        assert!(Transport::Shm < Transport::Net);
    }

    #[test]
    fn display_names() {
        assert_eq!(LinkLevel::L3.to_string(), "L3");
        assert_eq!(Transport::Shm.to_string(), "SHM");
    }
}
