//! Worker-rank → GPU placement: where each data-parallel rank "lives" in
//! the cluster hierarchy.
//!
//! The planner (§IV) already answers *pairwise* link questions between
//! GPUs; the adaptive allreduce additionally needs the *partition* view —
//! which ranks share a node/socket locality domain — so it can build
//! hierarchical reduction groups that never ship chunk-cursor traffic
//! across a socket boundary. [`Placement`] is that map: a rank-indexed
//! assignment of GPU slots, defaulting to the linear row-major fill that
//! schedulers use for gang placement.

use crate::cluster::{GpuId, NodeId, Topology};

/// A locality domain: one CPU socket of one node. Ranks placed in the
/// same domain reach each other at L1/L2 (PCIe), never over QPI or the
/// network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketDomain {
    /// The hosting node.
    pub node: NodeId,
    /// Socket index within the node.
    pub socket: u32,
}

impl std::fmt::Display for SocketDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/socket{}", self.node, self.socket)
    }
}

/// A rank-indexed GPU assignment over a [`Topology`].
///
/// Ranks beyond the explicit slot list (elastic jobs allocate worker ids
/// without an upper bound) wrap around the cluster modulo its GPU count,
/// so every rank always has *a* deterministic home.
///
/// # Examples
///
/// ```
/// use elan_topology::{ClusterSpec, Placement};
///
/// let placement = Placement::linear(ClusterSpec::paper_testbed().build());
/// // Ranks 0..8 fill node 0; rank 8 starts node 1.
/// assert_eq!(placement.domain_of(0), placement.domain_of(3));
/// assert_ne!(placement.domain_of(0), placement.domain_of(4)); // next socket
/// assert_ne!(placement.domain_of(7), placement.domain_of(8)); // next node
/// ```
#[derive(Debug, Clone)]
pub struct Placement {
    topo: Topology,
    slots: Vec<GpuId>,
}

impl Placement {
    /// The row-major linear placement: rank `r` sits on `GpuId(r)`,
    /// wrapping modulo the cluster size.
    pub fn linear(topo: Topology) -> Self {
        Placement {
            topo,
            slots: Vec::new(),
        }
    }

    /// An explicit placement: rank `r` sits on `slots[r]`; ranks past the
    /// end of `slots` fall back to the linear wrap.
    ///
    /// # Panics
    ///
    /// Panics if any slot names a GPU outside `topo`.
    pub fn explicit(topo: Topology, slots: Vec<GpuId>) -> Self {
        for &g in &slots {
            assert!(topo.contains(g), "{g} is not in the cluster");
        }
        Placement { topo, slots }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The GPU hosting `rank`.
    pub fn gpu_of(&self, rank: u32) -> GpuId {
        match self.slots.get(rank as usize) {
            Some(&g) => g,
            None => GpuId(rank % self.topo.gpu_count()),
        }
    }

    /// The node/socket locality domain hosting `rank`.
    pub fn domain_of(&self, rank: u32) -> SocketDomain {
        let loc = self.topo.locate(self.gpu_of(rank));
        SocketDomain {
            node: loc.node,
            socket: loc.socket,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    #[test]
    fn linear_wraps_modulo_cluster() {
        let p = Placement::linear(ClusterSpec::single_node().build()); // 8 GPUs
        assert_eq!(p.gpu_of(3), GpuId(3));
        assert_eq!(p.gpu_of(8), GpuId(0));
        assert_eq!(p.gpu_of(19), GpuId(3));
    }

    #[test]
    fn explicit_slots_override_then_wrap() {
        let topo = ClusterSpec::single_node().build();
        let p = Placement::explicit(topo, vec![GpuId(7), GpuId(2)]);
        assert_eq!(p.gpu_of(0), GpuId(7));
        assert_eq!(p.gpu_of(1), GpuId(2));
        assert_eq!(p.gpu_of(2), GpuId(2)); // past the list: linear wrap
    }

    #[test]
    #[should_panic(expected = "not in the cluster")]
    fn explicit_rejects_foreign_gpus() {
        let topo = ClusterSpec::single_node().build();
        let _ = Placement::explicit(topo, vec![GpuId(8)]);
    }

    #[test]
    fn domains_follow_the_hierarchy() {
        // 2 nodes x 2 sockets x 2 switches x 2 GPUs: 4 GPUs per socket.
        let p = Placement::linear(ClusterSpec::new(2, 2, 2, 2).build());
        assert_eq!(p.domain_of(0), p.domain_of(3));
        assert_ne!(p.domain_of(3), p.domain_of(4));
        assert_eq!(p.domain_of(4).node, NodeId(0));
        assert_eq!(p.domain_of(8).node, NodeId(1));
        // Domains order node-major, socket-minor.
        assert!(p.domain_of(0) < p.domain_of(4));
        assert!(p.domain_of(4) < p.domain_of(8));
    }
}
