//! Concurrent IO-free replication planning (§IV-3).
//!
//! Given the set of existing workers (each holding an identical copy of the
//! training state, a property of data-parallel training) and the set of
//! newly added workers, the planner:
//!
//! 1. picks for every new worker the **nearest** existing worker as its
//!    replication source — nearest by link level (P2P > SHM > NET), with
//!    load-balancing across equally-near sources so transfers spread out;
//! 2. groups transfers into **waves**: transfers within a wave proceed
//!    concurrently, waves execute in turn. Two transfers conflict (must be
//!    in different waves) if they share a source GPU, a destination GPU,
//!    both traverse the same node's socket-level (QPI) link, or both cross
//!    the same node's NIC.
//!
//! The resulting [`ReplicationPlan`] can report its wall-clock duration
//! under a [`BandwidthModel`], with CPU-state replication overlapped with
//! GPU-state replication as in §IV-3.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use elan_sim::{Bytes, SimDuration};

use crate::bandwidth::BandwidthModel;
use crate::cluster::{GpuId, Topology};
use crate::link::{LinkLevel, Transport};

/// A single state transfer from an existing worker to a new worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Source GPU (an existing worker holding the full state).
    pub src: GpuId,
    /// Destination GPU (a joining worker).
    pub dst: GpuId,
    /// Link classification between the pair.
    pub level: LinkLevel,
    /// Transport used (derived from the level).
    pub transport: Transport,
}

/// Errors from [`ReplicationPlanner::plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// There is no existing worker to copy state from.
    NoSource,
    /// A GPU id is not part of the topology.
    UnknownGpu(GpuId),
    /// A destination is already an existing worker (it has the state).
    AlreadyMember(GpuId),
    /// The same GPU appears twice among the joining workers.
    DuplicateDestination(GpuId),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoSource => write!(f, "no existing worker to replicate from"),
            PlanError::UnknownGpu(g) => write!(f, "{g} is not part of the cluster"),
            PlanError::AlreadyMember(g) => {
                write!(f, "{g} already holds the training state")
            }
            PlanError::DuplicateDestination(g) => {
                write!(f, "{g} listed twice among joining workers")
            }
        }
    }
}

impl Error for PlanError {}

/// Plans topology-aware concurrent state replication.
///
/// # Examples
///
/// ```
/// use elan_topology::{ClusterSpec, GpuId, ReplicationPlanner, Transport};
///
/// let topo = ClusterSpec::paper_testbed().build();
/// let planner = ReplicationPlanner::new(&topo);
/// // New worker on the same switch as an existing one -> P2P.
/// let plan = planner.plan(&[GpuId(0)], &[GpuId(1)])?;
/// assert_eq!(plan.transfers()[0].transport, Transport::P2p);
/// # Ok::<(), elan_topology::PlanError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ReplicationPlanner<'a> {
    topology: &'a Topology,
}

impl<'a> ReplicationPlanner<'a> {
    /// Creates a planner over `topology`.
    pub fn new(topology: &'a Topology) -> Self {
        ReplicationPlanner { topology }
    }

    /// Plans replication of the training state from `existing` workers to
    /// every worker in `joining`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if `existing` is empty, any id is outside the
    /// topology, a joining worker already holds state, or a joining worker
    /// is listed twice.
    pub fn plan(
        &self,
        existing: &[GpuId],
        joining: &[GpuId],
    ) -> Result<ReplicationPlan, PlanError> {
        if existing.is_empty() {
            return Err(PlanError::NoSource);
        }
        for &g in existing.iter().chain(joining) {
            if !self.topology.contains(g) {
                return Err(PlanError::UnknownGpu(g));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for &d in joining {
            if existing.contains(&d) {
                return Err(PlanError::AlreadyMember(d));
            }
            if !seen.insert(d) {
                return Err(PlanError::DuplicateDestination(d));
            }
        }

        // 1. Nearest-neighbor source selection with load balancing.
        let mut load: HashMap<GpuId, u32> = HashMap::new();
        let mut sorted_existing = existing.to_vec();
        sorted_existing.sort_unstable();
        let mut sorted_joining = joining.to_vec();
        sorted_joining.sort_unstable();

        let mut transfers = Vec::with_capacity(sorted_joining.len());
        for &dst in &sorted_joining {
            let &src = sorted_existing
                .iter()
                .min_by_key(|&&src| {
                    (
                        self.topology.link_level(src, dst),
                        *load.get(&src).unwrap_or(&0),
                        src,
                    )
                })
                .ok_or(PlanError::NoSource)?;
            *load.entry(src).or_insert(0) += 1;
            let level = self.topology.link_level(src, dst);
            transfers.push(Transfer {
                src,
                dst,
                level,
                transport: level.transport(),
            });
        }

        // 2. Greedy wave construction: first-fit into the earliest wave with
        // no conflicting transfer.
        let mut waves: Vec<Vec<usize>> = Vec::new();
        for (i, t) in transfers.iter().enumerate() {
            let slot = waves.iter().position(|wave| {
                wave.iter()
                    .all(|&j| !conflicts(self.topology, t, &transfers[j]))
            });
            match slot {
                Some(w) => waves[w].push(i),
                None => waves.push(vec![i]),
            }
        }

        Ok(ReplicationPlan { transfers, waves })
    }
}

/// True if two transfers cannot proceed concurrently.
fn conflicts(topology: &Topology, a: &Transfer, b: &Transfer) -> bool {
    if a.src == b.src || a.dst == b.dst || a.src == b.dst || a.dst == b.src {
        return true;
    }
    // Socket-level (QPI) links carry at most one replication at a time per
    // node (§IV-3: "typically when replications traverse L3 ... we perform
    // them in turn").
    if a.level == LinkLevel::L3 && b.level == LinkLevel::L3 {
        let node_a = topology.node_of(a.src);
        let node_b = topology.node_of(b.src);
        if node_a == node_b {
            return true;
        }
    }
    // A node's NIC carries one replication direction at a time.
    if a.level == LinkLevel::L4 && b.level == LinkLevel::L4 {
        let (a_out, a_in) = (topology.node_of(a.src), topology.node_of(a.dst));
        let (b_out, b_in) = (topology.node_of(b.src), topology.node_of(b.dst));
        if a_out == b_out || a_in == b_in {
            return true;
        }
    }
    false
}

/// The output of planning: transfers plus their concurrency structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationPlan {
    transfers: Vec<Transfer>,
    waves: Vec<Vec<usize>>,
}

impl ReplicationPlan {
    /// All planned transfers, sorted by destination GPU.
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }

    /// Indices into [`transfers`](Self::transfers) grouped by wave; waves
    /// run sequentially, members of a wave run concurrently.
    pub fn waves(&self) -> &[Vec<usize>] {
        &self.waves
    }

    /// True when nothing needs replicating (no joining workers).
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }

    /// Wall-clock duration of the GPU-state replication: per wave the
    /// longest member, summed across waves.
    pub fn gpu_duration(&self, bw: &BandwidthModel, gpu_state: Bytes) -> SimDuration {
        self.waves
            .iter()
            .map(|wave| {
                wave.iter()
                    .map(|&i| bw.transfer_time(self.transfers[i].transport, gpu_state))
                    .fold(SimDuration::ZERO, SimDuration::max)
            })
            .sum()
    }

    /// Wall-clock duration of the CPU-state replication over the TCP side
    /// channel; all destinations stream concurrently from their sources, so
    /// the duration is a single transfer time (per §IV-3 CPU states are
    /// small and fully overlapped).
    pub fn cpu_duration(&self, bw: &BandwidthModel, cpu_state: Bytes) -> SimDuration {
        if self.transfers.is_empty() {
            return SimDuration::ZERO;
        }
        bw.side_channel.transfer_time(cpu_state)
    }

    /// Total replication time: GPU and CPU replication overlap, so the
    /// total is the maximum of the two.
    pub fn duration(&self, bw: &BandwidthModel, gpu_state: Bytes, cpu_state: Bytes) -> SimDuration {
        if self.transfers.is_empty() {
            return SimDuration::ZERO;
        }
        self.gpu_duration(bw, gpu_state)
            .max(self.cpu_duration(bw, cpu_state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterSpec, NodeId};

    fn topo() -> Topology {
        ClusterSpec::paper_testbed().build()
    }

    #[test]
    fn nearest_source_prefers_p2p() -> Result<(), PlanError> {
        let t = topo();
        // Existing worker on gpu0; candidates gpu1 (L1), gpu2 (L2), gpu8 (L4).
        let plan = ReplicationPlanner::new(&t).plan(&[GpuId(0), GpuId(4)], &[GpuId(1)])?;
        assert_eq!(plan.transfers()[0].src, GpuId(0));
        assert_eq!(plan.transfers()[0].transport, Transport::P2p);
        Ok(())
    }

    #[test]
    fn paper_figure9_example() -> Result<(), PlanError> {
        // Fig. 9: existing A,B (same switch), C (other socket, same node),
        // D (different node). New E close to C under the same socket, F
        // close to D under the same node. Expect E<-C and F<-D in parallel.
        let t = topo();
        let (a, b) = (t.gpu_at(NodeId(0), 0, 0, 0), t.gpu_at(NodeId(0), 0, 0, 1));
        let c = t.gpu_at(NodeId(0), 1, 0, 0);
        let d = t.gpu_at(NodeId(1), 0, 0, 0);
        let e = t.gpu_at(NodeId(0), 1, 0, 1); // same switch as C
        let f = t.gpu_at(NodeId(1), 0, 1, 0); // same socket as D
        let plan = ReplicationPlanner::new(&t).plan(&[a, b, c, d], &[e, f])?;
        let by_dst: HashMap<GpuId, GpuId> =
            plan.transfers().iter().map(|t| (t.dst, t.src)).collect();
        assert_eq!(by_dst[&e], c);
        assert_eq!(by_dst[&f], d);
        // Both transfers proceed concurrently (one wave).
        assert_eq!(plan.waves().len(), 1);
        assert_eq!(plan.waves()[0].len(), 2);
        Ok(())
    }

    #[test]
    fn shared_source_serializes() -> Result<(), PlanError> {
        let t = topo();
        // Only one existing worker: both new workers must copy from it, in turn.
        let plan = ReplicationPlanner::new(&t).plan(&[GpuId(0)], &[GpuId(1), GpuId(2)])?;
        assert_eq!(plan.waves().len(), 2);
        Ok(())
    }

    #[test]
    fn load_balances_across_equal_sources() -> Result<(), PlanError> {
        let t = topo();
        // Two existing on the same switch; two new on that switch's level.
        let plan =
            ReplicationPlanner::new(&t).plan(&[GpuId(0), GpuId(2)], &[GpuId(1), GpuId(3)])?;
        let srcs: Vec<GpuId> = plan.transfers().iter().map(|t| t.src).collect();
        assert!(srcs.contains(&GpuId(0)) && srcs.contains(&GpuId(2)));
        assert_eq!(plan.waves().len(), 1);
        Ok(())
    }

    #[test]
    fn l3_transfers_on_same_node_serialize() -> Result<(), PlanError> {
        let t = topo();
        // Existing on socket0 of node0 (gpus 0,1); new on socket1 (gpus 4,5):
        // both transfers cross the QPI link of node0 -> serialized.
        let plan =
            ReplicationPlanner::new(&t).plan(&[GpuId(0), GpuId(1)], &[GpuId(4), GpuId(5)])?;
        assert!(plan.transfers().iter().all(|t| t.level == LinkLevel::L3));
        assert_eq!(plan.waves().len(), 2);
        Ok(())
    }

    #[test]
    fn nic_contention_serializes_outbound() -> Result<(), PlanError> {
        let t = topo();
        // One existing node (node0) feeding two new nodes: both transfers
        // leave through node0's NIC -> serialized.
        let src0 = t.gpu_at(NodeId(0), 0, 0, 0);
        let src1 = t.gpu_at(NodeId(0), 0, 0, 1);
        let d1 = t.gpu_at(NodeId(1), 0, 0, 0);
        let d2 = t.gpu_at(NodeId(2), 0, 0, 0);
        let plan = ReplicationPlanner::new(&t).plan(&[src0, src1], &[d1, d2])?;
        assert!(plan.transfers().iter().all(|t| t.level == LinkLevel::L4));
        assert_eq!(plan.waves().len(), 2);
        Ok(())
    }

    #[test]
    fn different_nodes_replicate_concurrently() -> Result<(), PlanError> {
        let t = topo();
        // Existing worker on each of node0/node1, new worker beside each:
        // two independent P2P transfers, one wave.
        let plan = ReplicationPlanner::new(&t).plan(
            &[t.gpu_at(NodeId(0), 0, 0, 0), t.gpu_at(NodeId(1), 0, 0, 0)],
            &[t.gpu_at(NodeId(0), 0, 0, 1), t.gpu_at(NodeId(1), 0, 0, 1)],
        )?;
        assert_eq!(plan.waves().len(), 1);
        Ok(())
    }

    #[test]
    fn duration_overlaps_cpu_and_gpu() -> Result<(), PlanError> {
        let t = topo();
        let bw = BandwidthModel::paper_default();
        let plan = ReplicationPlanner::new(&t).plan(&[GpuId(0)], &[GpuId(1)])?;
        let gpu = Bytes::from_mib(100);
        let cpu = Bytes::from_kib(16);
        let total = plan.duration(&bw, gpu, cpu);
        assert_eq!(
            total,
            plan.gpu_duration(&bw, gpu).max(plan.cpu_duration(&bw, cpu))
        );
        // CPU state is small: it must hide entirely under the GPU transfer.
        assert_eq!(total, plan.gpu_duration(&bw, gpu));
        Ok(())
    }

    #[test]
    fn empty_join_is_empty_plan() -> Result<(), PlanError> {
        let t = topo();
        let plan = ReplicationPlanner::new(&t).plan(&[GpuId(0)], &[])?;
        assert!(plan.is_empty());
        assert_eq!(
            plan.duration(
                &BandwidthModel::paper_default(),
                Bytes::from_mib(1),
                Bytes::ZERO
            ),
            SimDuration::ZERO
        );
        Ok(())
    }

    #[test]
    fn error_cases() {
        let t = topo();
        let p = ReplicationPlanner::new(&t);
        assert_eq!(p.plan(&[], &[GpuId(1)]), Err(PlanError::NoSource));
        assert_eq!(
            p.plan(&[GpuId(0)], &[GpuId(999)]),
            Err(PlanError::UnknownGpu(GpuId(999)))
        );
        assert_eq!(
            p.plan(&[GpuId(0)], &[GpuId(0)]),
            Err(PlanError::AlreadyMember(GpuId(0)))
        );
        assert_eq!(
            p.plan(&[GpuId(0)], &[GpuId(1), GpuId(1)]),
            Err(PlanError::DuplicateDestination(GpuId(1)))
        );
    }

    #[test]
    fn plan_is_deterministic_regardless_of_input_order() -> Result<(), PlanError> {
        let t = topo();
        let p = ReplicationPlanner::new(&t);
        let a = p.plan(&[GpuId(0), GpuId(9)], &[GpuId(1), GpuId(8), GpuId(2)])?;
        let b = p.plan(&[GpuId(9), GpuId(0)], &[GpuId(2), GpuId(1), GpuId(8)])?;
        assert_eq!(a, b);
        Ok(())
    }

    #[test]
    fn every_destination_served_exactly_once() -> Result<(), PlanError> {
        let t = topo();
        let joining: Vec<GpuId> = (8..24).map(GpuId).collect();
        let existing: Vec<GpuId> = (0..8).map(GpuId).collect();
        let plan = ReplicationPlanner::new(&t).plan(&existing, &joining)?;
        let mut dsts: Vec<GpuId> = plan.transfers().iter().map(|t| t.dst).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, joining);
        // Every transfer appears in exactly one wave.
        let mut covered: Vec<usize> = plan.waves().iter().flatten().copied().collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..plan.transfers().len()).collect::<Vec<_>>());
        Ok(())
    }
}
