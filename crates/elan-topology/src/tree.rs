//! The topology tree of §IV-3.
//!
//! "We construct a topology tree of all workers, and select the nearest
//! neighbor in the existing workers to replicate states." This module
//! materializes that tree explicitly: cluster → nodes → sockets → PCIe
//! switches → GPUs, with lowest-common-ancestor queries that define the
//! link levels and a renderer used in diagnostics.

use std::fmt::Write as _;

use crate::cluster::{GpuId, Topology};
use crate::link::LinkLevel;

/// A node in the topology tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeNode {
    /// The cluster root.
    Cluster {
        /// Child server nodes.
        nodes: Vec<TreeNode>,
    },
    /// A server.
    Node {
        /// Server index.
        index: u32,
        /// Child CPU sockets.
        sockets: Vec<TreeNode>,
    },
    /// A CPU socket.
    Socket {
        /// Socket index within the server.
        index: u32,
        /// Child PCIe switches.
        switches: Vec<TreeNode>,
    },
    /// A PCIe switch.
    Switch {
        /// Switch index within the socket.
        index: u32,
        /// GPUs under the switch.
        gpus: Vec<GpuId>,
    },
}

/// An explicit topology tree built from a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyTree {
    root: TreeNode,
    topology: Topology,
}

impl TopologyTree {
    /// Builds the tree for `topology`.
    pub fn build(topology: &Topology) -> Self {
        let mut nodes = Vec::new();
        for n in 0..topology.node_count() {
            let mut sockets = Vec::new();
            for s in 0..topology.sockets_per_node() {
                let mut switches = Vec::new();
                let mut sw = 0;
                loop {
                    // Probe switch existence via gpu_at panics — instead
                    // derive counts from the first GPU's coordinates.
                    let mut gpus = Vec::new();
                    let mut slot = 0;
                    loop {
                        let candidate = (0..topology.gpu_count()).map(GpuId).find(|&g| {
                            let loc = topology.locate(g);
                            loc.node.0 == n
                                && loc.socket == s
                                && loc.switch == sw
                                && loc.slot == slot
                        });
                        match candidate {
                            Some(g) => gpus.push(g),
                            None => break,
                        }
                        slot += 1;
                    }
                    if gpus.is_empty() {
                        break;
                    }
                    switches.push(TreeNode::Switch { index: sw, gpus });
                    sw += 1;
                }
                sockets.push(TreeNode::Socket { index: s, switches });
            }
            nodes.push(TreeNode::Node { index: n, sockets });
        }
        TopologyTree {
            root: TreeNode::Cluster { nodes },
            topology: *topology,
        }
    }

    /// The root of the tree.
    pub fn root(&self) -> &TreeNode {
        &self.root
    }

    /// The depth of the lowest common ancestor of two GPUs: 3 = same
    /// switch, 2 = same socket, 1 = same node, 0 = cluster root. This is
    /// the inverse of the link level.
    pub fn lca_depth(&self, a: GpuId, b: GpuId) -> u32 {
        match self.topology.link_level(a, b) {
            LinkLevel::L1 => 3,
            LinkLevel::L2 => 2,
            LinkLevel::L3 => 1,
            LinkLevel::L4 => 0,
        }
    }

    /// The nearest GPUs to `target` among `candidates` (all candidates at
    /// the minimal link level), in id order.
    pub fn nearest<'a>(
        &self,
        target: GpuId,
        candidates: impl IntoIterator<Item = &'a GpuId>,
    ) -> Vec<GpuId> {
        let candidates: Vec<GpuId> = candidates.into_iter().copied().collect();
        let Some(best) = candidates
            .iter()
            .map(|&c| self.topology.link_level(c, target))
            .min()
        else {
            return Vec::new();
        };
        let mut out: Vec<GpuId> = candidates
            .into_iter()
            .filter(|&c| self.topology.link_level(c, target) == best)
            .collect();
        out.sort_unstable();
        out
    }

    /// Renders the tree as indented text (diagnostics, `repro fig9`).
    pub fn render(&self) -> String {
        let mut out = String::from("cluster\n");
        let TreeNode::Cluster { nodes } = &self.root else {
            unreachable!("root is always a cluster");
        };
        for node in nodes {
            let TreeNode::Node { index, sockets } = node else {
                continue;
            };
            let _ = writeln!(out, "└─ node{index}");
            for socket in sockets {
                let TreeNode::Socket { index, switches } = socket else {
                    continue;
                };
                let _ = writeln!(out, "   └─ socket{index}");
                for switch in switches {
                    let TreeNode::Switch { index, gpus } = switch else {
                        continue;
                    };
                    let names: Vec<String> = gpus.iter().map(|g| g.to_string()).collect();
                    let _ = writeln!(out, "      └─ switch{index}: {}", names.join(", "));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    #[test]
    fn tree_covers_every_gpu_once() {
        let topo = ClusterSpec::paper_testbed().build();
        let tree = TopologyTree::build(&topo);
        let mut seen = Vec::new();
        let TreeNode::Cluster { nodes } = tree.root() else {
            panic!("bad root")
        };
        for n in nodes {
            let TreeNode::Node { sockets, .. } = n else {
                panic!()
            };
            for s in sockets {
                let TreeNode::Socket { switches, .. } = s else {
                    panic!()
                };
                for sw in switches {
                    let TreeNode::Switch { gpus, .. } = sw else {
                        panic!()
                    };
                    seen.extend(gpus.iter().copied());
                }
            }
        }
        seen.sort_unstable();
        let expect: Vec<GpuId> = topo.gpus().collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn lca_depth_inverts_link_level() {
        let topo = ClusterSpec::paper_testbed().build();
        let tree = TopologyTree::build(&topo);
        assert_eq!(tree.lca_depth(GpuId(0), GpuId(1)), 3); // same switch
        assert_eq!(tree.lca_depth(GpuId(0), GpuId(2)), 2); // same socket
        assert_eq!(tree.lca_depth(GpuId(0), GpuId(4)), 1); // same node
        assert_eq!(tree.lca_depth(GpuId(0), GpuId(8)), 0); // cross node
    }

    #[test]
    fn nearest_returns_all_at_best_level() {
        let topo = ClusterSpec::paper_testbed().build();
        let tree = TopologyTree::build(&topo);
        let candidates = [GpuId(1), GpuId(2), GpuId(3), GpuId(8)];
        // For gpu0: gpu1 is L1; gpus 2,3 are L2; gpu8 is L4.
        assert_eq!(tree.nearest(GpuId(0), &candidates), vec![GpuId(1)]);
        let no_l1 = [GpuId(2), GpuId(3), GpuId(8)];
        assert_eq!(tree.nearest(GpuId(0), &no_l1), vec![GpuId(2), GpuId(3)]);
    }

    #[test]
    fn nearest_of_empty_is_empty() {
        let topo = ClusterSpec::single_node().build();
        let tree = TopologyTree::build(&topo);
        assert!(tree.nearest(GpuId(0), &[]).is_empty());
    }

    #[test]
    fn render_shows_hierarchy() {
        let topo = ClusterSpec::new(1, 1, 2, 2).build();
        let tree = TopologyTree::build(&topo);
        let s = tree.render();
        assert!(s.contains("node0"));
        assert!(s.contains("switch1: gpu2, gpu3"));
    }
}
