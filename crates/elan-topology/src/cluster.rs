//! Cluster structure: nodes, sockets, PCIe switches, GPUs.
//!
//! [`ClusterSpec`] is the builder; [`Topology`] is the immutable result that
//! answers placement and link-level queries.

use std::fmt;

use crate::link::LinkLevel;

/// Identifies a GPU by its global index within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId(pub u32);

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Identifies a server node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The physical coordinates of a GPU inside the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GpuLocation {
    /// Which server node hosts the GPU.
    pub node: NodeId,
    /// Socket index within the node.
    pub socket: u32,
    /// PCIe switch index within the socket.
    pub switch: u32,
    /// GPU slot index under the switch.
    pub slot: u32,
}

impl fmt::Display for GpuLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/socket{}/switch{}/slot{}",
            self.node, self.socket, self.switch, self.slot
        )
    }
}

/// Builder describing a homogeneous cluster.
///
/// # Examples
///
/// ```
/// use elan_topology::ClusterSpec;
///
/// // The paper's testbed: 8 servers, 8 GPUs each.
/// let topo = ClusterSpec::paper_testbed().build();
/// assert_eq!(topo.gpu_count(), 64);
/// assert_eq!(topo.node_count(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    nodes: u32,
    sockets_per_node: u32,
    switches_per_socket: u32,
    gpus_per_switch: u32,
}

impl ClusterSpec {
    /// Creates a spec with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        nodes: u32,
        sockets_per_node: u32,
        switches_per_socket: u32,
        gpus_per_switch: u32,
    ) -> Self {
        assert!(
            nodes > 0 && sockets_per_node > 0 && switches_per_socket > 0 && gpus_per_switch > 0,
            "cluster dimensions must be positive"
        );
        ClusterSpec {
            nodes,
            sockets_per_node,
            switches_per_socket,
            gpus_per_switch,
        }
    }

    /// The paper's evaluation testbed: 8 servers × 2 sockets × 2 PCIe
    /// switches × 2 GPUs = 8 GeForce 1080Ti per server, 64 GPUs total.
    pub fn paper_testbed() -> Self {
        ClusterSpec::new(8, 2, 2, 2)
    }

    /// A single 8-GPU server, for small experiments.
    pub fn single_node() -> Self {
        ClusterSpec::new(1, 2, 2, 2)
    }

    /// Overrides the number of nodes.
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        assert!(nodes > 0, "cluster dimensions must be positive");
        self.nodes = nodes;
        self
    }

    /// Builds the immutable topology.
    pub fn build(self) -> Topology {
        Topology { spec: self }
    }
}

/// An immutable cluster topology answering placement and link queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    spec: ClusterSpec,
}

impl Topology {
    /// Total GPUs in the cluster.
    pub fn gpu_count(&self) -> u32 {
        self.spec.nodes * self.gpus_per_node()
    }

    /// GPUs hosted by each node.
    pub fn gpus_per_node(&self) -> u32 {
        self.spec.sockets_per_node * self.spec.switches_per_socket * self.spec.gpus_per_switch
    }

    /// Number of server nodes.
    pub fn node_count(&self) -> u32 {
        self.spec.nodes
    }

    /// Sockets per node.
    pub fn sockets_per_node(&self) -> u32 {
        self.spec.sockets_per_node
    }

    /// Iterator over every GPU id in the cluster, in index order.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> {
        (0..self.gpu_count()).map(GpuId)
    }

    /// True if `gpu` exists in this cluster.
    pub fn contains(&self, gpu: GpuId) -> bool {
        gpu.0 < self.gpu_count()
    }

    /// Decomposes a GPU id into its physical coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range for this cluster.
    pub fn locate(&self, gpu: GpuId) -> GpuLocation {
        assert!(
            self.contains(gpu),
            "{gpu} out of range for a {}-GPU cluster",
            self.gpu_count()
        );
        let per_node = self.gpus_per_node();
        let per_socket = self.spec.switches_per_socket * self.spec.gpus_per_switch;
        let per_switch = self.spec.gpus_per_switch;
        let node = gpu.0 / per_node;
        let in_node = gpu.0 % per_node;
        GpuLocation {
            node: NodeId(node),
            socket: in_node / per_socket,
            switch: (in_node % per_socket) / per_switch,
            slot: in_node % per_switch,
        }
    }

    /// The GPU id at the given coordinates.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn gpu_at(&self, node: NodeId, socket: u32, switch: u32, slot: u32) -> GpuId {
        assert!(node.0 < self.spec.nodes, "node out of range");
        assert!(socket < self.spec.sockets_per_node, "socket out of range");
        assert!(
            switch < self.spec.switches_per_socket,
            "switch out of range"
        );
        assert!(slot < self.spec.gpus_per_switch, "slot out of range");
        let per_node = self.gpus_per_node();
        let per_socket = self.spec.switches_per_socket * self.spec.gpus_per_switch;
        let per_switch = self.spec.gpus_per_switch;
        GpuId(node.0 * per_node + socket * per_socket + switch * per_switch + slot)
    }

    /// Classifies the link between two GPUs into the paper's levels L1–L4.
    ///
    /// Two identical ids are defined to be L1 (no transfer needed in
    /// practice; callers should special-case if relevant).
    ///
    /// # Panics
    ///
    /// Panics if either GPU is out of range.
    pub fn link_level(&self, a: GpuId, b: GpuId) -> LinkLevel {
        let la = self.locate(a);
        let lb = self.locate(b);
        if la.node != lb.node {
            LinkLevel::L4
        } else if la.socket != lb.socket {
            LinkLevel::L3
        } else if la.switch != lb.switch {
            LinkLevel::L2
        } else {
            LinkLevel::L1
        }
    }

    /// The node hosting a GPU.
    pub fn node_of(&self, gpu: GpuId) -> NodeId {
        self.locate(gpu).node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = ClusterSpec::paper_testbed().build();
        assert_eq!(t.gpu_count(), 64);
        assert_eq!(t.gpus_per_node(), 8);
        assert_eq!(t.node_count(), 8);
    }

    #[test]
    fn locate_roundtrips_with_gpu_at() {
        let t = ClusterSpec::new(3, 2, 2, 2).build();
        for gpu in t.gpus() {
            let loc = t.locate(gpu);
            assert_eq!(t.gpu_at(loc.node, loc.socket, loc.switch, loc.slot), gpu);
        }
    }

    #[test]
    fn link_levels_follow_hierarchy() {
        let t = ClusterSpec::new(2, 2, 2, 2).build();
        // gpu0 & gpu1: same switch -> L1
        assert_eq!(t.link_level(GpuId(0), GpuId(1)), LinkLevel::L1);
        // gpu0 & gpu2: same socket, different switch -> L2
        assert_eq!(t.link_level(GpuId(0), GpuId(2)), LinkLevel::L2);
        // gpu0 & gpu4: same node, different socket -> L3
        assert_eq!(t.link_level(GpuId(0), GpuId(4)), LinkLevel::L3);
        // gpu0 & gpu8: different node -> L4
        assert_eq!(t.link_level(GpuId(0), GpuId(8)), LinkLevel::L4);
    }

    #[test]
    fn link_level_is_symmetric() {
        let t = ClusterSpec::paper_testbed().build();
        for a in [0u32, 3, 17, 45] {
            for b in [1u32, 8, 33, 63] {
                assert_eq!(
                    t.link_level(GpuId(a), GpuId(b)),
                    t.link_level(GpuId(b), GpuId(a))
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_rejects_unknown_gpu() {
        let t = ClusterSpec::single_node().build();
        let _ = t.locate(GpuId(8));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dimension_rejected() {
        let _ = ClusterSpec::new(0, 2, 2, 2);
    }

    #[test]
    fn with_nodes_scales_cluster() {
        let t = ClusterSpec::single_node().with_nodes(4).build();
        assert_eq!(t.gpu_count(), 32);
    }

    #[test]
    fn display_formats() {
        let t = ClusterSpec::paper_testbed().build();
        let loc = t.locate(GpuId(13));
        assert_eq!(loc.to_string(), "node1/socket1/switch0/slot1");
        assert_eq!(GpuId(13).to_string(), "gpu13");
    }
}
