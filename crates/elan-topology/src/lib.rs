//! Cluster/device topology model and the concurrent IO-free replication
//! planner from §IV of the Elan paper.
//!
//! A training cluster is modelled as nodes → CPU sockets → PCIe switches →
//! GPUs, with one NIC per node. The link between any two GPUs is classified
//! into the paper's four levels:
//!
//! - **L1** — traverses only PCIe switches (same switch): `P2P` capable,
//! - **L2** — traverses a PCIe host bridge (same socket): `SHM`,
//! - **L3** — traverses a socket-level link such as QPI (same node): `SHM`,
//! - **L4** — traverses the network: `NET`.
//!
//! [`ReplicationPlanner`] chooses, for every newly added worker, the nearest
//! existing worker as its replication source (P2P > SHM > NET), runs
//! non-contending transfers concurrently, and serializes transfers that
//! would contend on a socket link or a NIC — exactly the policy of §IV-3.
//!
//! # Examples
//!
//! ```
//! use elan_topology::{BandwidthModel, ClusterSpec, GpuId, ReplicationPlanner};
//! use elan_sim::Bytes;
//!
//! // 2 nodes x 2 sockets x 2 switches x 2 GPUs = 8 GPUs per node.
//! let topo = ClusterSpec::new(2, 2, 2, 2).build();
//! let existing = vec![GpuId(0), GpuId(1)];
//! let joining = vec![GpuId(2), GpuId(3)];
//! let plan = ReplicationPlanner::new(&topo).plan(&existing, &joining)?;
//! assert_eq!(plan.transfers().len(), 2);
//! let d = plan.duration(
//!     &BandwidthModel::paper_default(),
//!     Bytes::from_mib(100),
//!     Bytes::from_kib(4),
//! );
//! assert!(d.as_secs_f64() > 0.0);
//! # Ok::<(), elan_topology::PlanError>(())
//! ```

pub mod bandwidth;
pub mod cluster;
pub mod link;
pub mod placement;
pub mod planner;
pub mod tree;

pub use bandwidth::BandwidthModel;
pub use cluster::{ClusterSpec, GpuId, GpuLocation, NodeId, Topology};
pub use link::{LinkLevel, Transport};
pub use placement::{Placement, SocketDomain};
pub use planner::{PlanError, ReplicationPlan, ReplicationPlanner, Transfer};
pub use tree::{TopologyTree, TreeNode};
