//! Bandwidth/latency model per transport (Fig. 8 of the paper).
//!
//! Effective bandwidth depends on the transport *and* the message size:
//! small messages underutilize any link because fixed per-transfer costs
//! dominate. The model is `t(size) = latency + size / (peak * eff(size))`
//! with a saturating efficiency ramp `eff(size) = size / (size + ramp)`,
//! which reproduces the rising-then-flat curves of Fig. 8.

use elan_sim::{Bandwidth, Bytes, SimDuration};

use crate::link::Transport;

/// Per-transport peak bandwidth, base latency, and ramp constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportProfile {
    /// Peak achievable bandwidth on this transport.
    pub peak: Bandwidth,
    /// Fixed per-transfer setup latency.
    pub latency: SimDuration,
    /// Message size at which half of peak bandwidth is achieved.
    pub half_ramp: Bytes,
}

impl TransportProfile {
    /// Effective bandwidth for a transfer of `size` bytes.
    pub fn effective_bandwidth(&self, size: Bytes) -> Bandwidth {
        let s = size.as_f64();
        let eff = s / (s + self.half_ramp.as_f64());
        self.peak.scale(eff)
    }

    /// Wall time to move `size` bytes, including setup latency.
    pub fn transfer_time(&self, size: Bytes) -> SimDuration {
        if size == Bytes::ZERO {
            return self.latency;
        }
        self.latency
            + SimDuration::from_secs_f64(size.as_f64() / self.peak.as_bytes_per_sec())
            + SimDuration::from_secs_f64(
                // The ramp term: fixed extra cost equivalent to moving the
                // half-ramp size at peak, matching eff(size) asymptotics.
                self.half_ramp.as_f64() / self.peak.as_bytes_per_sec(),
            )
    }
}

/// The bandwidth model covering all three transports plus auxiliary paths
/// (host↔device copies, parallel filesystem, TCP side channel).
///
/// # Examples
///
/// ```
/// use elan_topology::{BandwidthModel, Transport};
/// use elan_sim::Bytes;
///
/// let bw = BandwidthModel::paper_default();
/// let big = Bytes::from_mib(256);
/// let p2p = bw.effective_bandwidth(Transport::P2p, big);
/// let shm = bw.effective_bandwidth(Transport::Shm, big);
/// let net = bw.effective_bandwidth(Transport::Net, big);
/// // Fig. 8: P2P > SHM > NET at every size.
/// assert!(p2p.as_bytes_per_sec() > shm.as_bytes_per_sec());
/// assert!(shm.as_bytes_per_sec() > net.as_bytes_per_sec());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthModel {
    p2p: TransportProfile,
    shm: TransportProfile,
    net: TransportProfile,
    /// GPU ↔ host memory copy over PCIe (used by checkpoints and Litz).
    pub host_device: TransportProfile,
    /// Parallel filesystem (Lustre in the paper) for checkpoint IO.
    pub filesystem: TransportProfile,
    /// Plain TCP/web-socket side channel used for CPU-state replication.
    pub side_channel: TransportProfile,
}

impl BandwidthModel {
    /// Values calibrated to the paper's testbed: PCIe 3.0 GPUs, 56 Gb/s
    /// InfiniBand, Lustre, 1000 Mb/s Ethernet side channel.
    pub fn paper_default() -> Self {
        BandwidthModel {
            p2p: TransportProfile {
                peak: Bandwidth::from_gbytes_per_sec(12.0),
                latency: SimDuration::from_micros(10),
                half_ramp: Bytes::from_kib(256),
            },
            shm: TransportProfile {
                peak: Bandwidth::from_gbytes_per_sec(6.0),
                latency: SimDuration::from_micros(25),
                half_ramp: Bytes::from_kib(512),
            },
            net: TransportProfile {
                // 56 Gb/s InfiniBand ≈ 7 GB/s raw; ~5 GB/s achievable.
                peak: Bandwidth::from_gbytes_per_sec(5.0),
                latency: SimDuration::from_micros(50),
                half_ramp: Bytes::from_mib(1),
            },
            host_device: TransportProfile {
                peak: Bandwidth::from_gbytes_per_sec(10.0),
                latency: SimDuration::from_micros(15),
                half_ramp: Bytes::from_kib(256),
            },
            filesystem: TransportProfile {
                peak: Bandwidth::from_gbytes_per_sec(1.2),
                latency: SimDuration::from_millis(5),
                half_ramp: Bytes::from_mib(4),
            },
            side_channel: TransportProfile {
                // 1000 Mb/s Ethernet ≈ 125 MB/s.
                peak: Bandwidth::from_mbytes_per_sec(110.0),
                latency: SimDuration::from_micros(200),
                half_ramp: Bytes::from_kib(64),
            },
        }
    }

    /// The profile for a GPU↔GPU transport.
    pub fn profile(&self, transport: Transport) -> &TransportProfile {
        match transport {
            Transport::P2p => &self.p2p,
            Transport::Shm => &self.shm,
            Transport::Net => &self.net,
        }
    }

    /// Effective bandwidth of `transport` at message size `size`.
    pub fn effective_bandwidth(&self, transport: Transport, size: Bytes) -> Bandwidth {
        self.profile(transport).effective_bandwidth(size)
    }

    /// Wall time to move `size` bytes over `transport`.
    pub fn transfer_time(&self, transport: Transport, size: Bytes) -> SimDuration {
        self.profile(transport).transfer_time(size)
    }

    /// Overrides a transport profile (for what-if/ablation experiments).
    pub fn with_profile(mut self, transport: Transport, profile: TransportProfile) -> Self {
        match transport {
            Transport::P2p => self.p2p = profile,
            Transport::Shm => self.shm = profile,
            Transport::Net => self.net = profile,
        }
        self
    }
}

impl Default for BandwidthModel {
    fn default() -> Self {
        BandwidthModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_holds_across_sizes() {
        let bw = BandwidthModel::paper_default();
        for kib in [4u64, 64, 1024, 16 * 1024, 256 * 1024, 1024 * 1024] {
            let size = Bytes::from_kib(kib);
            let p = bw
                .effective_bandwidth(Transport::P2p, size)
                .as_bytes_per_sec();
            let s = bw
                .effective_bandwidth(Transport::Shm, size)
                .as_bytes_per_sec();
            let n = bw
                .effective_bandwidth(Transport::Net, size)
                .as_bytes_per_sec();
            assert!(p > s && s > n, "ordering broken at {size}");
        }
    }

    #[test]
    fn effective_bandwidth_grows_with_size() {
        let bw = BandwidthModel::paper_default();
        let small = bw.effective_bandwidth(Transport::P2p, Bytes::from_kib(4));
        let large = bw.effective_bandwidth(Transport::P2p, Bytes::from_gib(1));
        assert!(large.as_bytes_per_sec() > small.as_bytes_per_sec() * 10.0);
    }

    #[test]
    fn effective_bandwidth_saturates_below_peak() {
        let bw = BandwidthModel::paper_default();
        let eff = bw.effective_bandwidth(Transport::Net, Bytes::from_gib(4));
        let peak = bw.profile(Transport::Net).peak;
        assert!(eff.as_bytes_per_sec() <= peak.as_bytes_per_sec());
        assert!(eff.as_bytes_per_sec() > peak.as_bytes_per_sec() * 0.99);
    }

    #[test]
    fn transfer_time_monotone_in_size() {
        let bw = BandwidthModel::paper_default();
        let t1 = bw.transfer_time(Transport::Shm, Bytes::from_mib(10));
        let t2 = bw.transfer_time(Transport::Shm, Bytes::from_mib(20));
        assert!(t2 > t1);
    }

    #[test]
    fn zero_size_costs_latency_only() {
        let bw = BandwidthModel::paper_default();
        assert_eq!(
            bw.transfer_time(Transport::Net, Bytes::ZERO),
            bw.profile(Transport::Net).latency
        );
    }

    #[test]
    fn hundred_mib_over_p2p_is_subsecond() {
        // Sanity anchor for Fig. 15's ~1s adjustments: ResNet-50-sized
        // states move in well under a second over P2P.
        let bw = BandwidthModel::paper_default();
        let t = bw.transfer_time(Transport::P2p, Bytes::from_mib(100));
        assert!(t.as_secs_f64() < 0.05, "got {t}");
    }

    #[test]
    fn with_profile_overrides() {
        let slow = TransportProfile {
            peak: Bandwidth::from_mbytes_per_sec(1.0),
            latency: SimDuration::from_millis(1),
            half_ramp: Bytes::from_kib(1),
        };
        let bw = BandwidthModel::paper_default().with_profile(Transport::P2p, slow);
        assert_eq!(bw.profile(Transport::P2p).peak, slow.peak);
    }
}
