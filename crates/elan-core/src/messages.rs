//! Reliable messaging primitives (§V-D).
//!
//! Every Elan control message carries a unique ID and is resent on
//! timeout; receivers deduplicate by ID. This module provides the sender-
//! side [`RetryTracker`] and receiver-side [`DedupFilter`] used by both the
//! simulated protocol ([`crate::coordination`]) and the live runtime
//! (`elan-rt`).

use std::collections::{BTreeMap, HashSet};

use elan_sim::{SimDuration, SimTime};

/// A unique message identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "msg#{}", self.0)
    }
}

/// Allocates unique message IDs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MsgIdAllocator {
    next: u64,
}

impl MsgIdAllocator {
    /// Creates an allocator starting at ID 0.
    pub fn new() -> Self {
        MsgIdAllocator::default()
    }

    /// Creates an allocator whose IDs carry `owner` in the high 32 bits,
    /// so IDs from different senders never collide at a shared receiver.
    pub fn for_owner(owner: u32) -> Self {
        MsgIdAllocator {
            next: (owner as u64) << 32,
        }
    }

    /// Returns a fresh, never-before-issued ID.
    pub fn next_id(&mut self) -> MsgId {
        let id = MsgId(self.next);
        self.next += 1;
        id
    }
}

/// Sender-side bookkeeping: tracks in-flight messages and reports which
/// are due for resend after the timeout elapses without an ack.
///
/// # Examples
///
/// ```
/// use elan_core::messages::{MsgId, RetryTracker};
/// use elan_sim::{SimDuration, SimTime};
///
/// let mut tracker: RetryTracker<&'static str> = RetryTracker::new(SimDuration::from_secs(1));
/// tracker.track(MsgId(1), "hello", SimTime::ZERO);
/// // Nothing due before the timeout...
/// assert!(tracker.due(SimTime::from_secs(1) - SimDuration::from_nanos(1)).is_empty());
/// // ...the message is due for resend after it.
/// assert_eq!(tracker.due(SimTime::from_secs(1)), vec![(MsgId(1), "hello")]);
/// tracker.ack(MsgId(1));
/// assert!(tracker.due(SimTime::from_secs(99)).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RetryTracker<P> {
    timeout: SimDuration,
    inflight: BTreeMap<MsgId, (SimTime, P)>,
    resends: u64,
}

impl<P: Clone> RetryTracker<P> {
    /// Creates a tracker with the given resend timeout.
    pub fn new(timeout: SimDuration) -> Self {
        RetryTracker {
            timeout,
            inflight: BTreeMap::new(),
            resends: 0,
        }
    }

    /// Starts tracking a sent message.
    pub fn track(&mut self, id: MsgId, payload: P, sent_at: SimTime) {
        self.inflight.insert(id, (sent_at, payload));
    }

    /// Acknowledges a message; returns true if it was in flight.
    pub fn ack(&mut self, id: MsgId) -> bool {
        self.inflight.remove(&id).is_some()
    }

    /// Messages whose timeout has elapsed at `now`; their timers reset so
    /// they will be reported again one timeout later if still unacked.
    pub fn due(&mut self, now: SimTime) -> Vec<(MsgId, P)> {
        let mut out = Vec::new();
        for (&id, entry) in self.inflight.iter_mut() {
            if now.saturating_duration_since(entry.0) >= self.timeout {
                entry.0 = now;
                out.push((id, entry.1.clone()));
            }
        }
        self.resends += out.len() as u64;
        out
    }

    /// Messages still awaiting acknowledgement.
    pub fn pending(&self) -> usize {
        self.inflight.len()
    }

    /// Total resends performed — a fault-injection metric.
    pub fn resend_count(&self) -> u64 {
        self.resends
    }

    /// The configured timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

/// Receiver-side duplicate suppression by message ID.
#[derive(Debug, Clone, Default)]
pub struct DedupFilter {
    seen: HashSet<MsgId>,
    duplicates: u64,
}

impl DedupFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        DedupFilter::default()
    }

    /// Records `id`; returns true if this is the first delivery (the
    /// message should be processed) and false for duplicates.
    pub fn first_delivery(&mut self, id: MsgId) -> bool {
        let fresh = self.seen.insert(id);
        if !fresh {
            self.duplicates += 1;
        }
        fresh
    }

    /// Duplicates suppressed so far.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_never_repeats() {
        let mut a = MsgIdAllocator::new();
        let ids: Vec<MsgId> = (0..100).map(|_| a.next_id()).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn due_resets_timer() {
        let mut t = RetryTracker::new(SimDuration::from_secs(1));
        t.track(MsgId(1), (), SimTime::ZERO);
        assert_eq!(t.due(SimTime::from_secs(1)).len(), 1);
        // Immediately after a resend the timer restarts.
        assert!(t.due(SimTime::from_secs(1)).is_empty());
        assert_eq!(t.due(SimTime::from_secs(2)).len(), 1);
        assert_eq!(t.resend_count(), 2);
    }

    #[test]
    fn ack_stops_resends() {
        let mut t = RetryTracker::new(SimDuration::from_millis(100));
        t.track(MsgId(7), "x", SimTime::ZERO);
        assert!(t.ack(MsgId(7)));
        assert!(!t.ack(MsgId(7)));
        assert_eq!(t.pending(), 0);
        assert!(t.due(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn multiple_messages_tracked_independently() {
        let mut t = RetryTracker::new(SimDuration::from_secs(1));
        t.track(MsgId(1), 1, SimTime::ZERO);
        t.track(MsgId(2), 2, SimTime::from_nanos(500_000_000));
        let due = t.due(SimTime::from_secs(1));
        assert_eq!(due, vec![(MsgId(1), 1)]);
    }

    #[test]
    fn dedup_filters_replays() {
        let mut d = DedupFilter::new();
        assert!(d.first_delivery(MsgId(1)));
        assert!(!d.first_delivery(MsgId(1)));
        assert!(d.first_delivery(MsgId(2)));
        assert_eq!(d.duplicate_count(), 1);
    }
}
