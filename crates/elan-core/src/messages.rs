//! Reliable messaging primitives (§V-D).
//!
//! Every Elan control message carries a unique ID and is resent on
//! timeout; receivers deduplicate by ID. This module provides the sender-
//! side [`RetryTracker`] and receiver-side [`DedupFilter`] /
//! [`BoundedDedupFilter`] used by both the simulated protocol
//! ([`crate::coordination`]) and the live runtime (`elan-rt`).
//!
//! The tracker is generic over a [`Clock`] so the same code drives the
//! discrete-event simulator (over [`SimTime`]) and the live threaded
//! runtime (over [`std::time::Instant`]).

use std::collections::{BTreeMap, BTreeSet, HashSet};

use elan_sim::{SimDuration, SimTime};

/// A unique message identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

/// Bit position of the owner tag inside a [`MsgId`]: the high 32 bits
/// carry the sender stream, the low 32 bits the per-stream counter.
pub const OWNER_SHIFT: u32 = 32;

impl MsgId {
    /// The sender stream this ID belongs to (see
    /// [`MsgIdAllocator::for_owner`]).
    pub fn owner(self) -> u32 {
        (self.0 >> OWNER_SHIFT) as u32
    }
}

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "msg#{}", self.0)
    }
}

/// Allocates unique message IDs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MsgIdAllocator {
    next: u64,
}

impl MsgIdAllocator {
    /// Creates an allocator starting at ID 0.
    pub fn new() -> Self {
        MsgIdAllocator::default()
    }

    /// Creates an allocator whose IDs carry `owner` in the high 32 bits,
    /// so IDs from different senders never collide at a shared receiver.
    pub fn for_owner(owner: u32) -> Self {
        MsgIdAllocator {
            next: (owner as u64) << OWNER_SHIFT,
        }
    }

    /// Returns a fresh, never-before-issued ID.
    pub fn next_id(&mut self) -> MsgId {
        let id = MsgId(self.next);
        self.next += 1;
        id
    }
}

/// A point in time usable by [`RetryTracker`].
///
/// Implemented for the simulator's [`SimTime`] and for wall-clock
/// [`std::time::Instant`], so the same retry logic runs inside the
/// discrete-event simulation and the live threaded runtime.
pub trait Clock: Copy + Ord {
    /// The duration type separating two instants.
    type Span: Copy + Ord;

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    fn saturating_since(self, earlier: Self) -> Self::Span;
}

impl Clock for SimTime {
    type Span = SimDuration;

    fn saturating_since(self, earlier: Self) -> SimDuration {
        self.saturating_duration_since(earlier)
    }
}

impl Clock for std::time::Instant {
    type Span = std::time::Duration;

    fn saturating_since(self, earlier: Self) -> std::time::Duration {
        self.saturating_duration_since(earlier)
    }
}

/// What [`RetryTracker::poll`] decided about one overdue message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryOutcome<P> {
    /// The message timed out and should be sent again.
    Resend(MsgId, P),
    /// The message exhausted its attempt budget and was dropped from the
    /// tracker; the peer is presumed dead.
    GaveUp(MsgId, P),
}

#[derive(Debug, Clone)]
struct Inflight<P, T> {
    sent_at: T,
    attempts: u32,
    payload: P,
}

/// Sender-side bookkeeping: tracks in-flight messages and reports which
/// are due for resend after the timeout elapses without an ack.
///
/// An optional attempt budget ([`RetryTracker::with_max_attempts`]) turns
/// repeated silence into an explicit [`RetryOutcome::GaveUp`] signal, which
/// the live runtime uses as a failure detector.
///
/// # Examples
///
/// ```
/// use elan_core::messages::{MsgId, RetryTracker};
/// use elan_sim::{SimDuration, SimTime};
///
/// let mut tracker: RetryTracker<&'static str> = RetryTracker::new(SimDuration::from_secs(1));
/// tracker.track(MsgId(1), "hello", SimTime::ZERO);
/// // Nothing due before the timeout...
/// assert!(tracker.due(SimTime::from_secs(1) - SimDuration::from_nanos(1)).is_empty());
/// // ...the message is due for resend after it.
/// assert_eq!(tracker.due(SimTime::from_secs(1)), vec![(MsgId(1), "hello")]);
/// tracker.ack(MsgId(1));
/// assert!(tracker.due(SimTime::from_secs(99)).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RetryTracker<P, T: Clock = SimTime> {
    timeout: T::Span,
    max_attempts: Option<u32>,
    inflight: BTreeMap<MsgId, Inflight<P, T>>,
    resends: u64,
    give_ups: u64,
}

impl<P: Clone, T: Clock> RetryTracker<P, T> {
    /// Creates a tracker with the given resend timeout and no attempt cap.
    pub fn new(timeout: T::Span) -> Self {
        RetryTracker {
            timeout,
            max_attempts: None,
            inflight: BTreeMap::new(),
            resends: 0,
            give_ups: 0,
        }
    }

    /// Caps total send attempts per message (first send included). Once a
    /// message has been attempted `max` times and times out again,
    /// [`poll`](Self::poll) reports [`RetryOutcome::GaveUp`] and stops
    /// tracking it. `max` is clamped to at least 1.
    pub fn with_max_attempts(mut self, max: u32) -> Self {
        self.max_attempts = Some(max.max(1));
        self
    }

    /// Starts tracking a sent message (attempt #1).
    pub fn track(&mut self, id: MsgId, payload: P, sent_at: T) {
        self.inflight.insert(
            id,
            Inflight {
                sent_at,
                attempts: 1,
                payload,
            },
        );
    }

    /// Acknowledges a message; returns true if it was in flight.
    pub fn ack(&mut self, id: MsgId) -> bool {
        self.inflight.remove(&id).is_some()
    }

    /// Examines every in-flight message at `now` and returns an outcome for
    /// each overdue one: either a resend (timer reset, attempt counted) or a
    /// give-up (message dropped from the tracker).
    pub fn poll(&mut self, now: T) -> Vec<RetryOutcome<P>> {
        let mut out = Vec::new();
        let mut dead = Vec::new();
        for (&id, entry) in self.inflight.iter_mut() {
            if now.saturating_since(entry.sent_at) < self.timeout {
                continue;
            }
            if let Some(max) = self.max_attempts {
                if entry.attempts >= max {
                    dead.push(id);
                    continue;
                }
            }
            entry.sent_at = now;
            entry.attempts += 1;
            self.resends += 1;
            out.push(RetryOutcome::Resend(id, entry.payload.clone()));
        }
        for id in dead {
            let Some(entry) = self.inflight.remove(&id) else {
                continue;
            };
            self.give_ups += 1;
            out.push(RetryOutcome::GaveUp(id, entry.payload));
        }
        out
    }

    /// Messages whose timeout has elapsed at `now`; their timers reset so
    /// they will be reported again one timeout later if still unacked.
    ///
    /// Compatibility wrapper over [`poll`](Self::poll) that silently drops
    /// give-ups (they still count in [`give_up_count`](Self::give_up_count)).
    pub fn due(&mut self, now: T) -> Vec<(MsgId, P)> {
        self.poll(now)
            .into_iter()
            .filter_map(|o| match o {
                RetryOutcome::Resend(id, p) => Some((id, p)),
                RetryOutcome::GaveUp(..) => None,
            })
            .collect()
    }

    /// Send attempts recorded for an in-flight message.
    pub fn attempts(&self, id: MsgId) -> Option<u32> {
        self.inflight.get(&id).map(|e| e.attempts)
    }

    /// Messages still awaiting acknowledgement.
    pub fn pending(&self) -> usize {
        self.inflight.len()
    }

    /// IDs still awaiting acknowledgement.
    pub fn pending_ids(&self) -> Vec<MsgId> {
        self.inflight.keys().copied().collect()
    }

    /// Total resends performed — a fault-injection metric.
    pub fn resend_count(&self) -> u64 {
        self.resends
    }

    /// Messages abandoned after exhausting the attempt budget.
    pub fn give_up_count(&self) -> u64 {
        self.give_ups
    }

    /// The configured timeout.
    pub fn timeout(&self) -> T::Span {
        self.timeout
    }
}

/// Receiver-side duplicate suppression by message ID (unbounded).
#[derive(Debug, Clone, Default)]
pub struct DedupFilter {
    seen: HashSet<MsgId>,
    duplicates: u64,
}

impl DedupFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        DedupFilter::default()
    }

    /// Records `id`; returns true if this is the first delivery (the
    /// message should be processed) and false for duplicates.
    pub fn first_delivery(&mut self, id: MsgId) -> bool {
        let fresh = self.seen.insert(id);
        if !fresh {
            self.duplicates += 1;
        }
        fresh
    }

    /// Duplicates suppressed so far.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }
}

#[derive(Debug, Clone, Default)]
struct SenderWindow {
    /// Every sequence number strictly below this is presumed already seen.
    floor: u64,
    /// Recently seen sequence numbers at or above `floor`.
    seen: BTreeSet<u64>,
}

/// Receiver-side duplicate suppression with bounded memory.
///
/// [`DedupFilter`] remembers every ID forever, which is unacceptable for a
/// long-lived runtime. This filter keeps a sliding window of at most
/// `window` IDs **per sender stream** (the high 32 bits of the ID, see
/// [`MsgIdAllocator::for_owner`]). When a sender's window overflows, the
/// smallest retained ID is evicted and becomes the stream's high-watermark
/// floor: anything at or below the floor is treated as a duplicate.
///
/// This is safe because senders allocate IDs monotonically and a resend
/// reuses the original ID — an ID can only fall below the floor after the
/// sender has pushed `window` newer IDs through, by which point the old
/// message is either long-acked or abandoned.
#[derive(Debug, Clone)]
pub struct BoundedDedupFilter {
    window: usize,
    senders: BTreeMap<u32, SenderWindow>,
    duplicates: u64,
}

impl BoundedDedupFilter {
    /// Default per-sender window size.
    pub const DEFAULT_WINDOW: usize = 512;

    /// Creates a filter retaining at most `window` IDs per sender stream
    /// (clamped to at least 1).
    pub fn new(window: usize) -> Self {
        BoundedDedupFilter {
            window: window.max(1),
            senders: BTreeMap::new(),
            duplicates: 0,
        }
    }

    /// Records `id`; returns true if this is the first delivery (the
    /// message should be processed) and false for duplicates.
    pub fn first_delivery(&mut self, id: MsgId) -> bool {
        let stream = self.senders.entry(id.owner()).or_default();
        let seq = id.0;
        if seq < stream.floor || !stream.seen.insert(seq) {
            self.duplicates += 1;
            return false;
        }
        while stream.seen.len() > self.window {
            let Some(evicted) = stream.seen.pop_first() else {
                break;
            };
            stream.floor = evicted + 1;
        }
        true
    }

    /// Duplicates suppressed so far.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// Total IDs currently retained across every sender stream.
    pub fn retained(&self) -> usize {
        self.senders.values().map(|w| w.seen.len()).sum()
    }

    /// Sender streams currently tracked.
    pub fn streams(&self) -> usize {
        self.senders.len()
    }

    /// The configured per-sender window.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Default for BoundedDedupFilter {
    fn default() -> Self {
        BoundedDedupFilter::new(Self::DEFAULT_WINDOW)
    }
}

/// Which training-state stream a replicated chunk belongs to.
///
/// Elan (§IV) overlaps GPU-state replication with CPU-state replication;
/// in this reproduction the model parameters stand in for GPU state and
/// the optimizer (momentum) buffers for CPU state. Chunked state transfer
/// interleaves the two streams so they pipeline on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StateKind {
    /// Model parameters (the paper's GPU-resident state).
    Params,
    /// Optimizer momentum (the paper's CPU-resident state).
    Momentum,
}

impl std::fmt::Display for StateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateKind::Params => write!(f, "params"),
            StateKind::Momentum => write!(f, "momentum"),
        }
    }
}

/// How a state buffer of `total_elems` elements is split into fixed-size
/// chunks for streaming replication.
///
/// Every sender and receiver of a stream derives the identical plan from
/// `(total_elems, chunk_elems)`, so a chunk index alone pins down its
/// element range — chunks can arrive in any order, be duplicated, or be
/// resent individually without ambiguity.
///
/// # Examples
///
/// ```
/// use elan_core::messages::ChunkPlan;
///
/// let plan = ChunkPlan::new(10, 4);
/// assert_eq!(plan.n_chunks(), 3);
/// assert_eq!(plan.range(0), 0..4);
/// assert_eq!(plan.range(2), 8..10); // final chunk is short
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPlan {
    total_elems: usize,
    chunk_elems: usize,
}

impl ChunkPlan {
    /// Creates a plan splitting `total_elems` into chunks of at most
    /// `chunk_elems` elements.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(total_elems: usize, chunk_elems: usize) -> Self {
        assert!(total_elems > 0, "empty stream");
        assert!(chunk_elems > 0, "zero chunk size");
        ChunkPlan {
            total_elems,
            chunk_elems,
        }
    }

    /// Total elements in the stream.
    pub fn total_elems(&self) -> usize {
        self.total_elems
    }

    /// Elements per full chunk.
    pub fn chunk_elems(&self) -> usize {
        self.chunk_elems
    }

    /// Number of chunks (the last may be short).
    pub fn n_chunks(&self) -> usize {
        self.total_elems.div_ceil(self.chunk_elems)
    }

    /// Element range of chunk `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n_chunks()`.
    pub fn range(&self, index: usize) -> std::ops::Range<usize> {
        assert!(index < self.n_chunks(), "chunk index out of range");
        let start = index * self.chunk_elems;
        start..(start + self.chunk_elems).min(self.total_elems)
    }

    /// Iterates `(index, range)` over every chunk.
    pub fn ranges(&self) -> impl Iterator<Item = (usize, std::ops::Range<usize>)> + '_ {
        (0..self.n_chunks()).map(|i| (i, self.range(i)))
    }
}

/// Receiver-side bookkeeping for one chunked state stream: which chunks
/// have landed, which are still missing, and when the stream is complete.
///
/// `accept` is idempotent (duplicate chunks — chaos or resends — report
/// `false` and change nothing), and `missing` makes an interrupted
/// transfer *resumable*: a replacement source only needs to send the
/// chunks the receiver never got.
#[derive(Debug, Clone)]
pub struct ChunkAssembler {
    received: Vec<bool>,
    remaining: usize,
}

impl ChunkAssembler {
    /// Creates an assembler expecting `n_chunks` chunks.
    pub fn new(n_chunks: usize) -> Self {
        ChunkAssembler {
            received: vec![false; n_chunks],
            remaining: n_chunks,
        }
    }

    /// Records chunk `index`; returns true on first delivery, false for
    /// duplicates or out-of-range indices.
    pub fn accept(&mut self, index: usize) -> bool {
        match self.received.get_mut(index) {
            Some(slot) if !*slot => {
                *slot = true;
                self.remaining -= 1;
                true
            }
            _ => false,
        }
    }

    /// True once every chunk has landed.
    pub fn is_complete(&self) -> bool {
        self.remaining == 0
    }

    /// Chunks received so far.
    pub fn received_count(&self) -> usize {
        self.received.len() - self.remaining
    }

    /// Indices still outstanding, in ascending order.
    pub fn missing(&self) -> Vec<usize> {
        self.received
            .iter()
            .enumerate()
            .filter_map(|(i, &got)| (!got).then_some(i))
            .collect()
    }

    /// Forgets all progress (a newer stream superseded this one),
    /// reusing the existing allocation.
    pub fn reset(&mut self) {
        self.received.iter_mut().for_each(|b| *b = false);
        self.remaining = self.received.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn allocator_never_repeats() {
        let mut a = MsgIdAllocator::new();
        let ids: Vec<MsgId> = (0..100).map(|_| a.next_id()).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn owner_roundtrip() {
        let mut a = MsgIdAllocator::for_owner(42);
        assert_eq!(a.next_id().owner(), 42);
        assert_eq!(a.next_id().owner(), 42);
    }

    #[test]
    fn owner_shift_partitions_id_space() {
        // The owner tag and the per-stream counter must split the u64
        // exactly at OWNER_SHIFT: counters from different owners can
        // never collide, and the counter half is the full low word.
        assert_eq!(OWNER_SHIFT, u64::BITS / 2);
        let id = MsgIdAllocator::for_owner(u32::MAX).next_id();
        assert_eq!(id.owner(), u32::MAX);
        assert_eq!(id.0 & ((1u64 << OWNER_SHIFT) - 1), 0, "counter starts at 0");
    }

    #[test]
    fn due_resets_timer() {
        let mut t = RetryTracker::new(SimDuration::from_secs(1));
        t.track(MsgId(1), (), SimTime::ZERO);
        assert_eq!(t.due(SimTime::from_secs(1)).len(), 1);
        // Immediately after a resend the timer restarts.
        assert!(t.due(SimTime::from_secs(1)).is_empty());
        assert_eq!(t.due(SimTime::from_secs(2)).len(), 1);
        assert_eq!(t.resend_count(), 2);
    }

    #[test]
    fn ack_stops_resends() {
        let mut t = RetryTracker::new(SimDuration::from_millis(100));
        t.track(MsgId(7), "x", SimTime::ZERO);
        assert!(t.ack(MsgId(7)));
        assert!(!t.ack(MsgId(7)));
        assert_eq!(t.pending(), 0);
        assert!(t.due(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn multiple_messages_tracked_independently() {
        let mut t = RetryTracker::new(SimDuration::from_secs(1));
        t.track(MsgId(1), 1, SimTime::ZERO);
        t.track(MsgId(2), 2, SimTime::from_nanos(500_000_000));
        let due = t.due(SimTime::from_secs(1));
        assert_eq!(due, vec![(MsgId(1), 1)]);
    }

    #[test]
    fn give_up_after_attempt_budget() {
        let mut t: RetryTracker<&str> =
            RetryTracker::new(SimDuration::from_secs(1)).with_max_attempts(3);
        t.track(MsgId(5), "probe", SimTime::ZERO);
        // Attempts 2 and 3 are resends.
        assert_eq!(
            t.poll(SimTime::from_secs(1)),
            vec![RetryOutcome::Resend(MsgId(5), "probe")]
        );
        assert_eq!(
            t.poll(SimTime::from_secs(2)),
            vec![RetryOutcome::Resend(MsgId(5), "probe")]
        );
        assert_eq!(t.attempts(MsgId(5)), Some(3));
        // Budget exhausted: the next timeout is a give-up, then silence.
        assert_eq!(
            t.poll(SimTime::from_secs(3)),
            vec![RetryOutcome::GaveUp(MsgId(5), "probe")]
        );
        assert_eq!(t.pending(), 0);
        assert_eq!(t.give_up_count(), 1);
        assert!(t.poll(SimTime::from_secs(9)).is_empty());
    }

    #[test]
    fn give_up_does_not_affect_acked_or_fresh_messages() {
        let mut t: RetryTracker<u8> =
            RetryTracker::new(SimDuration::from_secs(1)).with_max_attempts(1);
        t.track(MsgId(1), 1, SimTime::ZERO);
        t.track(MsgId(2), 2, SimTime::ZERO);
        t.ack(MsgId(1));
        let out = t.poll(SimTime::from_secs(1));
        assert_eq!(out, vec![RetryOutcome::GaveUp(MsgId(2), 2)]);
        assert_eq!(t.give_up_count(), 1);
        assert_eq!(t.resend_count(), 0);
    }

    #[test]
    fn wall_clock_instantiation() {
        let t0 = Instant::now();
        let mut t: RetryTracker<&str, Instant> = RetryTracker::new(Duration::from_millis(50));
        t.track(MsgId(9), "wall", t0);
        assert!(t.poll(t0 + Duration::from_millis(10)).is_empty());
        assert_eq!(
            t.poll(t0 + Duration::from_millis(50)),
            vec![RetryOutcome::Resend(MsgId(9), "wall")]
        );
    }

    #[test]
    fn dedup_filters_replays() {
        let mut d = DedupFilter::new();
        assert!(d.first_delivery(MsgId(1)));
        assert!(!d.first_delivery(MsgId(1)));
        assert!(d.first_delivery(MsgId(2)));
        assert_eq!(d.duplicate_count(), 1);
    }

    #[test]
    fn bounded_dedup_filters_replays_within_window() {
        let mut d = BoundedDedupFilter::new(8);
        let mut ids = MsgIdAllocator::for_owner(3);
        let a = ids.next_id();
        let b = ids.next_id();
        assert!(d.first_delivery(a));
        assert!(d.first_delivery(b));
        assert!(!d.first_delivery(a));
        assert!(!d.first_delivery(b));
        assert_eq!(d.duplicate_count(), 2);
    }

    #[test]
    fn bounded_dedup_memory_stays_bounded() {
        let window = 64;
        let mut d = BoundedDedupFilter::new(window);
        let mut streams: Vec<MsgIdAllocator> = (0..4).map(MsgIdAllocator::for_owner).collect();
        for round in 0..10_000u64 {
            let alloc = &mut streams[(round % 4) as usize];
            assert!(d.first_delivery(alloc.next_id()));
            // Memory is bounded regardless of traffic volume.
            assert!(d.retained() <= window * 4, "retained {} ids", d.retained());
        }
        assert_eq!(d.streams(), 4);
        assert!(d.retained() <= window * 4);
        assert_eq!(d.duplicate_count(), 0);
    }

    #[test]
    fn bounded_dedup_watermark_rejects_ancient_ids() {
        let mut d = BoundedDedupFilter::new(4);
        let mut ids = MsgIdAllocator::for_owner(1);
        let ancient = ids.next_id();
        assert!(d.first_delivery(ancient));
        // Push enough newer ids to evict `ancient` from the window.
        for _ in 0..16 {
            assert!(d.first_delivery(ids.next_id()));
        }
        // A very late replay of the ancient id is still suppressed.
        assert!(!d.first_delivery(ancient));
    }

    #[test]
    fn chunk_plan_covers_every_element_exactly_once() {
        for (total, chunk) in [(1, 1), (10, 4), (4096, 4096), (4097, 4096), (1000, 1)] {
            let plan = ChunkPlan::new(total, chunk);
            let mut covered = vec![0u8; total];
            for (i, range) in plan.ranges() {
                assert_eq!(range, plan.range(i));
                for e in range {
                    covered[e] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "{total}/{chunk}");
            assert_eq!(plan.n_chunks(), total.div_ceil(chunk));
        }
    }

    #[test]
    #[should_panic(expected = "chunk index out of range")]
    fn chunk_plan_rejects_out_of_range_index() {
        let _ = ChunkPlan::new(10, 4).range(3);
    }

    #[test]
    fn chunk_assembler_tracks_and_dedups() {
        let mut asm = ChunkAssembler::new(3);
        assert!(!asm.is_complete());
        assert!(asm.accept(1));
        assert!(!asm.accept(1), "duplicate rejected");
        assert!(!asm.accept(9), "out of range rejected");
        assert_eq!(asm.missing(), vec![0, 2]);
        assert!(asm.accept(0));
        assert!(asm.accept(2));
        assert!(asm.is_complete());
        assert_eq!(asm.received_count(), 3);
        asm.reset();
        assert!(!asm.is_complete());
        assert_eq!(asm.missing(), vec![0, 1, 2]);
    }

    #[test]
    fn state_kind_displays() {
        assert_eq!(StateKind::Params.to_string(), "params");
        assert_eq!(StateKind::Momentum.to_string(), "momentum");
    }

    #[test]
    fn bounded_dedup_streams_are_independent() {
        let mut d = BoundedDedupFilter::new(4);
        let a0 = MsgIdAllocator::for_owner(10).next_id();
        // Saturate stream 20; stream 10's window must be untouched.
        let mut other = MsgIdAllocator::for_owner(20);
        assert!(d.first_delivery(a0));
        for _ in 0..32 {
            assert!(d.first_delivery(other.next_id()));
        }
        assert!(!d.first_delivery(a0), "still remembered in its own stream");
    }
}
