//! The asynchronous coordination mechanism as an executable protocol
//! (§V-B), run on the deterministic actor framework.
//!
//! Existing workers train in *rounds* (a fixed number of iterations) and
//! call `Coordinate` at every round boundary. New workers start and
//! initialize asynchronously, then `Report`. The AM answers `Proceed`
//! until every new worker has reported; the first round after that gets
//! `Adjust`, existing workers pause exactly for the replication +
//! state-adjustment time, and new workers join at the next round — no
//! shutdown, no waiting for stragglers' initialization.
//!
//! The protocol is fault-tolerant end to end: every request carries a
//! [`MsgId`] and is resent on timeout, replies are
//! cached against duplicate requests, and the AM can crash at any point
//! and a replacement recovers from the replicated store mid-adjustment.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

use elan_sim::{Actor, ActorId, Ctx, SimDuration, SimTime, World};
use elan_topology::GpuId;
use rand::Rng;

use crate::am::{AmState, ApplicationMaster, CoordinateReply};
use crate::elasticity::AdjustmentRequest;
use crate::messages::{DedupFilter, MsgId, MsgIdAllocator, RetryOutcome, RetryTracker};
use crate::store::ReplicatedStore;

/// What a worker must do after a coordination round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundAction {
    /// Keep training.
    Proceed,
    /// Pause for the adjustment; leave the job if `leave` is set.
    Adjust {
        /// Training stall applied to staying workers.
        pause: SimDuration,
        /// True for workers removed by scale-in/migration.
        leave: bool,
    },
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoMsg {
    /// Environment → AM: the scheduler requests an adjustment.
    AdjustRequest(AdjustmentRequest),
    /// Environment → new worker: the scheduler launched the process.
    StartWorker,
    /// Environment → AM: crash; ignore messages for the given time.
    CrashAm {
        /// Outage duration before a replacement AM recovers.
        down_for: SimDuration,
    },
    /// AM self-timer: the replacement AM comes up.
    RecoverAm,
    /// AM self-timer: check whether a coordination round completed; the
    /// silent workers of an incomplete round are declared failed.
    RoundWatchdog {
        /// The round being watched.
        round: u64,
    },
    /// AM self-timer: replication + state adjustment finished.
    AdjustExecuted,
    /// New-worker self-timer: start + initialization finished.
    InitDone,
    /// Worker → AM: ready to join (step ②).
    Report {
        /// Request id for retry/dedup.
        id: MsgId,
        /// The reporting worker.
        worker: GpuId,
    },
    /// Worker → AM: round boundary reached (step ③).
    Coordinate {
        /// Request id for retry/dedup.
        id: MsgId,
        /// The coordinating worker.
        worker: GpuId,
        /// The round just finished.
        round: u64,
    },
    /// AM → worker: acknowledge a report.
    ReportAck {
        /// Id of the acknowledged report.
        id: MsgId,
    },
    /// AM → worker: answer to `Coordinate`.
    CoordReply {
        /// Id of the answered request.
        id: MsgId,
        /// Round the decision applies to.
        round: u64,
        /// The decision.
        action: RoundAction,
    },
    /// AM → new worker: join the job starting at `round`.
    Join {
        /// First round the new worker trains.
        round: u64,
    },
    /// Worker self-timer: a training round finished.
    RoundDone,
    /// Worker self-timer: check the retry tracker.
    RetryTick,
    /// Worker self-timer: the adjustment pause elapsed.
    ResumeTraining,
    /// New-worker self-timer: still waiting to join — the `Join` reply may
    /// have been lost, so report again.
    AwaitJoinTick,
}

/// Per-worker statistics, shared with the harness.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Training rounds fully completed.
    pub rounds_completed: u64,
    /// Total wall time not spent training (coordination waits + pauses).
    pub stalled: SimDuration,
    /// When the worker stopped, if it did.
    pub stopped_at: Option<SimTime>,
    /// True once a new worker joined the job.
    pub joined: bool,
    /// True if the worker left via scale-in/migration.
    pub left: bool,
    /// Coordinate/Report resends performed.
    pub resends: u64,
}

/// AM-side statistics, shared with the harness.
#[derive(Debug, Clone, Default)]
pub struct AmStats {
    /// Coordinate messages processed (first deliveries).
    pub coordinates: u64,
    /// Report messages processed (first deliveries).
    pub reports: u64,
    /// Duplicate requests suppressed.
    pub duplicates: u64,
    /// When the adjustment completed, if one ran.
    pub adjustment_completed_at: Option<SimTime>,
    /// Number of crash/recovery cycles survived.
    pub recoveries: u64,
    /// A worker flagged as a straggler (consistently last to coordinate
    /// by more than the skew threshold), and when it was flagged — the
    /// §VII straggler-mitigation trigger.
    pub straggler_detected: Option<(GpuId, SimTime)>,
    /// Workers removed from the job after the round watchdog declared
    /// them failed (they stopped coordinating).
    pub workers_declared_failed: Vec<GpuId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerPhase {
    Training,
    AwaitingReply,
    Pausing,
    Initializing,
    WaitingJoin,
    Stopped,
}

struct WorkerActor {
    gpu: GpuId,
    am: ActorId,
    is_new: bool,
    round: u64,
    rounds_limit: u64,
    round_duration: SimDuration,
    init_time: SimDuration,
    retry_timeout: SimDuration,
    rpc_latency: SimDuration,
    loss_prob: f64,
    phase: WorkerPhase,
    ids: MsgIdAllocator,
    retry: RetryTracker<ProtoMsg>,
    retry_timer_armed: bool,
    await_since: SimTime,
    /// Remaining join probes before a never-joined worker gives up (the
    /// job may have finished before its adjustment ever executed).
    join_probes_left: u32,
    /// Straggler injection: `(slowdown factor, from round)`.
    slow_after: Option<(f64, u64)>,
    /// Crash injection: die silently after completing this round.
    crash_after: Option<u64>,
    stats: Rc<RefCell<WorkerStats>>,
}

impl WorkerActor {
    fn begin_round(&mut self, ctx: &mut Ctx<'_, ProtoMsg>) {
        if self.round >= self.rounds_limit {
            self.stop(ctx);
            return;
        }
        self.phase = WorkerPhase::Training;
        let mut duration = self.round_duration;
        if let Some((slowdown, from_round)) = self.slow_after {
            if self.round >= from_round {
                duration = duration.mul_f64(slowdown);
            }
        }
        ctx.set_timer(duration, ProtoMsg::RoundDone);
    }

    fn stop(&mut self, ctx: &mut Ctx<'_, ProtoMsg>) {
        self.phase = WorkerPhase::Stopped;
        self.stats.borrow_mut().stopped_at = Some(ctx.now());
    }

    /// Sends to the AM through the lossy channel, tracking for retry.
    fn send_tracked(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, id: MsgId, msg: ProtoMsg) {
        self.retry.track(id, msg.clone(), ctx.now());
        self.send_lossy(ctx, msg);
        self.arm_retry_timer(ctx);
    }

    fn send_lossy(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, msg: ProtoMsg) {
        let lost = self.loss_prob > 0.0 && ctx.rng().gen_bool(self.loss_prob);
        if !lost {
            ctx.send_after(self.rpc_latency, self.am, msg);
        }
    }

    fn arm_retry_timer(&mut self, ctx: &mut Ctx<'_, ProtoMsg>) {
        if !self.retry_timer_armed {
            self.retry_timer_armed = true;
            ctx.set_timer(self.retry_timeout, ProtoMsg::RetryTick);
        }
    }
}

impl Actor<ProtoMsg> for WorkerActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ProtoMsg>) {
        if self.is_new {
            self.phase = WorkerPhase::WaitingJoin; // until StartWorker arrives
        } else {
            self.begin_round(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, _from: ActorId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::StartWorker => {
                self.phase = WorkerPhase::Initializing;
                ctx.set_timer(self.init_time, ProtoMsg::InitDone);
            }
            ProtoMsg::InitDone => {
                let id = self.ids.next_id();
                self.send_tracked(
                    ctx,
                    id,
                    ProtoMsg::Report {
                        id,
                        worker: self.gpu,
                    },
                );
                self.phase = WorkerPhase::WaitingJoin;
            }
            ProtoMsg::ReportAck { id } => {
                self.retry.ack(id);
                // The ack does not mean we joined: the Join itself can be
                // lost, so keep probing until training starts.
                if self.phase == WorkerPhase::WaitingJoin {
                    ctx.set_timer(self.retry_timeout * 4, ProtoMsg::AwaitJoinTick);
                }
            }
            ProtoMsg::AwaitJoinTick if self.phase == WorkerPhase::WaitingJoin => {
                if self.join_probes_left == 0 {
                    // The job likely finished without us; stand down.
                    self.stop(ctx);
                    return;
                }
                self.join_probes_left -= 1;
                let id = self.ids.next_id();
                self.send_tracked(
                    ctx,
                    id,
                    ProtoMsg::Report {
                        id,
                        worker: self.gpu,
                    },
                );
            }
            ProtoMsg::Join { round } if self.phase == WorkerPhase::WaitingJoin => {
                self.round = round;
                self.stats.borrow_mut().joined = true;
                self.begin_round(ctx);
            }
            ProtoMsg::RoundDone => {
                if self.phase != WorkerPhase::Training {
                    return;
                }
                self.stats.borrow_mut().rounds_completed += 1;
                if self.crash_after == Some(self.round) {
                    // Die silently: no Coordinate, no Leave — the AM's
                    // watchdog must notice on its own.
                    self.stop(ctx);
                    return;
                }
                self.phase = WorkerPhase::AwaitingReply;
                self.await_since = ctx.now();
                let id = self.ids.next_id();
                let round = self.round;
                self.send_tracked(
                    ctx,
                    id,
                    ProtoMsg::Coordinate {
                        id,
                        worker: self.gpu,
                        round,
                    },
                );
            }
            ProtoMsg::CoordReply { id, round, action } => {
                if !self.retry.ack(id) || self.phase != WorkerPhase::AwaitingReply {
                    return; // duplicate or stale reply
                }
                debug_assert_eq!(round, self.round);
                let waited = ctx.now().saturating_duration_since(self.await_since);
                self.stats.borrow_mut().stalled += waited;
                match action {
                    RoundAction::Proceed => {
                        self.round += 1;
                        self.begin_round(ctx);
                    }
                    RoundAction::Adjust { pause, leave } => {
                        if leave {
                            self.stats.borrow_mut().left = true;
                            self.stop(ctx);
                        } else {
                            self.phase = WorkerPhase::Pausing;
                            self.stats.borrow_mut().stalled += pause;
                            ctx.set_timer(pause, ProtoMsg::ResumeTraining);
                        }
                    }
                }
            }
            ProtoMsg::ResumeTraining if self.phase == WorkerPhase::Pausing => {
                self.round += 1;
                self.begin_round(ctx);
            }
            ProtoMsg::RetryTick => {
                self.retry_timer_armed = false;
                for outcome in self.retry.poll(ctx.now()) {
                    match outcome {
                        RetryOutcome::Resend(_, m) => {
                            self.stats.borrow_mut().resends += 1;
                            self.send_lossy(ctx, m);
                        }
                        // The sim tracker has no attempt budget; give-ups
                        // cannot occur here.
                        RetryOutcome::GaveUp(..) => {}
                    }
                }
                if self.retry.pending() > 0 && self.phase != WorkerPhase::Stopped {
                    self.arm_retry_timer(ctx);
                }
            }
            _ => {}
        }
    }
}

struct AmActor {
    am: ApplicationMaster,
    job: &'static str,
    worker_actors: HashMap<GpuId, ActorId>,
    pause: SimDuration,
    rpc_latency: SimDuration,
    loss_prob: f64,
    crashed: bool,
    dedup: DedupFilter,
    reply_cache: HashMap<MsgId, ProtoMsg>,
    /// Protocol metadata persisted to "etcd" so a replacement AM answers
    /// consistently: the round the adjustment was pinned to, plus the join
    /// round of every completed joiner (for replaying lost Join messages,
    /// even across an AM crash).
    meta: ReplicatedStore<u64>,
    adjust_timer_armed: bool,
    /// Straggler detection: skew threshold, patience, and per-round
    /// arrival bookkeeping.
    straggler_skew: SimDuration,
    straggler_patience: u32,
    round_first: HashMap<u64, SimTime>,
    round_arrived: HashMap<u64, BTreeSet<GpuId>>,
    late_streak: HashMap<GpuId, u32>,
    last_spread: Option<(u64, SimDuration)>,
    /// A spare worker the AM may use to migrate a flagged straggler away.
    mitigation_replacement: Option<GpuId>,
    /// How long a round may stay incomplete before its silent members are
    /// declared failed.
    round_watchdog: SimDuration,
    stats: Rc<RefCell<AmStats>>,
}

impl AmActor {
    /// Per-round arrival bookkeeping for straggler detection (§VII): when
    /// every member has coordinated, the last arriver is late if the
    /// first-to-last spread *grew* by more than the skew threshold since
    /// the previous round (growth, not absolute drift — workers here are
    /// not allreduce-lockstepped); `patience` consecutive late rounds
    /// flag the worker.
    fn observe_coordination(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, worker: GpuId, round: u64) {
        let now = ctx.now();
        if let std::collections::hash_map::Entry::Vacant(e) = self.round_first.entry(round) {
            e.insert(now);
            // Arm the failure watchdog for this round.
            ctx.set_timer(self.round_watchdog, ProtoMsg::RoundWatchdog { round });
        }
        let arrived = self.round_arrived.entry(round).or_default();
        arrived.insert(worker);
        if arrived.len() < self.am.members().len() {
            return;
        }
        let Some(first) = self.round_first.remove(&round) else {
            return;
        };
        self.round_arrived.remove(&round);
        let spread = now.saturating_duration_since(first);
        let prev_spread = match self.last_spread {
            Some((r, s)) if r + 1 == round => s,
            _ => SimDuration::ZERO,
        };
        self.last_spread = Some((round, spread));
        let late = spread.saturating_sub(prev_spread) > self.straggler_skew;
        if late {
            let streak = self.late_streak.entry(worker).or_insert(0);
            *streak += 1;
            if *streak >= self.straggler_patience {
                let fresh = {
                    let mut stats = self.stats.borrow_mut();
                    let fresh = stats.straggler_detected.is_none();
                    if fresh {
                        stats.straggler_detected = Some((worker, now));
                    }
                    fresh
                };
                if fresh {
                    self.mitigate_straggler(ctx, worker);
                }
            }
            // Other workers kept pace this round.
            self.late_streak.retain(|&g, _| g == worker);
        } else {
            self.late_streak.clear();
        }
    }

    /// §VII straggler mitigation: migrate the flagged worker's shard to a
    /// healthy spare, if one was configured and no adjustment is in
    /// flight. The spare starts asynchronously like any new worker.
    fn mitigate_straggler(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, straggler: GpuId) {
        let Some(replacement) = self.mitigation_replacement.take() else {
            return;
        };
        let target: Vec<GpuId> = self
            .am
            .members()
            .iter()
            .copied()
            .filter(|&g| g != straggler)
            .chain(std::iter::once(replacement))
            .collect();
        let Ok(request) = AdjustmentRequest::new(self.am.members().to_vec(), target) else {
            return;
        };
        if self.am.request_adjustment(request).is_ok() {
            if let Some(&actor) = self.worker_actors.get(&replacement) {
                self.send_lossy(ctx, actor, ProtoMsg::StartWorker);
            }
        }
    }

    fn send_lossy(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, to: ActorId, msg: ProtoMsg) {
        let lost = self.loss_prob > 0.0 && ctx.rng().gen_bool(self.loss_prob);
        if !lost {
            ctx.send_after(self.rpc_latency, to, msg);
        }
    }

    fn adjust_round(&self) -> Option<u64> {
        self.meta.get("adjust_round").map(|v| v.value)
    }

    fn reply(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, worker: GpuId, msg: ProtoMsg) {
        if let Some(&actor) = self.worker_actors.get(&worker) {
            self.send_lossy(ctx, actor, msg);
        }
    }

    fn decide(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, round: u64) -> RoundAction {
        // A pinned adjustment round answers consistently, even across an
        // AM crash (the pin lives in the replicated store).
        if let Some(pinned) = self.adjust_round() {
            if round == pinned {
                return self.adjust_action();
            }
            return RoundAction::Proceed;
        }
        match self.am.coordinate() {
            CoordinateReply::Proceed => RoundAction::Proceed,
            CoordinateReply::BeginAdjustment(_) => {
                self.meta.put("adjust_round", round);
                self.arm_adjust_timer(ctx);
                self.adjust_action()
            }
        }
    }

    fn adjust_action(&self) -> RoundAction {
        RoundAction::Adjust {
            pause: self.pause,
            leave: false, // personalized per worker at the send site
        }
    }

    fn arm_adjust_timer(&mut self, ctx: &mut Ctx<'_, ProtoMsg>) {
        if !self.adjust_timer_armed {
            self.adjust_timer_armed = true;
            ctx.set_timer(self.rpc_latency + self.pause, ProtoMsg::AdjustExecuted);
        }
    }
}

impl Actor<ProtoMsg> for AmActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, _from: ActorId, msg: ProtoMsg) {
        if self.crashed {
            if msg == ProtoMsg::RecoverAm {
                // A replacement AM restores the persisted state machine.
                self.am = ApplicationMaster::recover(self.job, self.am.store().clone());
                self.crashed = false;
                self.stats.borrow_mut().recoveries += 1;
                // Volatile request bookkeeping is gone; retries repopulate it.
                self.dedup = DedupFilter::new();
                self.reply_cache.clear();
                // If we crashed mid-adjustment, finish executing it.
                if matches!(self.am.state(), AmState::Adjusting { .. }) {
                    self.adjust_timer_armed = false;
                    self.arm_adjust_timer(ctx);
                }
            }
            return; // everything else is lost during the outage
        }
        match msg {
            ProtoMsg::AdjustRequest(req) => {
                self.am
                    .request_adjustment(req)
                    .expect("scheduler serializes adjustment requests");
            }
            ProtoMsg::CrashAm { down_for } => {
                self.crashed = true;
                ctx.set_timer(down_for, ProtoMsg::RecoverAm);
            }
            ProtoMsg::Report { id, worker } => {
                if self.dedup.first_delivery(id) {
                    self.stats.borrow_mut().reports += 1;
                    // Unexpected reports (e.g. replayed after completion) are
                    // acked but otherwise ignored.
                    let _ = self.am.report(worker);
                } else {
                    self.stats.borrow_mut().duplicates += 1;
                }
                self.reply(ctx, worker, ProtoMsg::ReportAck { id });
                // A worker re-reporting after its adjustment completed
                // missed the (lossy) Join — replay it.
                if let Some(v) = self.meta.get(&format!("join/{}", worker.0)) {
                    let round = v.value;
                    self.reply(ctx, worker, ProtoMsg::Join { round });
                }
            }
            ProtoMsg::Coordinate { id, worker, round } => {
                if !self.dedup.first_delivery(id) {
                    self.stats.borrow_mut().duplicates += 1;
                    if let Some(cached) = self.reply_cache.get(&id).cloned() {
                        self.reply(ctx, worker, cached);
                    }
                    return;
                }
                self.stats.borrow_mut().coordinates += 1;
                // A worker that is no longer a member (it was removed by a
                // completed scale-in/migration but lost its Leave reply)
                // must be told to leave, not to proceed as a zombie.
                if self.adjust_round().is_none() && !self.am.members().contains(&worker) {
                    let reply = ProtoMsg::CoordReply {
                        id,
                        round,
                        action: RoundAction::Adjust {
                            pause: SimDuration::ZERO,
                            leave: true,
                        },
                    };
                    self.reply_cache.insert(id, reply.clone());
                    self.reply(ctx, worker, reply);
                    return;
                }
                self.observe_coordination(ctx, worker, round);
                let mut action = self.decide(ctx, round);
                if let RoundAction::Adjust { pause, .. } = action {
                    let leaving = match self.am.state() {
                        AmState::Adjusting { request } => request.leaving().contains(&worker),
                        _ => false,
                    };
                    action = RoundAction::Adjust {
                        pause,
                        leave: leaving,
                    };
                }
                let reply = ProtoMsg::CoordReply { id, round, action };
                self.reply_cache.insert(id, reply.clone());
                self.reply(ctx, worker, reply);
            }
            ProtoMsg::RoundWatchdog { round } => {
                // A round that is still incomplete after the watchdog
                // period means some members went silent: declare them
                // failed and repair the membership (the data-parallel
                // equivalent of a scale-in to the survivors).
                let Some(arrived) = self.round_arrived.remove(&round) else {
                    return; // round completed in time
                };
                self.round_first.remove(&round);
                if !matches!(self.am.state(), AmState::Idle) {
                    // An adjustment is executing; re-check next round.
                    self.round_arrived.insert(round, arrived);
                    ctx.set_timer(self.round_watchdog, ProtoMsg::RoundWatchdog { round });
                    return;
                }
                let survivors: Vec<GpuId> = arrived.iter().copied().collect();
                if survivors.is_empty() {
                    return; // nobody left to repair around
                }
                let failed: Vec<GpuId> = self
                    .am
                    .members()
                    .iter()
                    .copied()
                    .filter(|g| !arrived.contains(g))
                    .collect();
                if failed.is_empty() {
                    return;
                }
                self.stats
                    .borrow_mut()
                    .workers_declared_failed
                    .extend(failed.iter().copied());
                self.am.set_members(survivors);
                // Survivors of this round already got their replies; the
                // next rounds complete against the repaired membership.
            }
            ProtoMsg::AdjustExecuted => {
                self.adjust_timer_armed = false;
                let AmState::Adjusting { request } = self.am.state().clone() else {
                    return;
                };
                let Some(pinned_round) = self.adjust_round() else {
                    return;
                };
                let join_round = pinned_round + 1;
                for g in request.joining() {
                    self.meta.put(format!("join/{}", g.0), join_round);
                    let msg = ProtoMsg::Join { round: join_round };
                    self.reply(ctx, g, msg);
                }
                self.am
                    .adjustment_complete()
                    .expect("adjustment was executing");
                let _ = self.meta.delete("adjust_round");
                self.stats.borrow_mut().adjustment_completed_at = Some(ctx.now());
            }
            _ => {}
        }
    }
}

/// Configuration for one coordination-protocol run.
#[derive(Debug, Clone)]
pub struct CoordinationConfig {
    /// Workers at job start (placed on GPUs `0..n_existing`).
    pub n_existing: u32,
    /// The adjustment to request, if any.
    pub request: Option<AdjustmentRequest>,
    /// When the scheduler issues the request (and launches new workers).
    pub request_at: SimDuration,
    /// Wall time of one training round (`coordination_interval × t_iter`).
    pub round_duration: SimDuration,
    /// Rounds each worker trains before the job ends.
    pub rounds_limit: u64,
    /// Uniform start+init range for new workers.
    pub init_range: (SimDuration, SimDuration),
    /// Training stall applied when the adjustment executes.
    pub pause: SimDuration,
    /// One-way control-plane message latency.
    pub rpc_latency: SimDuration,
    /// Retry timeout for unacknowledged requests.
    pub retry_timeout: SimDuration,
    /// Probability that any control message is lost.
    pub loss_prob: f64,
    /// Optional AM crash: (when, outage duration).
    pub am_crash: Option<(SimDuration, SimDuration)>,
    /// Optional straggler injection: `(worker, slowdown, from_round)` —
    /// the worker's rounds take `slowdown`× longer starting at the round.
    pub straggler: Option<(GpuId, f64, u64)>,
    /// A spare GPU the AM may migrate a flagged straggler onto
    /// (autonomous §VII mitigation).
    pub straggler_replacement: Option<GpuId>,
    /// Optional worker-crash injection: `(worker, after_round)` — the
    /// worker silently dies after completing that round.
    pub worker_crash: Option<(GpuId, u64)>,
    /// How long the AM waits for a round to complete before declaring
    /// its silent members failed.
    pub round_watchdog: SimDuration,
    /// Skew beyond which the last coordinator of a round counts as late.
    pub straggler_skew: SimDuration,
    /// Consecutive late rounds before the AM flags a straggler.
    pub straggler_patience: u32,
    /// Root RNG seed.
    pub seed: u64,
}

impl CoordinationConfig {
    /// A small, healthy baseline configuration.
    pub fn baseline(n_existing: u32, rounds: u64) -> Self {
        CoordinationConfig {
            n_existing,
            request: None,
            request_at: SimDuration::from_secs(1),
            round_duration: SimDuration::from_secs(2),
            rounds_limit: rounds,
            init_range: (SimDuration::from_secs(20), SimDuration::from_secs(30)),
            pause: SimDuration::from_millis(800),
            rpc_latency: SimDuration::from_micros(200),
            retry_timeout: SimDuration::from_millis(500),
            loss_prob: 0.0,
            am_crash: None,
            straggler: None,
            straggler_replacement: None,
            worker_crash: None,
            round_watchdog: SimDuration::from_secs(30),
            straggler_skew: SimDuration::from_millis(500),
            straggler_patience: 3,
            seed: 42,
        }
    }
}

/// Results of one coordination-protocol run.
#[derive(Debug, Clone)]
pub struct CoordinationOutcome {
    /// When the simulation ended.
    pub end_time: SimTime,
    /// Per-worker statistics keyed by GPU.
    pub workers: BTreeMap<GpuId, WorkerStats>,
    /// AM statistics.
    pub am: AmStats,
}

impl CoordinationOutcome {
    /// The largest training stall experienced by any staying worker.
    pub fn max_stall(&self) -> SimDuration {
        self.workers
            .values()
            .filter(|w| !w.left)
            .map(|w| w.stalled)
            .fold(SimDuration::ZERO, SimDuration::max)
    }

    /// Total resends across all workers (fault-injection health metric).
    pub fn total_resends(&self) -> u64 {
        self.workers.values().map(|w| w.resends).sum()
    }
}

/// Runs the coordination protocol to completion.
///
/// # Panics
///
/// Panics if the request placement is incompatible with `n_existing`.
pub fn run_coordination(cfg: &CoordinationConfig) -> CoordinationOutcome {
    let mut world: World<ProtoMsg> = World::new(cfg.seed);
    let seeds = elan_sim::SeedStream::new(cfg.seed);

    let existing: Vec<GpuId> = (0..cfg.n_existing).map(GpuId).collect();
    if let Some(req) = &cfg.request {
        assert_eq!(
            req.current(),
            existing.as_slice(),
            "request must start from the current placement"
        );
    }
    let mut joining: Vec<GpuId> = cfg
        .request
        .as_ref()
        .map(|r| r.joining())
        .unwrap_or_default();
    // A straggler-mitigation spare is spawned like any launched-but-not-
    // started worker; the AM starts it if and when it flags a straggler.
    if let Some(spare) = cfg.straggler_replacement {
        if !joining.contains(&spare) && !existing.contains(&spare) {
            joining.push(spare);
        }
    }

    let am_id = world.reserve_id();
    let mut worker_actors = HashMap::new();
    let mut injection_targets: HashMap<GpuId, ActorId> = HashMap::new();
    let mut stats_handles: BTreeMap<GpuId, Rc<RefCell<WorkerStats>>> = BTreeMap::new();

    for (idx, &gpu) in existing.iter().chain(joining.iter()).enumerate() {
        let id = world.reserve_id();
        worker_actors.insert(gpu, id);
        injection_targets.insert(gpu, id);
        let stats = Rc::new(RefCell::new(WorkerStats::default()));
        stats_handles.insert(gpu, Rc::clone(&stats));
        let is_new = idx >= existing.len();
        let span = cfg.init_range.1.saturating_sub(cfg.init_range.0).as_nanos();
        let mut rng = seeds.rng_indexed("init", gpu.0 as u64);
        let init_time = cfg.init_range.0 + SimDuration::from_nanos(rng.gen_range(0..=span.max(1)));
        world.spawn_with_id(
            id,
            WorkerActor {
                gpu,
                am: am_id,
                is_new,
                round: 0,
                rounds_limit: cfg.rounds_limit,
                round_duration: cfg.round_duration,
                init_time,
                retry_timeout: cfg.retry_timeout,
                rpc_latency: cfg.rpc_latency,
                loss_prob: cfg.loss_prob,
                phase: WorkerPhase::Training,
                ids: MsgIdAllocator::for_owner(gpu.0 + 1),
                retry: RetryTracker::new(cfg.retry_timeout),
                retry_timer_armed: false,
                await_since: SimTime::ZERO,
                join_probes_left: 64,
                slow_after: cfg
                    .straggler
                    .filter(|&(g, _, _)| g == gpu)
                    .map(|(_, slowdown, from)| (slowdown, from)),
                crash_after: cfg
                    .worker_crash
                    .filter(|&(g, _)| g == gpu)
                    .map(|(_, round)| round),
                stats,
            },
        );
    }

    let am_stats = Rc::new(RefCell::new(AmStats::default()));
    let mut am = ApplicationMaster::new("coordination-sim");
    am.set_members(existing.clone());
    world.spawn_with_id(
        am_id,
        AmActor {
            am,
            job: "coordination-sim",
            worker_actors,
            pause: cfg.pause,
            rpc_latency: cfg.rpc_latency,
            loss_prob: cfg.loss_prob,
            crashed: false,
            dedup: DedupFilter::new(),
            reply_cache: HashMap::new(),
            meta: ReplicatedStore::new(),
            adjust_timer_armed: false,
            straggler_skew: cfg.straggler_skew,
            straggler_patience: cfg.straggler_patience,
            round_first: HashMap::new(),
            round_arrived: HashMap::new(),
            late_streak: HashMap::new(),
            last_spread: None,
            mitigation_replacement: cfg.straggler_replacement,
            round_watchdog: cfg.round_watchdog,
            stats: Rc::clone(&am_stats),
        },
    );

    if let Some(req) = &cfg.request {
        world.inject(cfg.request_at, am_id, ProtoMsg::AdjustRequest(req.clone()));
        // The scheduler launches new workers together with the request.
        for g in &joining {
            world.inject(cfg.request_at, injection_targets[g], ProtoMsg::StartWorker);
        }
    }
    if let Some((at, down_for)) = cfg.am_crash {
        world.inject(at, am_id, ProtoMsg::CrashAm { down_for });
    }

    let end_time = world.run();
    let workers = stats_handles
        .into_iter()
        .map(|(g, s)| (g, s.borrow().clone()))
        .collect();
    let am = am_stats.borrow().clone();
    CoordinationOutcome {
        end_time,
        workers,
        am,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_runs_all_rounds() {
        let cfg = CoordinationConfig::baseline(4, 10);
        let out = run_coordination(&cfg);
        assert_eq!(out.workers.len(), 4);
        for (g, w) in &out.workers {
            assert_eq!(w.rounds_completed, 10, "{g} fell short");
            assert!(!w.left);
        }
        assert!(out.am.adjustment_completed_at.is_none());
    }

    #[test]
    fn coordination_overhead_is_tiny() {
        // Without adjustments, stall per round is just the RPC round trip:
        // far below 0.3% of training time (Fig. 14's claim).
        let cfg = CoordinationConfig::baseline(8, 20);
        let out = run_coordination(&cfg);
        let training = cfg.round_duration * cfg.rounds_limit;
        for w in out.workers.values() {
            let ratio = w.stalled.as_secs_f64() / training.as_secs_f64();
            assert!(ratio < 0.003, "overhead {ratio:.5}");
        }
    }

    #[test]
    fn scale_out_joins_new_workers_without_stopping_existing() {
        let mut cfg = CoordinationConfig::baseline(4, 30);
        cfg.request = Some(AdjustmentRequest::contiguous(4, 8));
        let out = run_coordination(&cfg);
        assert!(out.am.adjustment_completed_at.is_some());
        // New workers joined and trained.
        for g in 4..8 {
            let w = &out.workers[&GpuId(g)];
            assert!(w.joined, "gpu{g} never joined");
            assert!(w.rounds_completed > 0);
        }
        // Existing workers stalled only ~pause + RPC, not the ~25s init.
        for g in 0..4 {
            let w = &out.workers[&GpuId(g)];
            assert!(
                w.stalled < cfg.pause + SimDuration::from_secs(1),
                "gpu{g} stalled {}",
                w.stalled
            );
            assert_eq!(w.rounds_completed, 30);
        }
    }

    #[test]
    fn adjustment_waits_for_slowest_report() {
        let mut cfg = CoordinationConfig::baseline(2, 40);
        cfg.request = Some(AdjustmentRequest::contiguous(2, 4));
        let out = run_coordination(&cfg);
        let done = out.am.adjustment_completed_at.unwrap();
        // Init takes 20-30s; the request goes out at 1s; the adjustment
        // can only run at a round boundary after the slowest report.
        assert!(done.as_secs_f64() > 21.0);
        assert!(done.as_secs_f64() < 40.0);
    }

    #[test]
    fn scale_in_removes_workers() {
        let mut cfg = CoordinationConfig::baseline(8, 30);
        cfg.request = Some(AdjustmentRequest::contiguous(8, 4));
        let out = run_coordination(&cfg);
        assert!(out.am.adjustment_completed_at.is_some());
        for g in 4..8 {
            let w = &out.workers[&GpuId(g)];
            assert!(w.left, "gpu{g} should have left");
            assert!(w.rounds_completed < 30);
        }
        for g in 0..4 {
            assert_eq!(out.workers[&GpuId(g)].rounds_completed, 30);
        }
    }

    #[test]
    fn migration_swaps_worker_sets() {
        let mut cfg = CoordinationConfig::baseline(2, 20);
        cfg.request = Some(AdjustmentRequest::migration(2, 4));
        let out = run_coordination(&cfg);
        assert!(out.am.adjustment_completed_at.is_some());
        for g in 0..2 {
            assert!(out.workers[&GpuId(g)].left);
        }
        for g in 4..6 {
            assert!(out.workers[&GpuId(g)].joined);
        }
    }

    #[test]
    fn message_loss_is_survived_by_retries() {
        let mut cfg = CoordinationConfig::baseline(4, 15);
        cfg.loss_prob = 0.2;
        cfg.request = Some(AdjustmentRequest::contiguous(4, 6));
        let out = run_coordination(&cfg);
        assert!(out.total_resends() > 0, "loss should force resends");
        assert!(out.am.adjustment_completed_at.is_some());
        for g in 0..4 {
            assert_eq!(out.workers[&GpuId(g)].rounds_completed, 15);
        }
    }

    #[test]
    fn am_crash_mid_preparation_recovers() {
        let mut cfg = CoordinationConfig::baseline(4, 40);
        cfg.request = Some(AdjustmentRequest::contiguous(4, 8));
        // Crash while new workers are still initializing.
        cfg.am_crash = Some((SimDuration::from_secs(10), SimDuration::from_secs(5)));
        let out = run_coordination(&cfg);
        assert_eq!(out.am.recoveries, 1);
        assert!(
            out.am.adjustment_completed_at.is_some(),
            "adjustment must complete after recovery"
        );
        for g in 4..8 {
            assert!(out.workers[&GpuId(g)].joined);
        }
    }

    #[test]
    fn crashed_worker_is_declared_failed_and_training_continues() {
        // gpu2 dies silently after round 5; the watchdog removes it and
        // the survivors complete every round.
        let mut cfg = CoordinationConfig::baseline(4, 25);
        cfg.worker_crash = Some((GpuId(2), 5));
        let out = run_coordination(&cfg);
        assert_eq!(out.am.workers_declared_failed, vec![GpuId(2)]);
        for g in [0u32, 1, 3] {
            assert_eq!(out.workers[&GpuId(g)].rounds_completed, 25, "gpu{g}");
        }
        assert_eq!(out.workers[&GpuId(2)].rounds_completed, 6); // 0..=5
    }

    #[test]
    fn watchdog_stays_quiet_without_failures() {
        let mut cfg = CoordinationConfig::baseline(6, 20);
        cfg.request = Some(AdjustmentRequest::contiguous(6, 8));
        cfg.loss_prob = 0.1;
        let out = run_coordination(&cfg);
        assert!(out.am.workers_declared_failed.is_empty());
        assert!(out.am.adjustment_completed_at.is_some());
    }

    #[test]
    fn straggler_is_detected() {
        // gpu2 slows to 2x from round 5: the AM flags it within a few
        // rounds (§VII straggler mitigation trigger).
        let mut cfg = CoordinationConfig::baseline(4, 20);
        cfg.straggler = Some((GpuId(2), 2.0, 5));
        let out = run_coordination(&cfg);
        let (who, when) = out.am.straggler_detected.expect("straggler flagged");
        assert_eq!(who, GpuId(2));
        // Flagged after the slowdown began and within the patience window.
        assert!(when.as_secs_f64() > 5.0 * 2.0);
        assert!(when.as_secs_f64() < 20.0 * 4.0);
    }

    #[test]
    fn straggler_is_migrated_away_autonomously() {
        // A spare on gpu9 is configured: once gpu2 is flagged, the AM
        // starts the spare, waits for its report, and migrates gpu2's
        // shard over — gpu2 leaves, gpu9 joins, training continues.
        let mut cfg = CoordinationConfig::baseline(4, 60);
        cfg.straggler = Some((GpuId(2), 2.0, 5));
        cfg.straggler_replacement = Some(GpuId(9));
        let out = run_coordination(&cfg);
        assert!(out.am.straggler_detected.is_some());
        assert!(out.am.adjustment_completed_at.is_some());
        assert!(out.workers[&GpuId(2)].left, "straggler should leave");
        assert!(out.workers[&GpuId(9)].joined, "spare should join");
        // Healthy workers finish all rounds.
        for g in [0u32, 1, 3] {
            assert_eq!(out.workers[&GpuId(g)].rounds_completed, 60);
        }
    }

    #[test]
    fn healthy_runs_raise_no_straggler_alarm() {
        let cfg = CoordinationConfig::baseline(8, 30);
        let out = run_coordination(&cfg);
        assert!(out.am.straggler_detected.is_none());
    }

    #[test]
    fn mild_jitter_is_tolerated() {
        // A slowdown below the skew threshold must not trigger.
        let mut cfg = CoordinationConfig::baseline(4, 20);
        // 2s rounds; skew threshold 500ms; 1.1x slowdown = 200ms skew.
        cfg.straggler = Some((GpuId(1), 1.1, 0));
        let out = run_coordination(&cfg);
        assert!(out.am.straggler_detected.is_none());
    }

    #[test]
    fn joiners_stand_down_when_the_job_ends_first() {
        // A short job (6 rounds = 12s) finishes before the ~25s init of
        // the new workers: the adjustment never executes, and the joiners
        // must give up instead of probing forever.
        let mut cfg = CoordinationConfig::baseline(4, 6);
        cfg.request = Some(AdjustmentRequest::contiguous(4, 6));
        let out = run_coordination(&cfg);
        assert!(out.am.adjustment_completed_at.is_none());
        for g in 4..6 {
            let w = &out.workers[&GpuId(g)];
            assert!(!w.joined);
            assert!(w.stopped_at.is_some(), "gpu{g} never stood down");
        }
        // The run terminates (bounded virtual time).
        assert!(out.end_time.as_secs_f64() < 600.0);
    }

    #[test]
    fn deterministic_outcomes() {
        let mut cfg = CoordinationConfig::baseline(4, 12);
        cfg.request = Some(AdjustmentRequest::contiguous(4, 6));
        cfg.loss_prob = 0.1;
        let a = run_coordination(&cfg);
        let b = run_coordination(&cfg);
        assert_eq!(a.am.adjustment_completed_at, b.am.adjustment_completed_at);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.total_resends(), b.total_resends());
    }
}
