//! The Elan elastic training system — the paper's primary contribution.
//!
//! Elan provides elasticity (scaling in, scaling out, migration) for
//! data-parallel deep-learning training with collective communication,
//! built from three mechanisms:
//!
//! - **Hybrid scaling** ([`scaling`], §III): when resources change, choose
//!   between strong scaling (keep the total batch size) and weak scaling
//!   (grow it), picking the *minimum* batch whose strong-scaling optimum
//!   covers the new worker count, and ramping the learning rate with the
//!   progressive linear scaling rule.
//! - **Concurrent IO-free state replication** (§IV, implemented in
//!   `elan-topology` and driven from [`adjustment`]): topology-aware
//!   source selection and contention-free concurrent transfer waves.
//! - **Asynchronous coordination** ([`am`], [`coordination`], §V-B): an
//!   application master coordinates workers at iteration boundaries; new
//!   workers start and initialize in parallel with ongoing training; no
//!   existing worker ever shuts down.
//!
//! Supporting pieces: the training-state hook API ([`state`], §V-A), the
//! serial data-loading semantics ([`data`], §V-C), the replicated store and
//! message retry machinery backing AM fault tolerance ([`store`],
//! [`messages`], §V-D), the elasticity-system abstraction shared with the
//! baselines ([`elasticity`]), and the elastic-training experiment driver
//! ([`job`], §VI-B).
//!
//! # Examples
//!
//! Hybrid scaling reproducing the paper's elastic configuration:
//!
//! ```
//! use elan_core::scaling::hybrid_scale;
//! use elan_models::{perf::PerfModel, zoo};
//!
//! let perf = PerfModel::paper_default();
//! let model = zoo::resnet50();
//! let n_opt = |tbs: u32| perf.optimal_workers(&model, tbs, 256);
//! // Scaling a 16-worker, TBS-512 job out to 32 workers doubles the batch.
//! let d = hybrid_scale(512, 16, 32, n_opt);
//! assert_eq!(d.new_total_batch, 1024);
//! assert_eq!(d.lr_factor, 2.0);
//! ```

pub mod adjustment;
pub mod am;
pub mod api;
pub mod codec;
pub mod coordination;
pub mod data;
pub mod elasticity;
pub mod error;
pub mod job;
pub mod lease;
pub mod messages;
pub mod obs;
pub mod protocol;
pub mod scaling;
pub mod state;
pub mod store;

pub use adjustment::ElanSystem;
pub use am::{AmState, ApplicationMaster, CoordinateReply};
pub use elasticity::{
    AdjustmentContext, AdjustmentCost, AdjustmentKind, AdjustmentRequest, ElasticitySystem,
};
pub use error::ElanError;
pub use obs::{
    AdjustmentPhase, Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot,
    PhaseWindow,
};
pub use scaling::{hybrid_scale, ProgressiveLrRamp, ScalingDecision, ScalingMode};
pub use state::{HookRegistry, StateHook, TrainingState, WorkerId};
pub use store::ReplicatedStore;
