//! The elasticity-system abstraction shared by Elan and the baselines.
//!
//! A resource adjustment is described by an [`AdjustmentRequest`] (which
//! GPUs the job runs on before and after); an [`ElasticitySystem`] turns a
//! request into an [`AdjustmentCost`]: how long training *pauses* and how
//! long until the new configuration is fully *in effect*. Elan implements
//! the trait in [`crate::adjustment`]; Shutdown-&-Restart and Litz
//! implement it in `elan-baselines`, making the Fig. 15/16 comparisons
//! apples-to-apples.

use std::error::Error;
use std::fmt;

use elan_sim::{SimDuration, SimTime};
use elan_topology::{BandwidthModel, GpuId, Topology};

use elan_models::{ModelSpec, PerfModel};

/// The three kinds of resource adjustment (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdjustmentKind {
    /// Add workers to a running job.
    ScaleOut,
    /// Remove workers from a running job.
    ScaleIn,
    /// Move the job to a disjoint (or overlapping) set of workers.
    Migration,
}

impl fmt::Display for AdjustmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AdjustmentKind::ScaleOut => "scale-out",
            AdjustmentKind::ScaleIn => "scale-in",
            AdjustmentKind::Migration => "migration",
        };
        f.write_str(s)
    }
}

/// Errors constructing an [`AdjustmentRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// A placement list is empty.
    EmptyPlacement,
    /// The same GPU appears twice in a placement.
    DuplicateGpu(GpuId),
    /// The request does not change anything.
    NoChange,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::EmptyPlacement => write!(f, "placement must not be empty"),
            RequestError::DuplicateGpu(g) => write!(f, "{g} appears twice in a placement"),
            RequestError::NoChange => write!(f, "request changes nothing"),
        }
    }
}

impl Error for RequestError {}

/// A resource-adjustment request: the job's placement before and after.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjustmentRequest {
    kind: AdjustmentKind,
    current: Vec<GpuId>,
    target: Vec<GpuId>,
}

impl AdjustmentRequest {
    /// Builds a request, inferring the kind from the placements:
    /// a superset target is a scale-out, a subset is a scale-in, anything
    /// else is a migration.
    ///
    /// # Errors
    ///
    /// Returns [`RequestError`] for empty placements, duplicate GPUs, or a
    /// target identical to the current placement.
    pub fn new(current: Vec<GpuId>, target: Vec<GpuId>) -> Result<Self, RequestError> {
        if current.is_empty() || target.is_empty() {
            return Err(RequestError::EmptyPlacement);
        }
        for list in [&current, &target] {
            let mut sorted = list.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                if w[0] == w[1] {
                    return Err(RequestError::DuplicateGpu(w[0]));
                }
            }
        }
        let mut cur_sorted = current.clone();
        cur_sorted.sort_unstable();
        let mut tgt_sorted = target.clone();
        tgt_sorted.sort_unstable();
        if cur_sorted == tgt_sorted {
            return Err(RequestError::NoChange);
        }
        let target_is_superset = cur_sorted
            .iter()
            .all(|g| tgt_sorted.binary_search(g).is_ok());
        let target_is_subset = tgt_sorted
            .iter()
            .all(|g| cur_sorted.binary_search(g).is_ok());
        let kind = if target_is_superset {
            AdjustmentKind::ScaleOut
        } else if target_is_subset {
            AdjustmentKind::ScaleIn
        } else {
            AdjustmentKind::Migration
        };
        Ok(AdjustmentRequest {
            kind,
            current,
            target,
        })
    }

    /// Convenience constructor: grow from `n_before` to `n_after` workers
    /// on contiguously numbered GPUs — the layout of the Fig. 15 scales.
    ///
    /// # Panics
    ///
    /// Panics if the counts are equal or zero (use [`AdjustmentRequest::new`]
    /// for irregular placements).
    pub fn contiguous(n_before: u32, n_after: u32) -> Self {
        assert!(n_before > 0 && n_after > 0 && n_before != n_after);
        let current = (0..n_before).map(GpuId).collect();
        let target = (0..n_after).map(GpuId).collect();
        AdjustmentRequest::new(current, target).expect("contiguous placements are valid")
    }

    /// Convenience constructor: migrate `n` workers from GPUs
    /// `[0, n)` to GPUs `[offset, offset + n)`.
    ///
    /// # Panics
    ///
    /// Panics if the placements overlap into identity (`offset == 0`).
    pub fn migration(n: u32, offset: u32) -> Self {
        assert!(n > 0 && offset > 0);
        let current = (0..n).map(GpuId).collect();
        let target = (offset..offset + n).map(GpuId).collect();
        AdjustmentRequest::new(current, target).expect("disjoint placements are valid")
    }

    /// The adjustment kind.
    pub fn kind(&self) -> AdjustmentKind {
        self.kind
    }

    /// Placement before the adjustment.
    pub fn current(&self) -> &[GpuId] {
        &self.current
    }

    /// Placement after the adjustment.
    pub fn target(&self) -> &[GpuId] {
        &self.target
    }

    /// GPUs that join: in the target but not the current placement.
    pub fn joining(&self) -> Vec<GpuId> {
        self.target
            .iter()
            .copied()
            .filter(|g| !self.current.contains(g))
            .collect()
    }

    /// GPUs that leave: in the current but not the target placement.
    pub fn leaving(&self) -> Vec<GpuId> {
        self.current
            .iter()
            .copied()
            .filter(|g| !self.target.contains(g))
            .collect()
    }

    /// Worker count before.
    pub fn n_before(&self) -> u32 {
        self.current.len() as u32
    }

    /// Worker count after.
    pub fn n_after(&self) -> u32 {
        self.target.len() as u32
    }
}

impl fmt::Display for AdjustmentRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}→{}", self.kind, self.n_before(), self.n_after())
    }
}

/// What an adjustment costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjustmentCost {
    /// Wall time during which training makes no progress — what Fig. 15
    /// reports (Elan hides everything else off the critical path).
    pub pause: SimDuration,
    /// Wall time from the request until the new configuration is training
    /// (includes hidden start/initialization).
    pub completion: SimDuration,
}

impl AdjustmentCost {
    /// A free adjustment (the "Ideal" system of Fig. 22).
    pub const FREE: AdjustmentCost = AdjustmentCost {
        pause: SimDuration::ZERO,
        completion: SimDuration::ZERO,
    };
}

/// Everything an elasticity system needs to price an adjustment.
#[derive(Debug, Clone, Copy)]
pub struct AdjustmentContext<'a> {
    /// The cluster topology (placements index into it).
    pub topology: &'a Topology,
    /// Link bandwidth/latency model.
    pub bandwidth: &'a BandwidthModel,
    /// Iteration-time model (for coordination-boundary math).
    pub perf: &'a PerfModel,
    /// The model being trained.
    pub model: &'a ModelSpec,
    /// Total batch size at the time of the adjustment.
    pub total_batch: u32,
    /// Workers coordinate with the AM every this many iterations.
    pub coordination_interval: u32,
    /// Seed for the deterministic start/init samples.
    pub seed: u64,
}

impl<'a> AdjustmentContext<'a> {
    /// Duration between coordination boundaries for `n_workers`.
    pub fn coordination_period(&self, n_workers: u32) -> SimDuration {
        self.perf
            .iteration_time(self.model, n_workers, self.total_batch)
            * self.coordination_interval as u64
    }

    /// Time from `at` to the next coordination boundary (boundaries fall at
    /// integer multiples of the coordination period).
    pub fn next_boundary_after(&self, at: SimDuration, n_workers: u32) -> SimDuration {
        let period = self.coordination_period(n_workers).as_nanos();
        let at_ns = at.as_nanos();
        let k = at_ns.div_ceil(period.max(1));
        SimDuration::from_nanos(k * period)
    }
}

/// A system providing elastic resource adjustments.
///
/// Implemented by Elan ([`crate::adjustment::ElanSystem`]) and the
/// baselines (`elan-baselines`).
pub trait ElasticitySystem {
    /// Human-readable system name for reports.
    fn name(&self) -> &'static str;

    /// Prices one adjustment.
    fn adjust(&self, request: &AdjustmentRequest, ctx: &AdjustmentContext<'_>) -> AdjustmentCost;

    /// Fraction of iteration time wasted on elasticity maintenance when no
    /// adjustments happen (Fig. 14's runtime overhead), for a job of
    /// `n_workers`.
    fn runtime_overhead(&self, ctx: &AdjustmentContext<'_>, n_workers: u32) -> f64;

    /// Training throughput relative to plain collective training (1.0 for
    /// systems that train natively; Litz pays context-switch costs).
    fn relative_throughput(&self, ctx: &AdjustmentContext<'_>, n_workers: u32) -> f64 {
        let _ = (ctx, n_workers);
        1.0
    }
}

/// The "Ideal" elasticity system of Fig. 22: zero overhead, instantaneous
/// adjustments.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealSystem;

impl ElasticitySystem for IdealSystem {
    fn name(&self) -> &'static str {
        "Ideal"
    }

    fn adjust(&self, _request: &AdjustmentRequest, _ctx: &AdjustmentContext<'_>) -> AdjustmentCost {
        AdjustmentCost::FREE
    }

    fn runtime_overhead(&self, _ctx: &AdjustmentContext<'_>, _n_workers: u32) -> f64 {
        0.0
    }
}

/// A point on virtual time when an adjustment finished, for logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjustmentRecord {
    /// When the request was issued.
    pub requested_at: SimTime,
    /// When training resumed under the new configuration.
    pub completed_at: SimTime,
    /// The cost breakdown.
    pub cost: AdjustmentCost,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_inference() {
        let out = AdjustmentRequest::contiguous(4, 8);
        assert_eq!(out.kind(), AdjustmentKind::ScaleOut);
        assert_eq!(out.joining().len(), 4);
        assert!(out.leaving().is_empty());

        let inn = AdjustmentRequest::contiguous(8, 4);
        assert_eq!(inn.kind(), AdjustmentKind::ScaleIn);
        assert_eq!(inn.leaving().len(), 4);

        let mig = AdjustmentRequest::migration(4, 8);
        assert_eq!(mig.kind(), AdjustmentKind::Migration);
        assert_eq!(mig.joining().len(), 4);
        assert_eq!(mig.leaving().len(), 4);
    }

    #[test]
    fn partial_overlap_is_migration() {
        let req =
            AdjustmentRequest::new(vec![GpuId(0), GpuId(1)], vec![GpuId(1), GpuId(2)]).unwrap();
        assert_eq!(req.kind(), AdjustmentKind::Migration);
        assert_eq!(req.joining(), vec![GpuId(2)]);
        assert_eq!(req.leaving(), vec![GpuId(0)]);
    }

    #[test]
    fn invalid_requests_rejected() {
        assert_eq!(
            AdjustmentRequest::new(vec![], vec![GpuId(0)]),
            Err(RequestError::EmptyPlacement)
        );
        assert_eq!(
            AdjustmentRequest::new(vec![GpuId(0), GpuId(0)], vec![GpuId(1)]),
            Err(RequestError::DuplicateGpu(GpuId(0)))
        );
        assert_eq!(
            AdjustmentRequest::new(vec![GpuId(0)], vec![GpuId(0)]),
            Err(RequestError::NoChange)
        );
    }

    #[test]
    fn ideal_system_is_free() {
        use elan_models::zoo;
        let topo = elan_topology::ClusterSpec::paper_testbed().build();
        let bw = BandwidthModel::paper_default();
        let perf = PerfModel::paper_default();
        let model = zoo::resnet50();
        let ctx = AdjustmentContext {
            topology: &topo,
            bandwidth: &bw,
            perf: &perf,
            model: &model,
            total_batch: 512,
            coordination_interval: 10,
            seed: 1,
        };
        let req = AdjustmentRequest::contiguous(4, 8);
        assert_eq!(IdealSystem.adjust(&req, &ctx), AdjustmentCost::FREE);
        assert_eq!(IdealSystem.runtime_overhead(&ctx, 8), 0.0);
        assert_eq!(IdealSystem.relative_throughput(&ctx, 8), 1.0);
    }

    #[test]
    fn boundary_math_rounds_up() {
        use elan_models::zoo;
        let topo = elan_topology::ClusterSpec::paper_testbed().build();
        let bw = BandwidthModel::paper_default();
        let perf = PerfModel::paper_default();
        let model = zoo::resnet50();
        let ctx = AdjustmentContext {
            topology: &topo,
            bandwidth: &bw,
            perf: &perf,
            model: &model,
            total_batch: 512,
            coordination_interval: 10,
            seed: 1,
        };
        let period = ctx.coordination_period(16);
        let b = ctx.next_boundary_after(period + SimDuration::from_nanos(1), 16);
        assert_eq!(b, period * 2);
        let exact = ctx.next_boundary_after(period, 16);
        assert_eq!(exact, period);
    }

    #[test]
    fn display_formats() {
        let req = AdjustmentRequest::contiguous(16, 32);
        assert_eq!(req.to_string(), "scale-out 16→32");
    }
}
