//! A small versioned binary codec for training-state snapshots.
//!
//! The Shutdown-&-Restart baseline and Elan's fault-tolerance path both
//! serialize training state (checkpoints to the filesystem, AM state to
//! the replicated store). This module provides the wire format: a
//! length-prefixed, versioned, little-endian encoding with no external
//! dependencies — hand-rolled rather than pulling a serialization stack
//! (see DESIGN.md's dependency policy).

use elan_sim::Bytes;

use crate::state::{RuntimeInfo, TrainingState, WorkerId};

/// Magic bytes opening every snapshot.
const MAGIC: &[u8; 4] = b"ELAN";
/// Current format version.
const VERSION: u16 = 1;

/// Errors from decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the encoding requires.
    Truncated,
    /// The magic bytes are wrong — not a snapshot.
    BadMagic,
    /// The format version is unsupported.
    UnsupportedVersion(u16),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "snapshot truncated"),
            DecodeError::BadMagic => write!(f, "not an Elan snapshot"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.at + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

/// Encodes a [`TrainingState`] snapshot.
///
/// # Examples
///
/// ```
/// use elan_core::codec::{decode_state, encode_state};
/// use elan_core::state::{TrainingState, WorkerId};
/// use elan_sim::Bytes;
///
/// let state = TrainingState::initial(Bytes::from_mib(100), vec![WorkerId(0)], 256, 0.1);
/// let bytes = encode_state(&state);
/// assert_eq!(decode_state(&bytes)?, state);
/// # Ok::<(), elan_core::codec::DecodeError>(())
/// ```
pub fn encode_state(state: &TrainingState) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u16(VERSION);
    w.u64(state.gpu_bytes.as_u64());
    w.u64(state.cpu_bytes.as_u64());
    w.u64(state.params_checksum);
    w.u64(state.data_cursor);
    w.u32(state.runtime.epoch);
    w.u64(state.runtime.iteration);
    w.f64(state.runtime.learning_rate);
    w.u32(state.runtime.total_batch_size);
    w.u32(state.comm_group.len() as u32);
    for member in &state.comm_group {
        w.u32(member.0);
    }
    w.buf
}

/// Decodes a snapshot produced by [`encode_state`].
///
/// # Errors
///
/// Returns [`DecodeError`] for truncated, foreign, or future-versioned
/// buffers.
pub fn decode_state(bytes: &[u8]) -> Result<TrainingState, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let gpu_bytes = Bytes::new(r.u64()?);
    let cpu_bytes = Bytes::new(r.u64()?);
    let params_checksum = r.u64()?;
    let data_cursor = r.u64()?;
    let epoch = r.u32()?;
    let iteration = r.u64()?;
    let learning_rate = r.f64()?;
    let total_batch_size = r.u32()?;
    let n = r.u32()? as usize;
    let mut comm_group = Vec::with_capacity(n);
    for _ in 0..n {
        comm_group.push(WorkerId(r.u32()?));
    }
    Ok(TrainingState {
        gpu_bytes,
        cpu_bytes,
        params_checksum,
        data_cursor,
        runtime: RuntimeInfo {
            epoch,
            iteration,
            learning_rate,
            total_batch_size,
        },
        comm_group,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainingState {
        let mut s = TrainingState::initial(
            Bytes::from_mib(293),
            (0..16).map(WorkerId).collect(),
            512,
            0.2,
        );
        s.params_checksum = 0xDEADBEEF_CAFEBABE;
        s.data_cursor = 1_281_167 / 2;
        s.runtime.epoch = 45;
        s.runtime.iteration = 112_500;
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample();
        assert_eq!(decode_state(&encode_state(&s)).unwrap(), s);
    }

    #[test]
    fn empty_group_roundtrips() {
        let mut s = sample();
        s.comm_group.clear();
        assert_eq!(decode_state(&encode_state(&s)).unwrap(), s);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_state(&sample());
        bytes[0] = b'X';
        assert_eq!(decode_state(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_state(&sample());
        bytes[4] = 0xFF;
        assert!(matches!(
            decode_state(&bytes),
            Err(DecodeError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = encode_state(&sample());
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_state(&bytes[..cut]),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn encoding_is_compact() {
        // Fixed header + 4 bytes per member: no bloat.
        let s = sample();
        let bytes = encode_state(&s);
        assert_eq!(bytes.len(), 4 + 2 + 8 * 4 + 4 + 8 + 8 + 4 + 4 + 16 * 4);
    }
}
