//! A small versioned binary codec: training-state snapshots and
//! control-plane wire frames.
//!
//! The Shutdown-&-Restart baseline and Elan's fault-tolerance path both
//! serialize training state (checkpoints to the filesystem, AM state to
//! the replicated store); the socket transport additionally frames every
//! control-plane [`Envelope`] onto TCP/Unix-domain streams
//! ([`encode_frame`]/[`decode_frame`]). Both share one wire discipline: a
//! versioned, little-endian encoding with a CRC32 integrity trailer and
//! no external dependencies — hand-rolled rather than pulling a
//! serialization stack (see DESIGN.md's dependency policy).

use std::sync::Arc;

use elan_sim::Bytes;

use crate::messages::{MsgId, StateKind};
use crate::protocol::{EndpointId, Envelope, EpochPhase, RtMsg};
use crate::state::{RuntimeInfo, TrainingState, WorkerId};

/// Magic bytes opening every snapshot.
const MAGIC: &[u8; 4] = b"ELAN";
/// Current format version: v2 appends a CRC32 integrity trailer. v1
/// buffers (no trailer) are still decoded.
const VERSION: u16 = 2;

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the integrity checksum carried in every
/// v2 snapshot's 4-byte little-endian trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Errors from decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the encoding requires.
    Truncated,
    /// The magic bytes are wrong — not a snapshot.
    BadMagic,
    /// The format version is unsupported.
    UnsupportedVersion(u16),
    /// The CRC32 trailer does not match the body — bit rot, a torn
    /// write, or tampering.
    Corrupt {
        /// CRC32 recorded in the trailer.
        expected: u32,
        /// CRC32 computed over the received body.
        actual: u32,
    },
    /// A wire frame carries an enum tag this decoder does not know —
    /// a newer peer, or an encoder bug (the CRC already passed).
    UnknownTag(u8),
    /// A CRC-valid wire frame decoded cleanly but left bytes behind —
    /// an encoder/decoder schema mismatch, not line noise.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "snapshot truncated"),
            DecodeError::BadMagic => write!(f, "not an Elan snapshot"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            DecodeError::Corrupt { expected, actual } => write!(
                f,
                "snapshot corrupt: trailer crc32 {expected:#010x}, body crc32 {actual:#010x}"
            ),
            DecodeError::UnknownTag(t) => write!(f, "unknown wire tag {t:#04x}"),
            DecodeError::TrailingBytes(n) => write!(f, "frame has {n} trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.at + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self
            .take(2)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(u16::from_le_bytes(b))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self
            .take(4)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self
            .take(8)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> Result<f64, DecodeError> {
        let b = self
            .take(8)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(f64::from_le_bytes(b))
    }
    fn f32(&mut self) -> Result<f32, DecodeError> {
        let b = self
            .take(4)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(f32::from_le_bytes(b))
    }
}

/// Encodes a [`TrainingState`] snapshot.
///
/// # Examples
///
/// ```
/// use elan_core::codec::{decode_state, encode_state};
/// use elan_core::state::{TrainingState, WorkerId};
/// use elan_sim::Bytes;
///
/// let state = TrainingState::initial(Bytes::from_mib(100), vec![WorkerId(0)], 256, 0.1);
/// let bytes = encode_state(&state);
/// assert_eq!(decode_state(&bytes)?, state);
/// # Ok::<(), elan_core::codec::DecodeError>(())
/// ```
pub fn encode_state(state: &TrainingState) -> Vec<u8> {
    let mut buf = encode_body(state, VERSION);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Encodes the magic, version, and fields — everything but the trailer.
fn encode_body(state: &TrainingState, version: u16) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u16(version);
    w.u64(state.gpu_bytes.as_u64());
    w.u64(state.cpu_bytes.as_u64());
    w.u64(state.params_checksum);
    w.u64(state.data_cursor);
    w.u32(state.runtime.epoch);
    w.u64(state.runtime.iteration);
    w.f64(state.runtime.learning_rate);
    w.u32(state.runtime.total_batch_size);
    w.u32(state.comm_group.len() as u32);
    for member in &state.comm_group {
        w.u32(member.0);
    }
    w.buf
}

/// Decodes a snapshot produced by [`encode_state`] — either the current
/// v2 format (CRC32 trailer, verified before any field is trusted) or a
/// legacy v1 buffer (no trailer).
///
/// # Errors
///
/// Returns [`DecodeError`] for truncated, foreign, future-versioned, or
/// checksum-failing buffers.
pub fn decode_state(bytes: &[u8]) -> Result<TrainingState, DecodeError> {
    // Peek the header to learn the version, then bound the body.
    let mut peek = Reader::new(bytes);
    if peek.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = peek.u16()?;
    let body = match version {
        1 => bytes, // legacy: no trailer
        VERSION => {
            // bytes.len() >= 6 here, so the subtraction cannot underflow;
            // a buffer too short to even hold the trailer fails the CRC.
            let (body, trailer) = bytes.split_at(bytes.len() - 4);
            let trailer: [u8; 4] = trailer.try_into().map_err(|_| DecodeError::Truncated)?;
            let expected = u32::from_le_bytes(trailer);
            let actual = crc32(body);
            if actual != expected {
                return Err(DecodeError::Corrupt { expected, actual });
            }
            body
        }
        v => return Err(DecodeError::UnsupportedVersion(v)),
    };
    let mut r = Reader::new(body);
    let _ = r.take(4)?; // magic — validated above
    let _ = r.u16()?; // version — validated above
    let gpu_bytes = Bytes::new(r.u64()?);
    let cpu_bytes = Bytes::new(r.u64()?);
    let params_checksum = r.u64()?;
    let data_cursor = r.u64()?;
    let epoch = r.u32()?;
    let iteration = r.u64()?;
    let learning_rate = r.f64()?;
    let total_batch_size = r.u32()?;
    let n = r.u32()? as usize;
    let mut comm_group = Vec::with_capacity(n);
    for _ in 0..n {
        comm_group.push(WorkerId(r.u32()?));
    }
    Ok(TrainingState {
        gpu_bytes,
        cpu_bytes,
        params_checksum,
        data_cursor,
        runtime: RuntimeInfo {
            epoch,
            iteration,
            learning_rate,
            total_batch_size,
        },
        comm_group,
    })
}

// ---------------------------------------------------------------------------
// Control-plane wire frames (socket transport)
// ---------------------------------------------------------------------------

/// Wire format version of control-plane frames. Independent of the
/// state-snapshot codec's `VERSION`: the two formats evolve separately.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on one frame's encoded size (length prefix included):
/// large enough for a `StateChunk` carrying far more elements than any
/// configured `replication_chunk_elems`, small enough that a corrupted
/// length prefix cannot make a reader allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// One frame on a transport stream.
///
/// Framing on the wire is `u32` little-endian length, then the frame:
/// `MAGIC (4) | WIRE_VERSION (1) | kind (1) | body | crc32 (4, LE)`,
/// with the CRC computed over everything before it. The socket layer
/// owns the length prefix; [`encode_frame`]/[`decode_frame`] handle the
/// frame proper.
#[derive(Debug, Clone)]
pub enum WireFrame {
    /// First frame on every connection: the peer announces which
    /// endpoint it is. Re-sent on reconnect, which is what remaps the
    /// endpoint to the new stream.
    Hello {
        /// The connecting endpoint.
        from: EndpointId,
    },
    /// A routed protocol envelope.
    Msg {
        /// Destination endpoint.
        to: EndpointId,
        /// The envelope, verbatim — MsgId, sender, attempt and all, so
        /// reliable-layer resend/dedup semantics cross the wire intact.
        env: Envelope,
    },
}

const FRAME_HELLO: u8 = 0;
const FRAME_MSG: u8 = 1;

fn write_endpoint(w: &mut Writer, id: EndpointId) {
    match id {
        EndpointId::Am => w.u8(0),
        EndpointId::Controller => w.u8(1),
        EndpointId::Worker(wid) => {
            w.u8(2);
            w.u32(wid.0);
        }
    }
}

fn read_endpoint(r: &mut Reader<'_>) -> Result<EndpointId, DecodeError> {
    match r.u8()? {
        0 => Ok(EndpointId::Am),
        1 => Ok(EndpointId::Controller),
        2 => Ok(EndpointId::Worker(WorkerId(r.u32()?))),
        t => Err(DecodeError::UnknownTag(t)),
    }
}

/// Wire tags for [`RtMsg`] variants, in declaration order. Append-only:
/// a new variant takes the next free tag, existing tags never move.
fn write_msg(w: &mut Writer, msg: &RtMsg) {
    match msg {
        RtMsg::Report { worker } => {
            w.u8(0);
            w.u32(worker.0);
        }
        RtMsg::Coordinate { worker, iteration } => {
            w.u8(1);
            w.u32(worker.0);
            w.u64(*iteration);
        }
        RtMsg::Proceed { boundary, term } => {
            w.u8(2);
            w.u64(*boundary);
            w.u64(*term);
        }
        RtMsg::TransferOrder { dst, term } => {
            w.u8(3);
            w.u32(dst.0);
            w.u64(*term);
        }
        RtMsg::TransferDone { src, dst } => {
            w.u8(4);
            w.u32(src.0);
            w.u32(dst.0);
        }
        RtMsg::StateChunk {
            kind,
            iteration,
            data_cursor,
            index,
            total,
            offset,
            data,
        } => {
            w.u8(5);
            w.u8(match kind {
                StateKind::Params => 0,
                StateKind::Momentum => 1,
            });
            w.u64(*iteration);
            w.u64(*data_cursor);
            w.u32(*index);
            w.u32(*total);
            w.u64(*offset);
            w.u32(data.len() as u32);
            for &x in data.iter() {
                w.f32(x);
            }
        }
        RtMsg::Resume { generation, term } => {
            w.u8(6);
            w.u64(*generation);
            w.u64(*term);
        }
        RtMsg::Leave { term } => {
            w.u8(7);
            w.u64(*term);
        }
        RtMsg::AdjustTo { seq, target } => {
            w.u8(8);
            w.u64(*seq);
            w.u32(target.len() as u32);
            for wid in target {
                w.u32(wid.0);
            }
        }
        RtMsg::Stop { seq } => {
            w.u8(9);
            w.u64(*seq);
        }
        RtMsg::Checkpoint { seq } => {
            w.u8(10);
            w.u64(*seq);
        }
        RtMsg::CheckpointOrder { seq, term } => {
            w.u8(11);
            w.u64(*seq);
            w.u64(*term);
        }
        RtMsg::Ack { seq } => {
            w.u8(12);
            w.u64(*seq);
        }
        RtMsg::MsgAck { of } => {
            w.u8(13);
            w.u64(of.0);
        }
        RtMsg::Heartbeat { worker, iteration } => {
            w.u8(14);
            w.u32(worker.0);
            w.u64(*iteration);
        }
        RtMsg::AmReset { epoch, term } => {
            w.u8(15);
            w.u64(*epoch);
            w.u64(*term);
        }
        RtMsg::Rejoin {
            worker,
            term,
            iteration,
        } => {
            w.u8(16);
            w.u32(worker.0);
            w.u64(*term);
            w.u64(*iteration);
        }
        RtMsg::JoinRequest {
            worker,
            epoch,
            digest,
        } => {
            w.u8(17);
            w.u32(worker.0);
            w.u64(*epoch);
            match digest {
                None => w.u8(0),
                Some(d) => {
                    w.u8(1);
                    w.u64(*d);
                }
            }
        }
        RtMsg::EpochAdvance { epoch, phase, term } => {
            w.u8(18);
            w.u64(*epoch);
            w.u8(epoch_phase_code(*phase));
            w.u64(*term);
        }
        RtMsg::WitnessQuery {
            subject,
            epoch,
            probe,
            term,
        } => {
            w.u8(19);
            w.u32(subject.0);
            w.u64(*epoch);
            w.u64(*probe);
            w.u64(*term);
        }
        RtMsg::WitnessVote {
            witness,
            subject,
            epoch,
            admit,
            digest,
        } => {
            w.u8(20);
            w.u32(witness.0);
            w.u32(subject.0);
            w.u64(*epoch);
            w.u8(u8::from(*admit));
            w.u64(*digest);
        }
    }
}

fn epoch_phase_code(phase: EpochPhase) -> u8 {
    match phase {
        EpochPhase::WaitingForMembers => 0,
        EpochPhase::Warmup => 1,
        EpochPhase::Train => 2,
        EpochPhase::Cooldown => 3,
    }
}

fn read_epoch_phase(r: &mut Reader<'_>) -> Result<EpochPhase, DecodeError> {
    match r.u8()? {
        0 => Ok(EpochPhase::WaitingForMembers),
        1 => Ok(EpochPhase::Warmup),
        2 => Ok(EpochPhase::Train),
        3 => Ok(EpochPhase::Cooldown),
        t => Err(DecodeError::UnknownTag(t)),
    }
}

fn read_msg(r: &mut Reader<'_>) -> Result<RtMsg, DecodeError> {
    Ok(match r.u8()? {
        0 => RtMsg::Report {
            worker: WorkerId(r.u32()?),
        },
        1 => RtMsg::Coordinate {
            worker: WorkerId(r.u32()?),
            iteration: r.u64()?,
        },
        2 => RtMsg::Proceed {
            boundary: r.u64()?,
            term: r.u64()?,
        },
        3 => RtMsg::TransferOrder {
            dst: WorkerId(r.u32()?),
            term: r.u64()?,
        },
        4 => RtMsg::TransferDone {
            src: WorkerId(r.u32()?),
            dst: WorkerId(r.u32()?),
        },
        5 => {
            let kind = match r.u8()? {
                0 => StateKind::Params,
                1 => StateKind::Momentum,
                t => return Err(DecodeError::UnknownTag(t)),
            };
            let iteration = r.u64()?;
            let data_cursor = r.u64()?;
            let index = r.u32()?;
            let total = r.u32()?;
            let offset = r.u64()?;
            let n = r.u32()? as usize;
            // The CRC has already vetted the frame, so `n` is what the
            // encoder wrote — but bound the allocation by what the
            // buffer can actually hold before trusting it.
            if n * 4 > r.remaining() {
                return Err(DecodeError::Truncated);
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(r.f32()?);
            }
            RtMsg::StateChunk {
                kind,
                iteration,
                data_cursor,
                index,
                total,
                offset,
                data: Arc::new(data),
            }
        }
        6 => RtMsg::Resume {
            generation: r.u64()?,
            term: r.u64()?,
        },
        7 => RtMsg::Leave { term: r.u64()? },
        8 => {
            let seq = r.u64()?;
            let n = r.u32()? as usize;
            if n * 4 > r.remaining() {
                return Err(DecodeError::Truncated);
            }
            let mut target = Vec::with_capacity(n);
            for _ in 0..n {
                target.push(WorkerId(r.u32()?));
            }
            RtMsg::AdjustTo { seq, target }
        }
        9 => RtMsg::Stop { seq: r.u64()? },
        10 => RtMsg::Checkpoint { seq: r.u64()? },
        11 => RtMsg::CheckpointOrder {
            seq: r.u64()?,
            term: r.u64()?,
        },
        12 => RtMsg::Ack { seq: r.u64()? },
        13 => RtMsg::MsgAck {
            of: MsgId(r.u64()?),
        },
        14 => RtMsg::Heartbeat {
            worker: WorkerId(r.u32()?),
            iteration: r.u64()?,
        },
        15 => RtMsg::AmReset {
            epoch: r.u64()?,
            term: r.u64()?,
        },
        16 => RtMsg::Rejoin {
            worker: WorkerId(r.u32()?),
            term: r.u64()?,
            iteration: r.u64()?,
        },
        17 => {
            let worker = WorkerId(r.u32()?);
            let epoch = r.u64()?;
            let digest = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                t => return Err(DecodeError::UnknownTag(t)),
            };
            RtMsg::JoinRequest {
                worker,
                epoch,
                digest,
            }
        }
        18 => RtMsg::EpochAdvance {
            epoch: r.u64()?,
            phase: read_epoch_phase(r)?,
            term: r.u64()?,
        },
        19 => RtMsg::WitnessQuery {
            subject: WorkerId(r.u32()?),
            epoch: r.u64()?,
            probe: r.u64()?,
            term: r.u64()?,
        },
        20 => RtMsg::WitnessVote {
            witness: WorkerId(r.u32()?),
            subject: WorkerId(r.u32()?),
            epoch: r.u64()?,
            admit: r.u8()? != 0,
            digest: r.u64()?,
        },
        t => return Err(DecodeError::UnknownTag(t)),
    })
}

/// Encodes one control-plane frame (without the stream's length prefix).
///
/// # Examples
///
/// ```
/// use elan_core::codec::{decode_frame, encode_frame, WireFrame};
/// use elan_core::protocol::EndpointId;
/// use elan_core::state::WorkerId;
///
/// let frame = WireFrame::Hello { from: EndpointId::Worker(WorkerId(3)) };
/// let bytes = encode_frame(&frame);
/// assert!(matches!(
///     decode_frame(&bytes)?,
///     WireFrame::Hello { from: EndpointId::Worker(WorkerId(3)) }
/// ));
/// # Ok::<(), elan_core::codec::DecodeError>(())
/// ```
pub fn encode_frame(frame: &WireFrame) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u8(WIRE_VERSION);
    match frame {
        WireFrame::Hello { from } => {
            w.u8(FRAME_HELLO);
            write_endpoint(&mut w, *from);
        }
        WireFrame::Msg { to, env } => {
            w.u8(FRAME_MSG);
            write_endpoint(&mut w, *to);
            w.u64(env.id.0);
            write_endpoint(&mut w, env.from);
            w.u32(env.attempt);
            write_msg(&mut w, &env.body);
        }
    }
    let crc = crc32(&w.buf);
    w.u32(crc);
    w.buf
}

/// Decodes one control-plane frame. The CRC trailer is verified before
/// any field is trusted, so a flipped bit anywhere in the frame fails
/// here rather than mis-decoding.
///
/// # Errors
///
/// Returns [`DecodeError`] for truncated, foreign, future-versioned,
/// checksum-failing, or unknown-tag frames.
pub fn decode_frame(bytes: &[u8]) -> Result<WireFrame, DecodeError> {
    // magic + version + kind + crc is the minimum credible frame.
    if bytes.len() < MAGIC.len() + 2 + 4 {
        return Err(DecodeError::Truncated);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let trailer: [u8; 4] = trailer.try_into().map_err(|_| DecodeError::Truncated)?;
    let expected = u32::from_le_bytes(trailer);
    let actual = crc32(body);
    if actual != expected {
        return Err(DecodeError::Corrupt { expected, actual });
    }
    let mut r = Reader::new(body);
    let _ = r.take(MAGIC.len())?; // magic — validated above
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(DecodeError::UnsupportedVersion(version as u16));
    }
    let frame = match r.u8()? {
        FRAME_HELLO => WireFrame::Hello {
            from: read_endpoint(&mut r)?,
        },
        FRAME_MSG => {
            let to = read_endpoint(&mut r)?;
            let id = MsgId(r.u64()?);
            let from = read_endpoint(&mut r)?;
            let attempt = r.u32()?;
            let body = read_msg(&mut r)?;
            WireFrame::Msg {
                to,
                env: Envelope {
                    id,
                    from,
                    attempt,
                    body,
                },
            }
        }
        t => return Err(DecodeError::UnknownTag(t)),
    };
    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainingState {
        let mut s = TrainingState::initial(
            Bytes::from_mib(293),
            (0..16).map(WorkerId).collect(),
            512,
            0.2,
        );
        s.params_checksum = 0xDEADBEEF_CAFEBABE;
        s.data_cursor = 1_281_167 / 2;
        s.runtime.epoch = 45;
        s.runtime.iteration = 112_500;
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample();
        assert_eq!(decode_state(&encode_state(&s)).unwrap(), s);
    }

    #[test]
    fn empty_group_roundtrips() {
        let mut s = sample();
        s.comm_group.clear();
        assert_eq!(decode_state(&encode_state(&s)).unwrap(), s);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_state(&sample());
        bytes[0] = b'X';
        assert_eq!(decode_state(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_state(&sample());
        bytes[4] = 0xFF;
        assert!(matches!(
            decode_state(&bytes),
            Err(DecodeError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = encode_state(&sample());
        for cut in 0..bytes.len() {
            let err = decode_state(&bytes[..cut]).expect_err("truncated buffer decoded");
            // Before the version is readable the cut looks truncated;
            // after it, the CRC trailer no longer matches the body.
            assert!(
                matches!(err, DecodeError::Truncated | DecodeError::Corrupt { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let good = encode_state(&sample());
        for at in 0..good.len() {
            let mut bytes = good.clone();
            bytes[at] ^= 0x40;
            let err = decode_state(&bytes).expect_err("corrupt buffer decoded");
            // Magic/version damage is caught structurally; everything
            // else (fields *and* the trailer itself) by the CRC.
            assert!(
                matches!(
                    err,
                    DecodeError::BadMagic
                        | DecodeError::UnsupportedVersion(_)
                        | DecodeError::Corrupt { .. }
                ),
                "flip at {at}: {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_error_reports_both_checksums() {
        let mut bytes = encode_state(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        match decode_state(&bytes) {
            Err(DecodeError::Corrupt { expected, actual }) => assert_ne!(expected, actual),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn legacy_v1_snapshots_still_decode() {
        // A v1 buffer has no trailer — exactly what yesterday's encoder
        // produced.
        let s = sample();
        let v1 = encode_body(&s, 1);
        assert_eq!(decode_state(&v1).unwrap(), s);
        // And v1 truncation still reports Truncated precisely.
        for cut in 0..v1.len() {
            assert_eq!(
                decode_state(&v1[..cut]),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn v2_is_v1_plus_trailer() {
        let s = sample();
        let v2 = encode_state(&s);
        let body = encode_body(&s, VERSION);
        assert_eq!(&v2[..v2.len() - 4], &body[..]);
        assert_eq!(
            u32::from_le_bytes(v2[v2.len() - 4..].try_into().unwrap()),
            crc32(&body)
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encoding_is_compact() {
        // Fixed header + 4 bytes per member + 4-byte CRC trailer.
        let s = sample();
        let bytes = encode_state(&s);
        assert_eq!(bytes.len(), 4 + 2 + 8 * 4 + 4 + 8 + 8 + 4 + 4 + 16 * 4 + 4);
    }

    // -- control-plane wire frames ---------------------------------------

    /// One envelope per `RtMsg` variant, so tag coverage is exhaustive:
    /// a new variant without a wire tag fails `sample_frames` at compile
    /// time (non-exhaustive match in `write_msg`) and a mis-tagged one
    /// fails the roundtrip below.
    fn sample_bodies() -> Vec<RtMsg> {
        vec![
            RtMsg::Report {
                worker: WorkerId(7),
            },
            RtMsg::Coordinate {
                worker: WorkerId(2),
                iteration: 41,
            },
            RtMsg::Proceed {
                boundary: 45,
                term: 3,
            },
            RtMsg::TransferOrder {
                dst: WorkerId(9),
                term: 3,
            },
            RtMsg::TransferDone {
                src: WorkerId(1),
                dst: WorkerId(9),
            },
            RtMsg::StateChunk {
                kind: StateKind::Momentum,
                iteration: 45,
                data_cursor: 5_760,
                index: 1,
                total: 4,
                offset: 256,
                data: Arc::new(vec![0.25, -1.5, 3.75]),
            },
            RtMsg::Resume {
                generation: 2,
                term: 3,
            },
            RtMsg::Leave { term: 3 },
            RtMsg::AdjustTo {
                seq: 11,
                target: vec![WorkerId(0), WorkerId(1), WorkerId(9)],
            },
            RtMsg::Stop { seq: 12 },
            RtMsg::Checkpoint { seq: 13 },
            RtMsg::CheckpointOrder { seq: 13, term: 3 },
            RtMsg::Ack { seq: 13 },
            RtMsg::MsgAck {
                of: MsgId((16 << 32) | 42),
            },
            RtMsg::Heartbeat {
                worker: WorkerId(2),
                iteration: 44,
            },
            RtMsg::AmReset { epoch: 1, term: 4 },
            RtMsg::Rejoin {
                worker: WorkerId(9),
                term: 3,
                iteration: 40,
            },
        ]
    }

    fn sample_frames() -> Vec<WireFrame> {
        let mut frames = vec![
            WireFrame::Hello {
                from: EndpointId::Worker(WorkerId(3)),
            },
            WireFrame::Hello {
                from: EndpointId::Am,
            },
            WireFrame::Hello {
                from: EndpointId::Controller,
            },
        ];
        for (i, body) in sample_bodies().into_iter().enumerate() {
            frames.push(WireFrame::Msg {
                to: EndpointId::Am,
                env: Envelope {
                    id: MsgId((17 << 32) | i as u64),
                    from: EndpointId::Worker(WorkerId(1)),
                    attempt: 1 + (i as u32 % 3),
                    body,
                },
            });
        }
        frames
    }

    #[test]
    fn frame_roundtrip_covers_every_message_variant() {
        // `Envelope` carries `Arc<Vec<f32>>`, so compare debug renderings
        // (exact for every field, including float payloads).
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let back = decode_frame(&bytes).unwrap();
            assert_eq!(format!("{back:?}"), format!("{frame:?}"));
        }
    }

    #[test]
    fn frames_are_versioned_and_bounded() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            assert_eq!(&bytes[..4], MAGIC);
            assert_eq!(bytes[4], WIRE_VERSION);
            assert!(bytes.len() <= MAX_FRAME_LEN);
        }
    }

    #[test]
    fn every_single_byte_frame_corruption_is_detected() {
        for frame in sample_frames() {
            let good = encode_frame(&frame);
            for at in 0..good.len() {
                let mut bytes = good.clone();
                bytes[at] ^= 0x40;
                // Must error — never panic, never mis-decode. Magic damage
                // is caught structurally; everything else by the CRC.
                let err = decode_frame(&bytes).expect_err("corrupt frame decoded");
                assert!(
                    matches!(err, DecodeError::BadMagic | DecodeError::Corrupt { .. }),
                    "flip at {at}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn frame_truncation_is_detected_at_every_length() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            for cut in 0..bytes.len() {
                let err = decode_frame(&bytes[..cut]).expect_err("truncated frame decoded");
                assert!(
                    matches!(err, DecodeError::Truncated | DecodeError::Corrupt { .. }),
                    "cut at {cut}: {err:?}"
                );
            }
        }
    }

    /// Re-stamps a hand-mutated frame with a valid CRC, so tests can reach
    /// the post-CRC decode paths (unknown tags, trailing bytes).
    fn restamp(mut bytes: Vec<u8>) -> Vec<u8> {
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        bytes
    }

    #[test]
    fn unknown_frame_kind_is_rejected_not_guessed() {
        let mut bytes = encode_frame(&WireFrame::Hello {
            from: EndpointId::Am,
        });
        bytes[5] = 0xEE; // frame-kind byte
        assert_eq!(
            decode_frame(&restamp(bytes)).expect_err("unknown kind decoded"),
            DecodeError::UnknownTag(0xEE)
        );
    }

    #[test]
    fn future_wire_version_is_rejected() {
        let mut bytes = encode_frame(&WireFrame::Hello {
            from: EndpointId::Am,
        });
        bytes[4] = WIRE_VERSION + 1;
        assert_eq!(
            decode_frame(&restamp(bytes)).expect_err("future version decoded"),
            DecodeError::UnsupportedVersion((WIRE_VERSION + 1) as u16)
        );
    }

    #[test]
    fn crc_valid_trailing_bytes_are_rejected() {
        let mut bytes = encode_frame(&WireFrame::Hello {
            from: EndpointId::Am,
        });
        let crc_at = bytes.len() - 4;
        bytes.insert(crc_at, 0x00); // extra byte inside the CRC'd region
        assert_eq!(
            decode_frame(&restamp(bytes)).expect_err("trailing bytes decoded"),
            DecodeError::TrailingBytes(1)
        );
    }

    #[test]
    fn oversized_chunk_length_cannot_overallocate() {
        // A frame whose StateChunk length field claims far more elements
        // than the buffer holds must fail cleanly (post-CRC, the length
        // is still bounded by the actual remaining bytes).
        let frame = WireFrame::Msg {
            to: EndpointId::Am,
            env: Envelope {
                id: MsgId(1),
                from: EndpointId::Worker(WorkerId(0)),
                attempt: 1,
                body: RtMsg::StateChunk {
                    kind: StateKind::Params,
                    iteration: 1,
                    data_cursor: 0,
                    index: 0,
                    total: 1,
                    offset: 0,
                    data: Arc::new(vec![1.0, 2.0]),
                },
            },
        };
        let good = encode_frame(&frame);
        // The element-count u32 sits 12 bytes before the payload start:
        // locate it as (len - trailer 4 - payload 8 - count 4).
        let count_at = good.len() - 4 - 8 - 4;
        let mut bytes = good.clone();
        bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&restamp(bytes)).expect_err("oversized length decoded"),
            DecodeError::Truncated
        );
    }
}
