//! A small versioned binary codec for training-state snapshots.
//!
//! The Shutdown-&-Restart baseline and Elan's fault-tolerance path both
//! serialize training state (checkpoints to the filesystem, AM state to
//! the replicated store). This module provides the wire format: a
//! length-prefixed, versioned, little-endian encoding with no external
//! dependencies — hand-rolled rather than pulling a serialization stack
//! (see DESIGN.md's dependency policy).

use elan_sim::Bytes;

use crate::state::{RuntimeInfo, TrainingState, WorkerId};

/// Magic bytes opening every snapshot.
const MAGIC: &[u8; 4] = b"ELAN";
/// Current format version: v2 appends a CRC32 integrity trailer. v1
/// buffers (no trailer) are still decoded.
const VERSION: u16 = 2;

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the integrity checksum carried in every
/// v2 snapshot's 4-byte little-endian trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Errors from decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the encoding requires.
    Truncated,
    /// The magic bytes are wrong — not a snapshot.
    BadMagic,
    /// The format version is unsupported.
    UnsupportedVersion(u16),
    /// The CRC32 trailer does not match the body — bit rot, a torn
    /// write, or tampering.
    Corrupt {
        /// CRC32 recorded in the trailer.
        expected: u32,
        /// CRC32 computed over the received body.
        actual: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "snapshot truncated"),
            DecodeError::BadMagic => write!(f, "not an Elan snapshot"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            DecodeError::Corrupt { expected, actual } => write!(
                f,
                "snapshot corrupt: trailer crc32 {expected:#010x}, body crc32 {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.at + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self
            .take(2)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(u16::from_le_bytes(b))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self
            .take(4)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self
            .take(8)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> Result<f64, DecodeError> {
        let b = self
            .take(8)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(f64::from_le_bytes(b))
    }
}

/// Encodes a [`TrainingState`] snapshot.
///
/// # Examples
///
/// ```
/// use elan_core::codec::{decode_state, encode_state};
/// use elan_core::state::{TrainingState, WorkerId};
/// use elan_sim::Bytes;
///
/// let state = TrainingState::initial(Bytes::from_mib(100), vec![WorkerId(0)], 256, 0.1);
/// let bytes = encode_state(&state);
/// assert_eq!(decode_state(&bytes)?, state);
/// # Ok::<(), elan_core::codec::DecodeError>(())
/// ```
pub fn encode_state(state: &TrainingState) -> Vec<u8> {
    let mut buf = encode_body(state, VERSION);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Encodes the magic, version, and fields — everything but the trailer.
fn encode_body(state: &TrainingState, version: u16) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u16(version);
    w.u64(state.gpu_bytes.as_u64());
    w.u64(state.cpu_bytes.as_u64());
    w.u64(state.params_checksum);
    w.u64(state.data_cursor);
    w.u32(state.runtime.epoch);
    w.u64(state.runtime.iteration);
    w.f64(state.runtime.learning_rate);
    w.u32(state.runtime.total_batch_size);
    w.u32(state.comm_group.len() as u32);
    for member in &state.comm_group {
        w.u32(member.0);
    }
    w.buf
}

/// Decodes a snapshot produced by [`encode_state`] — either the current
/// v2 format (CRC32 trailer, verified before any field is trusted) or a
/// legacy v1 buffer (no trailer).
///
/// # Errors
///
/// Returns [`DecodeError`] for truncated, foreign, future-versioned, or
/// checksum-failing buffers.
pub fn decode_state(bytes: &[u8]) -> Result<TrainingState, DecodeError> {
    // Peek the header to learn the version, then bound the body.
    let mut peek = Reader::new(bytes);
    if peek.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = peek.u16()?;
    let body = match version {
        1 => bytes, // legacy: no trailer
        VERSION => {
            // bytes.len() >= 6 here, so the subtraction cannot underflow;
            // a buffer too short to even hold the trailer fails the CRC.
            let (body, trailer) = bytes.split_at(bytes.len() - 4);
            let trailer: [u8; 4] = trailer.try_into().map_err(|_| DecodeError::Truncated)?;
            let expected = u32::from_le_bytes(trailer);
            let actual = crc32(body);
            if actual != expected {
                return Err(DecodeError::Corrupt { expected, actual });
            }
            body
        }
        v => return Err(DecodeError::UnsupportedVersion(v)),
    };
    let mut r = Reader::new(body);
    let _ = r.take(4)?; // magic — validated above
    let _ = r.u16()?; // version — validated above
    let gpu_bytes = Bytes::new(r.u64()?);
    let cpu_bytes = Bytes::new(r.u64()?);
    let params_checksum = r.u64()?;
    let data_cursor = r.u64()?;
    let epoch = r.u32()?;
    let iteration = r.u64()?;
    let learning_rate = r.f64()?;
    let total_batch_size = r.u32()?;
    let n = r.u32()? as usize;
    let mut comm_group = Vec::with_capacity(n);
    for _ in 0..n {
        comm_group.push(WorkerId(r.u32()?));
    }
    Ok(TrainingState {
        gpu_bytes,
        cpu_bytes,
        params_checksum,
        data_cursor,
        runtime: RuntimeInfo {
            epoch,
            iteration,
            learning_rate,
            total_batch_size,
        },
        comm_group,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainingState {
        let mut s = TrainingState::initial(
            Bytes::from_mib(293),
            (0..16).map(WorkerId).collect(),
            512,
            0.2,
        );
        s.params_checksum = 0xDEADBEEF_CAFEBABE;
        s.data_cursor = 1_281_167 / 2;
        s.runtime.epoch = 45;
        s.runtime.iteration = 112_500;
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample();
        assert_eq!(decode_state(&encode_state(&s)).unwrap(), s);
    }

    #[test]
    fn empty_group_roundtrips() {
        let mut s = sample();
        s.comm_group.clear();
        assert_eq!(decode_state(&encode_state(&s)).unwrap(), s);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_state(&sample());
        bytes[0] = b'X';
        assert_eq!(decode_state(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_state(&sample());
        bytes[4] = 0xFF;
        assert!(matches!(
            decode_state(&bytes),
            Err(DecodeError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = encode_state(&sample());
        for cut in 0..bytes.len() {
            let err = decode_state(&bytes[..cut]).expect_err("truncated buffer decoded");
            // Before the version is readable the cut looks truncated;
            // after it, the CRC trailer no longer matches the body.
            assert!(
                matches!(err, DecodeError::Truncated | DecodeError::Corrupt { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let good = encode_state(&sample());
        for at in 0..good.len() {
            let mut bytes = good.clone();
            bytes[at] ^= 0x40;
            let err = decode_state(&bytes).expect_err("corrupt buffer decoded");
            // Magic/version damage is caught structurally; everything
            // else (fields *and* the trailer itself) by the CRC.
            assert!(
                matches!(
                    err,
                    DecodeError::BadMagic
                        | DecodeError::UnsupportedVersion(_)
                        | DecodeError::Corrupt { .. }
                ),
                "flip at {at}: {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_error_reports_both_checksums() {
        let mut bytes = encode_state(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        match decode_state(&bytes) {
            Err(DecodeError::Corrupt { expected, actual }) => assert_ne!(expected, actual),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn legacy_v1_snapshots_still_decode() {
        // A v1 buffer has no trailer — exactly what yesterday's encoder
        // produced.
        let s = sample();
        let v1 = encode_body(&s, 1);
        assert_eq!(decode_state(&v1).unwrap(), s);
        // And v1 truncation still reports Truncated precisely.
        for cut in 0..v1.len() {
            assert_eq!(
                decode_state(&v1[..cut]),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn v2_is_v1_plus_trailer() {
        let s = sample();
        let v2 = encode_state(&s);
        let body = encode_body(&s, VERSION);
        assert_eq!(&v2[..v2.len() - 4], &body[..]);
        assert_eq!(
            u32::from_le_bytes(v2[v2.len() - 4..].try_into().unwrap()),
            crc32(&body)
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encoding_is_compact() {
        // Fixed header + 4 bytes per member + 4-byte CRC trailer.
        let s = sample();
        let bytes = encode_state(&s);
        assert_eq!(bytes.len(), 4 + 2 + 8 * 4 + 4 + 8 + 8 + 4 + 4 + 16 * 4 + 4);
    }
}
