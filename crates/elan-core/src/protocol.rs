//! Control-plane protocol types shared by every transport.
//!
//! The live runtime (`elan-rt`) speaks this protocol over a pluggable
//! `Transport`: the in-memory chaos bus delivers [`Envelope`]s through
//! crossbeam channels, while the socket transport frames the same
//! envelopes onto TCP or Unix-domain streams via [`crate::codec`]. The
//! types live here — below both transports — so the wire codec can
//! encode them without `elan-core` depending on the runtime.
//!
//! Nothing in this module does IO; it is pure data. Wire stability is the
//! codec's concern ([`crate::codec::encode_frame`]): adding an `RtMsg`
//! variant means assigning it a fresh wire tag there.

use std::fmt;
use std::sync::Arc;

use crate::messages::{MsgId, StateKind};
use crate::state::WorkerId;

/// Identifies a bus endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EndpointId {
    /// The application master.
    Am,
    /// A training worker.
    Worker(WorkerId),
    /// The external controller (the `ElasticRuntime` handle).
    Controller,
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointId::Am => write!(f, "am"),
            EndpointId::Worker(w) => write!(f, "{w}"),
            EndpointId::Controller => write!(f, "controller"),
        }
    }
}

/// Control-plane messages of the live runtime.
#[derive(Debug, Clone)]
pub enum RtMsg {
    /// Worker → AM: ready to join after start+initialization (step ②).
    Report {
        /// The new worker.
        worker: WorkerId,
    },
    /// Worker → AM: reached a coordination boundary (step ③).
    Coordinate {
        /// The coordinating worker.
        worker: WorkerId,
        /// Its current iteration.
        iteration: u64,
    },
    /// AM → worker: continue training unchanged. Tagged with the boundary
    /// iteration so a chaos-delayed release cannot un-park a later round.
    Proceed {
        /// The boundary iteration being released.
        boundary: u64,
        /// The sending AM's fencing term.
        term: u64,
    },
    /// AM → worker: replicate state to `dst` (step ④), then report done.
    TransferOrder {
        /// Destination worker.
        dst: WorkerId,
        /// The sending AM's fencing term.
        term: u64,
    },
    /// Worker → AM: the ordered transfer finished.
    TransferDone {
        /// The source that completed its transfer.
        src: WorkerId,
        /// The destination it served (src == dst marks a checkpoint).
        dst: WorkerId,
    },
    /// Source worker → new worker: one chunk of the replicated training
    /// state. Replication is streamed — parameter ("GPU-state") and
    /// momentum ("CPU-state") chunks interleave on the wire so the two
    /// streams overlap per §IV, and because every chunk rides its own
    /// reliable envelope (id + ack + resend), a lossy bus retransmits
    /// only the missing chunks: the transfer is resumable per-chunk
    /// rather than all-or-nothing.
    StateChunk {
        /// Which state buffer this chunk belongs to.
        kind: StateKind,
        /// Iteration the snapshot was taken at (also the stream id — all
        /// chunks of one snapshot carry the same boundary iteration).
        iteration: u64,
        /// Serial data-loading cursor (§V-C: one integer).
        data_cursor: u64,
        /// Chunk index within this `kind`'s stream.
        index: u32,
        /// Total chunks in this `kind`'s stream.
        total: u32,
        /// Element offset of this chunk within the full buffer.
        offset: u64,
        /// The chunk payload — `Arc`-shared across destinations, so a
        /// boundary with several joiners copies the state once, not once
        /// per joiner.
        data: Arc<Vec<f32>>,
    },
    /// AM → worker: training resumes under the new membership (step ⑤).
    Resume {
        /// The new communication-group generation.
        generation: u64,
        /// The sending AM's fencing term.
        term: u64,
    },
    /// AM → worker: leave the job (scale-in / migration / shutdown).
    Leave {
        /// The sending AM's fencing term.
        term: u64,
    },
    /// Controller → AM: adjust to this membership.
    AdjustTo {
        /// Controller-side operation sequence number (idempotence across
        /// AM failovers).
        seq: u64,
        /// Workers after the adjustment.
        target: Vec<WorkerId>,
    },
    /// Controller → AM: stop the job at the next boundary.
    Stop {
        /// Operation sequence number.
        seq: u64,
    },
    /// Controller → AM: snapshot the training state at the next boundary.
    Checkpoint {
        /// Operation sequence number.
        seq: u64,
    },
    /// AM → worker: send your state to the controller (checkpoint), then
    /// report `TransferDone` with `src == dst`.
    CheckpointOrder {
        /// The checkpoint request being served.
        seq: u64,
        /// The sending AM's fencing term.
        term: u64,
    },
    /// AM → controller: operation `seq` finished.
    Ack {
        /// The completed operation.
        seq: u64,
    },
    /// Transport-level acknowledgement of one received message.
    MsgAck {
        /// The message being acknowledged.
        of: MsgId,
    },
    /// Worker → AM: liveness beacon (unreliable by design).
    Heartbeat {
        /// The beaconing worker.
        worker: WorkerId,
        /// Its current iteration.
        iteration: u64,
    },
    /// Replacement AM → everyone: a new AM epoch has begun; parked workers
    /// re-send `Coordinate`, joining workers re-send `Report`.
    AmReset {
        /// The new AM epoch.
        epoch: u64,
        /// The sending AM's fencing term.
        term: u64,
    },
    /// Restarted worker → AM: request re-admission after a crash,
    /// presenting the last term it observed and the boundary iteration of
    /// its last applied state (its snapshot version). The AM either admits
    /// it (re-replicating state at the next boundary) or fences it via the
    /// term in its reply traffic.
    Rejoin {
        /// The worker asking back in.
        worker: WorkerId,
        /// Highest AM term the worker saw before crashing.
        term: u64,
        /// Boundary iteration of its last applied snapshot/state.
        iteration: u64,
    },
    /// Open joiner → AM: ask to enter the job at the next epoch boundary.
    /// Sent without a digest while announcing (re-sent every heartbeat
    /// period until acknowledged by replication), and re-sent *with* the
    /// warmup digest once the joiner has applied its streamed snapshot —
    /// the digest is the joiner's claimed checksum over the replicated
    /// state, which the witness step asks peers to recompute.
    JoinRequest {
        /// The worker asking to join.
        worker: WorkerId,
        /// The training epoch the joiner last observed (0 if none).
        epoch: u64,
        /// Claimed warmup checksum; `None` while merely announcing.
        digest: Option<u64>,
    },
    /// AM → everyone: the epoch machine moved. Broadcast at every phase
    /// transition so members and pending joiners track the training epoch
    /// without polling.
    EpochAdvance {
        /// The training epoch the machine is now in.
        epoch: u64,
        /// The phase just entered.
        phase: EpochPhase,
        /// The sending AM's fencing term.
        term: u64,
    },
    /// AM → sampled member: recompute your state checksum and vote on
    /// `subject`'s admission. The probe is the joiner's claimed warmup
    /// digest; an honest replica parked at the same boundary holds
    /// identical state and reproduces it exactly.
    WitnessQuery {
        /// The joiner under audit.
        subject: WorkerId,
        /// The training epoch of the admission.
        epoch: u64,
        /// The joiner's claimed warmup digest.
        probe: u64,
        /// The sending AM's fencing term.
        term: u64,
    },
    /// Witness member → AM: the admit/evict verdict for one subject,
    /// carrying the witness's own recomputed digest for the journal.
    WitnessVote {
        /// The voting member.
        witness: WorkerId,
        /// The joiner under audit.
        subject: WorkerId,
        /// The training epoch of the admission.
        epoch: u64,
        /// True when the recomputed digest matched the probe.
        admit: bool,
        /// The witness's recomputed digest.
        digest: u64,
    },
}

/// The phases of the open-membership epoch machine (DESIGN.md §17),
/// ticked by the AM on the shared `TimeSource`:
/// `WaitingForMembers → Warmup → Train → Cooldown → WaitingForMembers`
/// (the last transition rolls the epoch counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EpochPhase {
    /// The join window is open; pending members accumulate until the
    /// min-member threshold is met and the window elapses.
    WaitingForMembers,
    /// Admitted joiners replicate state over the chunked transfer path
    /// and the witness step audits their warmup digests.
    Warmup,
    /// Members train; membership is frozen within min/max bounds.
    Train,
    /// The epoch settles: departures are processed, shards re-assigned,
    /// and the next epoch's join window opens.
    Cooldown,
}

impl fmt::Display for EpochPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpochPhase::WaitingForMembers => write!(f, "waiting_for_members"),
            EpochPhase::Warmup => write!(f, "warmup"),
            EpochPhase::Train => write!(f, "train"),
            EpochPhase::Cooldown => write!(f, "cooldown"),
        }
    }
}

/// One message in flight on the bus: the body plus the reliable-messaging
/// metadata every send carries.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Unique message id (stable across resends).
    pub id: MsgId,
    /// The sending endpoint.
    pub from: EndpointId,
    /// Send attempt, starting at 1; resends increment it so fault
    /// injection rolls fresh dice.
    pub attempt: u32,
    /// The payload.
    pub body: RtMsg,
}

/// Per-destination delivery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Sends addressed to this endpoint.
    pub sent: u64,
    /// Messages actually enqueued (post-chaos, endpoint registered).
    pub delivered: u64,
    /// Messages addressed to an unregistered or departed endpoint.
    pub dead_letters: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_ids_display_and_order() {
        assert_eq!(EndpointId::Am.to_string(), "am");
        assert_eq!(EndpointId::Controller.to_string(), "controller");
        assert_eq!(EndpointId::Worker(WorkerId(3)).to_string(), "w3");
        let mut v = [
            EndpointId::Controller,
            EndpointId::Worker(WorkerId(0)),
            EndpointId::Am,
        ];
        v.sort();
        assert_eq!(v[0], EndpointId::Am);
    }
}
