//! The unified error surface of the Elan workspace.
//!
//! Historically elan-core exposed a separate facade error type while
//! elan-rt returned ad-hoc failures (panics, `String`s, silently-ignored
//! requests). This module converges both on one `#[non_exhaustive]` enum, [`ElanError`],
//! which is re-exported from the root `elan` facade crate. Downstream
//! matches must keep a wildcard arm, which lets future PRs add variants
//! (scheduler rejections, accelerator faults) without a breaking release.

use crate::am::AmError;
use crate::elasticity::RequestError;
use crate::lease::LeaseError;

/// Every failure the Elan runtime and core APIs can surface.
///
/// The enum is `#[non_exhaustive]`: always keep a `_` arm when matching.
///
/// # Examples
///
/// ```
/// use elan_core::error::ElanError;
/// use elan_core::elasticity::RequestError;
///
/// let e: ElanError = RequestError::NoChange.into();
/// match e {
///     ElanError::BadRequest(RequestError::NoChange) => {}
///     _ => panic!("unexpected variant"),
/// }
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElanError {
    /// The adjustment request was malformed (§V-A service API).
    BadRequest(RequestError),
    /// The application master rejected the operation (busy, wrong phase).
    Am(AmError),
    /// A liveness lease operation failed (§V-D fault tolerance).
    Lease(LeaseError),
    /// The runtime was configured inconsistently (builder validation).
    Config(String),
    /// A restored snapshot did not match the expected shape.
    SnapshotMismatch {
        /// Elements the runtime expected.
        expected: usize,
        /// Elements the snapshot carried.
        actual: usize,
    },
    /// The runtime is shutting down and cannot accept the operation.
    ShuttingDown,
}

impl std::fmt::Display for ElanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElanError::BadRequest(e) => write!(f, "bad request: {e}"),
            ElanError::Am(e) => write!(f, "application master: {e}"),
            ElanError::Lease(e) => write!(f, "lease: {e}"),
            ElanError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            ElanError::SnapshotMismatch { expected, actual } => {
                write!(
                    f,
                    "snapshot mismatch: expected {expected} elements, got {actual}"
                )
            }
            ElanError::ShuttingDown => write!(f, "runtime is shutting down"),
        }
    }
}

impl std::error::Error for ElanError {}

impl From<RequestError> for ElanError {
    fn from(e: RequestError) -> Self {
        ElanError::BadRequest(e)
    }
}

impl From<AmError> for ElanError {
    fn from(e: AmError) -> Self {
        ElanError::Am(e)
    }
}

impl From<LeaseError> for ElanError {
    fn from(e: LeaseError) -> Self {
        ElanError::Lease(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_pick_the_right_variant() {
        let e: ElanError = RequestError::NoChange.into();
        assert!(matches!(e, ElanError::BadRequest(_)));
        let e: ElanError = AmError::NotAdjusting.into();
        assert!(matches!(e, ElanError::Am(_)));
    }

    #[test]
    fn display_is_informative() {
        let e = ElanError::Config("workers must be > 0".into());
        assert!(e.to_string().contains("workers must be > 0"));
        let e = ElanError::SnapshotMismatch {
            expected: 8,
            actual: 4,
        };
        assert!(e.to_string().contains("expected 8"));
    }
}
