//! The hybrid scaling mechanism (§III-3, Algorithm 1).
//!
//! Strong scaling (fixed total batch) is algorithm-transparent but has
//! diminishing throughput gains; weak scaling (fixed per-worker batch) has
//! constant marginal gains but risks accuracy. Hybrid scaling finds the
//! *minimum* total batch size whose strong-scaling optimum worker count
//! covers the new allocation, doubling the batch only when necessary, and
//! pairs every batch increase with a *progressive linear scaling* of the
//! learning rate (Equations 2–3).

use std::fmt;

/// How an adjustment changed the batch size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalingMode {
    /// Total batch size unchanged — algorithm-transparent.
    Strong,
    /// Total batch size multiplied by the contained factor.
    Weak {
        /// The batch scaling factor `k` (> 1).
        factor: f64,
    },
}

impl fmt::Display for ScalingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalingMode::Strong => write!(f, "strong"),
            ScalingMode::Weak { factor } => write!(f, "weak(x{factor})"),
        }
    }
}

/// The output of the hybrid scaling decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingDecision {
    /// Total batch size after the adjustment.
    pub new_total_batch: u32,
    /// Multiplier to apply to the learning rate (the `k` of Equation 2).
    pub lr_factor: f64,
    /// Which regime the decision landed in.
    pub mode: ScalingMode,
}

/// Algorithm 1, `GETTOTALBATCHSIZE`: picks the total batch size for an
/// adjustment from `n_before` to `n_after` workers.
///
/// `n_opt(tbs)` must return the optimal worker count under strong scaling
/// with total batch `tbs` (see `PerfModel::optimal_workers` in
/// `elan-models`).
///
/// Behaviour:
/// - tries strong scaling first (`k = 1`);
/// - otherwise doubles the batch (`k *= 2`) until the strong-scaling
///   optimum covers `n_after`, stopping at `k ≤ n_after / n_before`;
/// - if every trial fails, falls back to plain weak scaling with
///   `k = n_after / n_before`.
/// - scaling **in** (or unchanged size) keeps the batch — strong scaling
///   is always sufficient when removing workers.
///
/// # Panics
///
/// Panics if any worker count or the batch size is zero.
///
/// # Examples
///
/// ```
/// use elan_core::scaling::hybrid_scale;
///
/// // With an optimum of ~2 workers per 64 batch elements:
/// let n_opt = |tbs: u32| (tbs / 64).max(1);
/// // 4 -> 8 workers at TBS 256: N_opt(256)=4 < 8, N_opt(512)=8 >= 8.
/// let d = hybrid_scale(256, 4, 8, n_opt);
/// assert_eq!(d.new_total_batch, 512);
/// ```
pub fn hybrid_scale(
    total_batch: u32,
    n_before: u32,
    n_after: u32,
    mut n_opt: impl FnMut(u32) -> u32,
) -> ScalingDecision {
    assert!(total_batch > 0, "batch size must be positive");
    assert!(
        n_before > 0 && n_after > 0,
        "worker counts must be positive"
    );

    // Scaling in (or no change): strong scaling never under-utilizes fewer
    // workers, so the batch stays put.
    if n_after <= n_before {
        return ScalingDecision {
            new_total_batch: total_batch,
            lr_factor: 1.0,
            mode: ScalingMode::Strong,
        };
    }

    let ratio = n_after as f64 / n_before as f64;
    let mut k = 1u32;
    while (k as f64) <= ratio {
        let candidate = total_batch
            .checked_mul(k)
            .expect("batch size overflow while scaling");
        if n_opt(candidate) >= n_after {
            return ScalingDecision {
                new_total_batch: candidate,
                lr_factor: k as f64,
                mode: if k == 1 {
                    ScalingMode::Strong
                } else {
                    ScalingMode::Weak { factor: k as f64 }
                },
            };
        }
        k = k.checked_mul(2).expect("scaling factor overflow");
    }

    // All trials failed: plain weak scaling by the resource ratio.
    let new_total_batch = ((total_batch as f64) * ratio).round() as u32;
    ScalingDecision {
        new_total_batch,
        lr_factor: ratio,
        mode: ScalingMode::Weak { factor: ratio },
    }
}

/// The progressive linear scaling rule (Equations 2–3): ramps the learning
/// rate linearly from `lr0` to `lr0 * k` over `ramp_iters` iterations
/// starting at iteration `t0`, avoiding the divergence a sharp change can
/// cause.
///
/// # Examples
///
/// ```
/// use elan_core::scaling::ProgressiveLrRamp;
///
/// let ramp = ProgressiveLrRamp::new(0.1, 2.0, 1000, 100);
/// assert_eq!(ramp.lr_at(1000), 0.1);        // start
/// assert!((ramp.lr_at(1050) - 0.15).abs() < 1e-12); // halfway
/// assert_eq!(ramp.lr_at(1100), 0.2);        // target reached
/// assert_eq!(ramp.lr_at(99_999), 0.2);      // stays at target
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressiveLrRamp {
    lr0: f64,
    lr_target: f64,
    t0: u64,
    ramp_iters: u32,
}

impl ProgressiveLrRamp {
    /// Creates a ramp from `lr0` to `lr0 * k` over `ramp_iters` iterations
    /// beginning at iteration `t0`.
    ///
    /// # Panics
    ///
    /// Panics if `lr0` or `k` is not positive, or `ramp_iters` is zero.
    pub fn new(lr0: f64, k: f64, t0: u64, ramp_iters: u32) -> Self {
        assert!(lr0 > 0.0, "learning rate must be positive");
        assert!(k > 0.0, "scale factor must be positive");
        assert!(ramp_iters > 0, "ramp needs at least one iteration");
        ProgressiveLrRamp {
            lr0,
            lr_target: lr0 * k,
            t0,
            ramp_iters,
        }
    }

    /// An identity ramp (no change), for strong-scaling adjustments.
    pub fn identity(lr: f64, t0: u64) -> Self {
        ProgressiveLrRamp::new(lr, 1.0, t0, 1)
    }

    /// The learning rate at iteration `t` (Equation 3).
    ///
    /// Before `t0` the rate is `lr0`; between `t0` and `t0 + ramp_iters`
    /// it interpolates linearly; afterwards it is the target.
    pub fn lr_at(&self, t: u64) -> f64 {
        if t <= self.t0 {
            return self.lr0;
        }
        let progress = (t - self.t0) as f64 / self.ramp_iters as f64;
        if progress >= 1.0 {
            self.lr_target
        } else {
            self.lr0 + progress * (self.lr_target - self.lr0)
        }
    }

    /// The target learning rate (Equation 2).
    pub fn target(&self) -> f64 {
        self.lr_target
    }

    /// The iteration at which the ramp completes.
    pub fn end_iter(&self) -> u64 {
        self.t0 + self.ramp_iters as u64
    }

    /// Chains a new adjustment onto this ramp: the next ramp starts from
    /// whatever rate is in effect at `t0_next`.
    pub fn then(&self, k: f64, t0_next: u64, ramp_iters: u32) -> ProgressiveLrRamp {
        ProgressiveLrRamp::new(self.lr_at(t0_next), k, t0_next, ramp_iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic optimum: roughly one worker per 32 batch elements.
    fn toy_n_opt(tbs: u32) -> u32 {
        (tbs / 32).max(1)
    }

    #[test]
    fn strong_scaling_when_optimum_covers_target() {
        // N_opt(512) = 16 >= 8 target: keep the batch.
        let d = hybrid_scale(512, 4, 8, toy_n_opt);
        assert_eq!(d.new_total_batch, 512);
        assert_eq!(d.mode, ScalingMode::Strong);
        assert_eq!(d.lr_factor, 1.0);
    }

    #[test]
    fn doubles_until_optimum_reached() {
        // N_opt(128)=4 < 16, N_opt(256)=8 < 16, N_opt(512)=16 >= 16.
        let d = hybrid_scale(128, 4, 16, toy_n_opt);
        assert_eq!(d.new_total_batch, 512);
        assert_eq!(d.mode, ScalingMode::Weak { factor: 4.0 });
        assert_eq!(d.lr_factor, 4.0);
    }

    #[test]
    fn minimum_sufficient_batch_is_chosen() {
        // N_opt(256)=8 >= 8: one doubling suffices, not two.
        let d = hybrid_scale(128, 4, 8, toy_n_opt);
        assert_eq!(d.new_total_batch, 256);
        assert_eq!(d.lr_factor, 2.0);
    }

    #[test]
    fn falls_back_to_resource_ratio() {
        // An optimum that never covers the target: k caps at N'/N.
        let d = hybrid_scale(128, 4, 16, |_| 1);
        assert_eq!(d.new_total_batch, 512);
        assert_eq!(d.mode, ScalingMode::Weak { factor: 4.0 });
    }

    #[test]
    fn fractional_ratio_fallback_rounds() {
        // 4 -> 6 workers, optimum never satisfied: k = 1.5.
        let d = hybrid_scale(128, 4, 6, |_| 1);
        assert_eq!(d.new_total_batch, 192);
        assert!((d.lr_factor - 1.5).abs() < 1e-12);
    }

    #[test]
    fn scale_in_keeps_batch() {
        let d = hybrid_scale(512, 16, 8, toy_n_opt);
        assert_eq!(d.new_total_batch, 512);
        assert_eq!(d.mode, ScalingMode::Strong);
    }

    #[test]
    fn paper_elastic_configuration() {
        // With the calibrated ResNet-50 performance model, Algorithm 1
        // reproduces the paper's §VI-B configuration: 16→32 workers doubles
        // 512→1024; 32→64 doubles 1024→2048.
        use elan_models::{perf::PerfModel, zoo};
        let perf = PerfModel::paper_default();
        let model = zoo::resnet50();
        let n_opt = |tbs: u32| perf.optimal_workers(&model, tbs, 256);
        let d1 = hybrid_scale(512, 16, 32, n_opt);
        assert_eq!(d1.new_total_batch, 1024);
        let d2 = hybrid_scale(1024, 32, 64, n_opt);
        assert_eq!(d2.new_total_batch, 2048);
    }

    #[test]
    fn ramp_is_monotone_and_bounded() {
        let ramp = ProgressiveLrRamp::new(0.1, 4.0, 0, 100);
        let mut prev = 0.0;
        for t in 0..=200 {
            let lr = ramp.lr_at(t);
            assert!(lr >= prev);
            assert!(lr <= ramp.target() + 1e-12);
            prev = lr;
        }
        assert_eq!(ramp.lr_at(100), 0.4);
    }

    #[test]
    fn identity_ramp_is_flat() {
        let ramp = ProgressiveLrRamp::identity(0.25, 50);
        assert_eq!(ramp.lr_at(0), 0.25);
        assert_eq!(ramp.lr_at(1_000_000), 0.25);
    }

    #[test]
    fn chained_ramps_compose() {
        // Double at t=0 over 100 iters, then double again at t=150.
        let r1 = ProgressiveLrRamp::new(0.1, 2.0, 0, 100);
        let r2 = r1.then(2.0, 150, 100);
        assert_eq!(r2.lr_at(150), 0.2);
        assert_eq!(r2.lr_at(250), 0.4);
        // Chaining mid-ramp starts from the interpolated value.
        let r3 = r1.then(2.0, 50, 100);
        assert!((r3.lr_at(50) - 0.15).abs() < 1e-12);
        assert!((r3.target() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "worker counts must be positive")]
    fn zero_workers_rejected() {
        let _ = hybrid_scale(128, 0, 4, toy_n_opt);
    }
}
