//! The application master state machine (§II, §V-B, §V-D).
//!
//! Elan attaches an application master (AM) to every job. The AM offers the
//! resource-adjustment service to the scheduler and coordinates workers:
//!
//! 1. the scheduler **requests** an adjustment (and launches new workers),
//! 2. new workers **report** after start and initialization,
//! 3. existing workers **coordinate** at intervals; the AM decides to
//!    adjust only when every new worker has reported — otherwise training
//!    simply proceeds (the asynchronous feature hiding start/init cost).
//!
//! The AM is a single point of failure, so every transition is persisted to
//! a replicated store *before* it takes effect; a replacement AM recovers
//! from the store (§V-D).

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use elan_topology::GpuId;

use crate::elasticity::AdjustmentRequest;
use crate::store::ReplicatedStore;

/// The AM's state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmState {
    /// No adjustment in flight.
    Idle,
    /// An adjustment was requested; waiting for new workers to report.
    Preparing {
        /// The pending request.
        request: AdjustmentRequest,
        /// New workers that have reported ready.
        reported: BTreeSet<GpuId>,
    },
    /// All new workers reported: the next coordination performs the
    /// adjustment.
    ReadyToAdjust {
        /// The pending request.
        request: AdjustmentRequest,
    },
    /// The adjustment is being executed (replication + state adjustment).
    Adjusting {
        /// The executing request.
        request: AdjustmentRequest,
    },
}

impl AmState {
    /// Short label for logs and store keys.
    pub fn label(&self) -> &'static str {
        match self {
            AmState::Idle => "idle",
            AmState::Preparing { .. } => "preparing",
            AmState::ReadyToAdjust { .. } => "ready",
            AmState::Adjusting { .. } => "adjusting",
        }
    }
}

/// The AM's answer to a worker's `Coordinate` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordinateReply {
    /// Keep training; nothing to do.
    Proceed,
    /// Execute the adjustment now (all new workers are ready).
    BeginAdjustment(AdjustmentRequest),
}

/// Errors from AM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmError {
    /// An adjustment is already in flight.
    Busy {
        /// The state the AM was in.
        state: &'static str,
    },
    /// A report arrived from a worker that is not joining.
    UnexpectedReport(GpuId),
    /// `adjustment_complete` called outside `Adjusting`.
    NotAdjusting,
}

impl fmt::Display for AmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmError::Busy { state } => write!(f, "adjustment already in flight (state: {state})"),
            AmError::UnexpectedReport(g) => write!(f, "unexpected report from {g}"),
            AmError::NotAdjusting => write!(f, "no adjustment is executing"),
        }
    }
}

impl Error for AmError {}

/// The application master for one job.
///
/// # Examples
///
/// ```
/// use elan_core::am::{ApplicationMaster, CoordinateReply};
/// use elan_core::elasticity::AdjustmentRequest;
///
/// let mut am = ApplicationMaster::new("job-42");
/// let req = AdjustmentRequest::contiguous(2, 4);
/// am.request_adjustment(req.clone())?;
/// // Not all new workers reported yet: workers proceed.
/// assert_eq!(am.coordinate(), CoordinateReply::Proceed);
/// for g in req.joining() {
///     am.report(g)?;
/// }
/// // Now the next coordination triggers the adjustment.
/// assert!(matches!(am.coordinate(), CoordinateReply::BeginAdjustment(_)));
/// am.adjustment_complete()?;
/// # Ok::<(), elan_core::am::AmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ApplicationMaster {
    job: String,
    state: AmState,
    store: ReplicatedStore<AmState>,
    members: Vec<GpuId>,
    adjustments_completed: u64,
}

impl ApplicationMaster {
    /// Creates an AM for `job` with an empty member list.
    pub fn new(job: impl Into<String>) -> Self {
        let job = job.into();
        let mut store = ReplicatedStore::new();
        store.put(Self::key(&job), AmState::Idle);
        ApplicationMaster {
            job,
            state: AmState::Idle,
            store,
            members: Vec::new(),
            adjustments_completed: 0,
        }
    }

    fn key(job: &str) -> String {
        format!("am/{job}/state")
    }

    /// Recovers a replacement AM from the persisted state in `store` —
    /// the §V-D fault-tolerance path.
    pub fn recover(job: impl Into<String>, store: ReplicatedStore<AmState>) -> Self {
        let job = job.into();
        let state = store
            .get(&Self::key(&job))
            .map(|v| v.value.clone())
            .unwrap_or(AmState::Idle);
        let members = match &state {
            AmState::Idle => Vec::new(),
            AmState::Preparing { request, .. }
            | AmState::ReadyToAdjust { request }
            | AmState::Adjusting { request } => request.current().to_vec(),
        };
        ApplicationMaster {
            job,
            state,
            store,
            members,
            adjustments_completed: 0,
        }
    }

    /// The job this AM serves.
    pub fn job(&self) -> &str {
        &self.job
    }

    /// Current state (for inspection/tests).
    pub fn state(&self) -> &AmState {
        &self.state
    }

    /// The persisted store — clone it to model stable storage surviving an
    /// AM crash.
    pub fn store(&self) -> &ReplicatedStore<AmState> {
        &self.store
    }

    /// Current job members (after completed adjustments).
    pub fn members(&self) -> &[GpuId] {
        &self.members
    }

    /// Sets the initial member set when the job launches.
    pub fn set_members(&mut self, members: Vec<GpuId>) {
        self.members = members;
    }

    /// Completed adjustments so far.
    pub fn adjustments_completed(&self) -> u64 {
        self.adjustments_completed
    }

    fn transition(&mut self, next: AmState) {
        // Persist before acting — the recovery invariant.
        self.store.put(Self::key(&self.job), next.clone());
        self.state = next;
    }

    /// The scheduler's resource-adjustment service (step ① of §II).
    ///
    /// Scale-in requests need no reports and become ready immediately.
    ///
    /// # Errors
    ///
    /// Returns [`AmError::Busy`] if an adjustment is already in flight.
    pub fn request_adjustment(&mut self, request: AdjustmentRequest) -> Result<(), AmError> {
        if !matches!(self.state, AmState::Idle) {
            return Err(AmError::Busy {
                state: self.state.label(),
            });
        }
        if request.joining().is_empty() {
            self.transition(AmState::ReadyToAdjust { request });
        } else {
            self.transition(AmState::Preparing {
                request,
                reported: BTreeSet::new(),
            });
        }
        Ok(())
    }

    /// A new worker reports ready after start and initialization
    /// (step ② of §II). Duplicate reports are idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`AmError::UnexpectedReport`] if the worker is not part of
    /// the pending adjustment (or none is pending).
    pub fn report(&mut self, worker: GpuId) -> Result<(), AmError> {
        let AmState::Preparing { request, reported } = &self.state else {
            return Err(AmError::UnexpectedReport(worker));
        };
        if !request.joining().contains(&worker) {
            return Err(AmError::UnexpectedReport(worker));
        }
        let request = request.clone();
        let mut reported = reported.clone();
        reported.insert(worker);
        // Persist every report so a replacement AM does not lose progress.
        if reported.len() == request.joining().len() {
            self.transition(AmState::ReadyToAdjust { request });
        } else {
            self.transition(AmState::Preparing { request, reported });
        }
        Ok(())
    }

    /// Existing workers coordinate at intervals (step ③ of §II): if every
    /// new worker has reported, the adjustment begins; otherwise training
    /// proceeds — new-worker start/init stays entirely off the critical
    /// path.
    pub fn coordinate(&mut self) -> CoordinateReply {
        match &self.state {
            AmState::ReadyToAdjust { request } => {
                let request = request.clone();
                self.transition(AmState::Adjusting {
                    request: request.clone(),
                });
                CoordinateReply::BeginAdjustment(request)
            }
            AmState::Adjusting { request } => {
                // Remaining workers of the same round get the same answer.
                CoordinateReply::BeginAdjustment(request.clone())
            }
            _ => CoordinateReply::Proceed,
        }
    }

    /// Marks the in-flight adjustment finished (steps ④–⑤ done); the
    /// member set becomes the request's target.
    ///
    /// # Errors
    ///
    /// Returns [`AmError::NotAdjusting`] when no adjustment is executing.
    pub fn adjustment_complete(&mut self) -> Result<(), AmError> {
        let AmState::Adjusting { request } = &self.state else {
            return Err(AmError::NotAdjusting);
        };
        self.members = request.target().to_vec();
        self.adjustments_completed += 1;
        self.transition(AmState::Idle);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale_out_2_to_4() -> AdjustmentRequest {
        AdjustmentRequest::contiguous(2, 4)
    }

    #[test]
    fn full_scale_out_cycle() {
        let mut am = ApplicationMaster::new("j");
        am.set_members(vec![GpuId(0), GpuId(1)]);
        am.request_adjustment(scale_out_2_to_4()).unwrap();
        assert_eq!(am.state().label(), "preparing");
        assert_eq!(am.coordinate(), CoordinateReply::Proceed);
        am.report(GpuId(2)).unwrap();
        assert_eq!(am.coordinate(), CoordinateReply::Proceed);
        am.report(GpuId(3)).unwrap();
        assert!(matches!(
            am.coordinate(),
            CoordinateReply::BeginAdjustment(_)
        ));
        // Other workers of the round still get the adjustment answer.
        assert!(matches!(
            am.coordinate(),
            CoordinateReply::BeginAdjustment(_)
        ));
        am.adjustment_complete().unwrap();
        assert_eq!(am.members().len(), 4);
        assert_eq!(am.adjustments_completed(), 1);
        assert_eq!(am.state().label(), "idle");
    }

    #[test]
    fn scale_in_skips_reporting() {
        let mut am = ApplicationMaster::new("j");
        am.set_members((0..4).map(GpuId).collect());
        am.request_adjustment(AdjustmentRequest::contiguous(4, 2))
            .unwrap();
        assert_eq!(am.state().label(), "ready");
        assert!(matches!(
            am.coordinate(),
            CoordinateReply::BeginAdjustment(_)
        ));
    }

    #[test]
    fn duplicate_reports_are_idempotent() {
        let mut am = ApplicationMaster::new("j");
        am.request_adjustment(scale_out_2_to_4()).unwrap();
        am.report(GpuId(2)).unwrap();
        am.report(GpuId(2)).unwrap();
        assert_eq!(am.state().label(), "preparing");
    }

    #[test]
    fn rejects_concurrent_requests() {
        let mut am = ApplicationMaster::new("j");
        am.request_adjustment(scale_out_2_to_4()).unwrap();
        let err = am.request_adjustment(scale_out_2_to_4()).unwrap_err();
        assert!(matches!(err, AmError::Busy { .. }));
    }

    #[test]
    fn rejects_unexpected_reports() {
        let mut am = ApplicationMaster::new("j");
        assert_eq!(
            am.report(GpuId(9)),
            Err(AmError::UnexpectedReport(GpuId(9)))
        );
        am.request_adjustment(scale_out_2_to_4()).unwrap();
        assert_eq!(
            am.report(GpuId(9)),
            Err(AmError::UnexpectedReport(GpuId(9)))
        );
    }

    #[test]
    fn complete_requires_adjusting() {
        let mut am = ApplicationMaster::new("j");
        assert_eq!(am.adjustment_complete(), Err(AmError::NotAdjusting));
    }

    #[test]
    fn crash_recovery_resumes_mid_preparation() {
        let mut am = ApplicationMaster::new("j");
        am.request_adjustment(scale_out_2_to_4()).unwrap();
        am.report(GpuId(2)).unwrap();
        // The AM crashes; stable storage survives.
        let stable = am.store().clone();
        drop(am);
        let mut recovered = ApplicationMaster::recover("j", stable);
        assert_eq!(recovered.state().label(), "preparing");
        // The missing report still completes the preparation.
        recovered.report(GpuId(3)).unwrap();
        assert_eq!(recovered.state().label(), "ready");
    }

    #[test]
    fn crash_recovery_mid_adjustment() {
        let mut am = ApplicationMaster::new("j");
        am.request_adjustment(AdjustmentRequest::contiguous(4, 2))
            .unwrap();
        let _ = am.coordinate();
        let stable = am.store().clone();
        let mut recovered = ApplicationMaster::recover("j", stable);
        assert_eq!(recovered.state().label(), "adjusting");
        recovered.adjustment_complete().unwrap();
        assert_eq!(recovered.members().len(), 2);
    }

    #[test]
    fn recovery_of_unknown_job_is_idle() {
        let recovered = ApplicationMaster::recover("ghost", ReplicatedStore::new());
        assert_eq!(recovered.state().label(), "idle");
    }

    #[test]
    fn every_transition_is_persisted_first() {
        let mut am = ApplicationMaster::new("j");
        let w0 = am.store().write_count();
        am.request_adjustment(scale_out_2_to_4()).unwrap();
        assert!(am.store().write_count() > w0);
        let key = "am/j/state";
        assert_eq!(am.store().get(key).unwrap().value.label(), "preparing");
    }
}
