//! Training state and the hook API (§IV-1, §V-A).
//!
//! The whole training state of a data-parallel job is composed of the
//! model parameters, the optimizer state, the data-loading state, the
//! communication group, and some runtime information (Table II). Every
//! worker holds one identical copy — the property the replication
//! mechanism exploits.
//!
//! Frameworks integrate with Elan by registering [`StateHook`]s
//! (`RegisterHook` in Table III): each hook knows how to save and load one
//! piece of state, so Elan itself stays framework-agnostic.

use std::collections::BTreeMap;
use std::fmt;

use elan_sim::Bytes;

/// Identifies a training worker within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub u32);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Runtime information carried in the training state (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeInfo {
    /// Current epoch.
    pub epoch: u32,
    /// Current iteration within the job.
    pub iteration: u64,
    /// Current learning rate.
    pub learning_rate: f64,
    /// Current total batch size.
    pub total_batch_size: u32,
}

/// A snapshot of the complete training state of one worker.
///
/// Model parameters and optimizer slots live in GPU memory; the data
/// cursor and runtime info live in CPU memory (§IV-1). The parameter
/// payload itself is represented by its size and a checksum — the
/// simulator moves sizes, the live runtime (`elan-rt`) moves real buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingState {
    /// Bytes of GPU-resident state (parameters + gradients + optimizer).
    pub gpu_bytes: Bytes,
    /// Bytes of CPU-resident state (loader cursor, RNG, runtime info).
    pub cpu_bytes: Bytes,
    /// Checksum standing in for the parameter payload, used by tests to
    /// assert replication fidelity.
    pub params_checksum: u64,
    /// Serial data-loading cursor (§V-C): the single integer that fully
    /// describes the data-loading state.
    pub data_cursor: u64,
    /// Runtime info.
    pub runtime: RuntimeInfo,
    /// The communication group: every worker currently in the job.
    pub comm_group: Vec<WorkerId>,
}

impl TrainingState {
    /// A fresh state at iteration zero for a new job.
    pub fn initial(
        gpu_bytes: Bytes,
        comm_group: Vec<WorkerId>,
        total_batch_size: u32,
        lr: f64,
    ) -> Self {
        TrainingState {
            gpu_bytes,
            cpu_bytes: Bytes::from_kib(64),
            params_checksum: 0,
            data_cursor: 0,
            runtime: RuntimeInfo {
                epoch: 0,
                iteration: 0,
                learning_rate: lr,
                total_batch_size,
            },
            comm_group,
        }
    }
}

/// A framework-provided save/load pair for one piece of training state —
/// the `RegisterHook` API of Table III.
///
/// Hook payloads are opaque bytes to Elan; only their size matters to the
/// replication planner.
pub trait StateHook {
    /// Serializes this piece of state.
    fn save(&self) -> Vec<u8>;

    /// Restores this piece of state from a previous [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns a message when the payload is not recognized.
    fn load(&mut self, payload: &[u8]) -> Result<(), String>;
}

/// An ordered registry of named state hooks.
///
/// Integrating a new framework with Elan "simply requires implementing
/// some hook functions" (§V-A); the registry snapshots and restores them
/// all in a deterministic order.
///
/// # Examples
///
/// ```
/// use elan_core::state::{HookRegistry, StateHook};
///
/// struct Cursor(u64);
/// impl StateHook for Cursor {
///     fn save(&self) -> Vec<u8> { self.0.to_le_bytes().to_vec() }
///     fn load(&mut self, p: &[u8]) -> Result<(), String> {
///         let bytes: [u8; 8] = p.try_into().map_err(|_| "bad cursor".to_string())?;
///         self.0 = u64::from_le_bytes(bytes);
///         Ok(())
///     }
/// }
///
/// let mut reg = HookRegistry::new();
/// reg.register("data-loader", Cursor(42));
/// let snapshot = reg.save_all();
/// assert_eq!(snapshot.len(), 1);
/// ```
#[derive(Default)]
pub struct HookRegistry {
    hooks: BTreeMap<String, Box<dyn StateHook>>,
}

impl fmt::Debug for HookRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HookRegistry")
            .field("hooks", &self.hooks.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl HookRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        HookRegistry::default()
    }

    /// Registers a hook under `name`, replacing any previous hook with the
    /// same name.
    pub fn register(&mut self, name: impl Into<String>, hook: impl StateHook + 'static) {
        self.hooks.insert(name.into(), Box::new(hook));
    }

    /// Removes a hook; returns true if it existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        self.hooks.remove(name).is_some()
    }

    /// Registered hook names, in snapshot order.
    pub fn names(&self) -> Vec<&str> {
        self.hooks.keys().map(String::as_str).collect()
    }

    /// Number of registered hooks.
    pub fn len(&self) -> usize {
        self.hooks.len()
    }

    /// True when no hooks are registered.
    pub fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }

    /// Snapshots every hook in name order.
    pub fn save_all(&self) -> Vec<(String, Vec<u8>)> {
        self.hooks
            .iter()
            .map(|(name, hook)| (name.clone(), hook.save()))
            .collect()
    }

    /// Restores hooks from a snapshot produced by [`save_all`](Self::save_all).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first hook that is missing or fails to
    /// load; earlier hooks stay restored.
    pub fn load_all(&mut self, snapshot: &[(String, Vec<u8>)]) -> Result<(), String> {
        for (name, payload) in snapshot {
            let hook = self
                .hooks
                .get_mut(name)
                .ok_or_else(|| format!("no hook registered under '{name}'"))?;
            hook.load(payload)
                .map_err(|e| format!("hook '{name}' failed to load: {e}"))?;
        }
        Ok(())
    }

    /// Total bytes a full snapshot would occupy — what replication moves.
    pub fn snapshot_bytes(&self) -> Bytes {
        Bytes::new(self.hooks.values().map(|h| h.save().len() as u64).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scalar(u64);
    impl StateHook for Scalar {
        fn save(&self) -> Vec<u8> {
            self.0.to_le_bytes().to_vec()
        }
        fn load(&mut self, p: &[u8]) -> Result<(), String> {
            let bytes: [u8; 8] = p.try_into().map_err(|_| "expected 8 bytes".to_string())?;
            self.0 = u64::from_le_bytes(bytes);
            Ok(())
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let mut a = HookRegistry::new();
        a.register("model", Scalar(7));
        a.register("optimizer", Scalar(9));
        let snap = a.save_all();

        let mut b = HookRegistry::new();
        b.register("model", Scalar(0));
        b.register("optimizer", Scalar(0));
        b.load_all(&snap).unwrap();
        assert_eq!(b.save_all(), snap);
    }

    #[test]
    fn load_fails_on_missing_hook() {
        let mut a = HookRegistry::new();
        a.register("model", Scalar(7));
        let snap = a.save_all();

        let mut b = HookRegistry::new();
        let err = b.load_all(&snap).unwrap_err();
        assert!(err.contains("model"));
    }

    #[test]
    fn load_fails_on_bad_payload() {
        let mut reg = HookRegistry::new();
        reg.register("model", Scalar(0));
        let err = reg
            .load_all(&[("model".to_string(), vec![1, 2, 3])])
            .unwrap_err();
        assert!(err.contains("failed to load"));
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let mut reg = HookRegistry::new();
        reg.register("zeta", Scalar(1));
        reg.register("alpha", Scalar(2));
        let names: Vec<String> = reg.save_all().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn register_replaces_and_unregister_removes() {
        let mut reg = HookRegistry::new();
        reg.register("x", Scalar(1));
        reg.register("x", Scalar(2));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.save_all()[0].1, 2u64.to_le_bytes().to_vec());
        assert!(reg.unregister("x"));
        assert!(!reg.unregister("x"));
        assert!(reg.is_empty());
    }

    #[test]
    fn snapshot_bytes_sums_payloads() {
        let mut reg = HookRegistry::new();
        reg.register("a", Scalar(1));
        reg.register("b", Scalar(2));
        assert_eq!(reg.snapshot_bytes().as_u64(), 16);
    }

    #[test]
    fn initial_state_is_clean() {
        let s = TrainingState::initial(
            Bytes::from_mib(300),
            vec![WorkerId(0), WorkerId(1)],
            256,
            0.1,
        );
        assert_eq!(s.runtime.iteration, 0);
        assert_eq!(s.data_cursor, 0);
        assert_eq!(s.comm_group.len(), 2);
    }
}
