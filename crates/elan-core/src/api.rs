//! The public Elan API of Table III (§V-A).
//!
//! | Paper API | Here |
//! |---|---|
//! | `ScaleOut/ScaleIn/Migrate` (service API, used by the scheduler) | [`ElanJobApi::scale_out`] / [`ElanJobApi::scale_in`] / [`ElanJobApi::migrate`] |
//! | `RegisterHook(name, save, load)` | [`ElanJobApi::register_hook`] |
//! | `Coordinate()` (called at iteration boundaries) | [`ElanJobApi::coordinate`] |
//!
//! The facade wires the application master, the hook registry, and the
//! serial data sampler together the way a framework integration would:
//! Caffe and PyTorch integrations in the paper implement only the hook
//! functions, everything else is Elan.

use elan_topology::GpuId;

use crate::am::{ApplicationMaster, CoordinateReply};
use crate::data::SerialSampler;
use crate::elasticity::AdjustmentRequest;
use crate::error::ElanError;
use crate::state::{HookRegistry, StateHook};

/// One framework-facing Elan instance for a training job.
///
/// # Examples
///
/// ```
/// use elan_core::api::ElanJobApi;
/// use elan_core::state::StateHook;
/// use elan_topology::GpuId;
///
/// struct Cursor(u64);
/// impl StateHook for Cursor {
///     fn save(&self) -> Vec<u8> { self.0.to_le_bytes().to_vec() }
///     fn load(&mut self, p: &[u8]) -> Result<(), String> {
///         self.0 = u64::from_le_bytes(p.try_into().map_err(|_| "bad")?);
///         Ok(())
///     }
/// }
///
/// let mut api = ElanJobApi::new("job-7", (0..4).map(GpuId).collect(), 50_000);
/// api.register_hook("data-loader", Cursor(0));
/// // The scheduler grows the job; new workers report; training coordinates.
/// api.scale_out((4..8).map(GpuId).collect())?;
/// for g in 4..8 { api.worker_ready(GpuId(g))?; }
/// assert!(api.coordinate().is_adjustment());
/// # Ok::<(), elan_core::ElanError>(())
/// ```
#[derive(Debug)]
pub struct ElanJobApi {
    am: ApplicationMaster,
    hooks: HookRegistry,
    sampler: SerialSampler,
}

/// What [`ElanJobApi::coordinate`] tells the training loop to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordinateOutcome {
    /// Keep training.
    Proceed,
    /// Execute the adjustment: replicate state per the plan, repartition
    /// data, rebuild the communication group.
    Adjust(AdjustmentRequest),
}

impl CoordinateOutcome {
    /// True when the outcome starts an adjustment.
    pub fn is_adjustment(&self) -> bool {
        matches!(self, CoordinateOutcome::Adjust(_))
    }
}

impl ElanJobApi {
    /// Creates the API for a job running on `members`, training over a
    /// dataset of `dataset_size` samples.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or the dataset is empty.
    pub fn new(job: impl Into<String>, members: Vec<GpuId>, dataset_size: u64) -> Self {
        assert!(!members.is_empty(), "job needs at least one worker");
        let mut am = ApplicationMaster::new(job);
        am.set_members(members);
        ElanJobApi {
            am,
            hooks: HookRegistry::new(),
            sampler: SerialSampler::new(dataset_size),
        }
    }

    /// Table III `RegisterHook`: registers a save/load pair for one piece
    /// of training state.
    pub fn register_hook(&mut self, name: impl Into<String>, hook: impl StateHook + 'static) {
        self.hooks.register(name, hook);
    }

    /// Service API: request growth to `target` (a superset of the current
    /// members).
    ///
    /// # Errors
    ///
    /// Returns [`ElanError`] for malformed requests or a busy AM.
    pub fn scale_out(&mut self, target: Vec<GpuId>) -> Result<(), ElanError> {
        let req = AdjustmentRequest::new(self.am.members().to_vec(), target)?;
        self.am.request_adjustment(req)?;
        Ok(())
    }

    /// Service API: request shrink to `target` (a subset).
    ///
    /// # Errors
    ///
    /// Returns [`ElanError`] for malformed requests or a busy AM.
    pub fn scale_in(&mut self, target: Vec<GpuId>) -> Result<(), ElanError> {
        self.scale_out(target) // kind is inferred from the placements
    }

    /// Service API: request migration to a different placement.
    ///
    /// # Errors
    ///
    /// Returns [`ElanError`] for malformed requests or a busy AM.
    pub fn migrate(&mut self, target: Vec<GpuId>) -> Result<(), ElanError> {
        self.scale_out(target)
    }

    /// Step ②: a launched worker reports ready.
    ///
    /// # Errors
    ///
    /// Returns [`ElanError`] if the worker is not part of a pending
    /// adjustment.
    pub fn worker_ready(&mut self, worker: GpuId) -> Result<(), ElanError> {
        self.am.report(worker)?;
        Ok(())
    }

    /// Table III `Coordinate`: called by the training loop at iteration
    /// boundaries.
    pub fn coordinate(&mut self) -> CoordinateOutcome {
        match self.am.coordinate() {
            CoordinateReply::Proceed => CoordinateOutcome::Proceed,
            CoordinateReply::BeginAdjustment(req) => CoordinateOutcome::Adjust(req),
        }
    }

    /// Completes the in-flight adjustment after steps ④/⑤ ran: the data
    /// cursor repartitions (a no-op under serial semantics) and the
    /// member set switches.
    ///
    /// # Errors
    ///
    /// Returns [`ElanError`] when no adjustment is executing.
    pub fn adjustment_complete(&mut self) -> Result<(), ElanError> {
        self.am.adjustment_complete()?;
        Ok(())
    }

    /// Current members.
    pub fn members(&self) -> &[GpuId] {
        self.am.members()
    }

    /// The registered hooks (for snapshot size accounting).
    pub fn hooks(&self) -> &HookRegistry {
        &self.hooks
    }

    /// The serial data sampler.
    pub fn sampler(&mut self) -> &mut SerialSampler {
        &mut self.sampler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elasticity::RequestError;

    struct Nop;
    impl StateHook for Nop {
        fn save(&self) -> Vec<u8> {
            vec![0xAB]
        }
        fn load(&mut self, _p: &[u8]) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn full_scale_out_through_the_api() {
        let mut api = ElanJobApi::new("j", (0..2).map(GpuId).collect(), 1000);
        api.register_hook("model", Nop);
        api.scale_out((0..4).map(GpuId).collect()).unwrap();
        assert_eq!(api.coordinate(), CoordinateOutcome::Proceed);
        api.worker_ready(GpuId(2)).unwrap();
        api.worker_ready(GpuId(3)).unwrap();
        let outcome = api.coordinate();
        assert!(outcome.is_adjustment());
        api.adjustment_complete().unwrap();
        assert_eq!(api.members().len(), 4);
    }

    #[test]
    fn scale_in_needs_no_reports() {
        let mut api = ElanJobApi::new("j", (0..4).map(GpuId).collect(), 1000);
        api.scale_in((0..2).map(GpuId).collect()).unwrap();
        assert!(api.coordinate().is_adjustment());
        api.adjustment_complete().unwrap();
        assert_eq!(api.members().len(), 2);
    }

    #[test]
    fn busy_am_rejects_second_request() {
        let mut api = ElanJobApi::new("j", (0..2).map(GpuId).collect(), 1000);
        api.scale_out((0..4).map(GpuId).collect()).unwrap();
        let err = api.scale_out((0..8).map(GpuId).collect()).unwrap_err();
        assert!(matches!(err, ElanError::Am(_)));
    }

    #[test]
    fn malformed_request_is_rejected() {
        let mut api = ElanJobApi::new("j", (0..2).map(GpuId).collect(), 1000);
        let err = api.migrate((0..2).map(GpuId).collect()).unwrap_err();
        assert!(matches!(err, ElanError::BadRequest(RequestError::NoChange)));
    }

    #[test]
    fn sampler_cursor_is_the_data_state() {
        let mut api = ElanJobApi::new("j", (0..2).map(GpuId).collect(), 100);
        api.sampler().next_batch(30);
        assert_eq!(api.sampler().cursor(), 30);
    }
}
