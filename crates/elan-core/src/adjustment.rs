//! Elan's adjustment cost model — the ⑤-step procedure priced on virtual
//! time (§II, §IV, §V-B).
//!
//! For Elan, the only time training actually stalls is the *pause*:
//! state replication (topology-aware, concurrent, IO-free) plus the state
//! adjustment (data repartition — one integer under serial semantics —
//! communication-group reconstruction, and the hybrid-scaling decision).
//! Everything else — new-worker start and initialization — happens in
//! parallel with ongoing training thanks to the asynchronous coordination
//! mechanism, and only stretches the *completion* time.

use elan_sim::{Bytes, SeedStream, SimDuration};
use elan_topology::ReplicationPlanner;

use rand::Rng;

use crate::elasticity::{
    AdjustmentContext, AdjustmentCost, AdjustmentKind, AdjustmentRequest, ElasticitySystem,
};

/// Cost constants for the non-replication parts of an adjustment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElanCosts {
    /// Rebuilding the collective-communication group: fixed part.
    pub comm_reconstruct_base: SimDuration,
    /// Rebuilding the collective-communication group: per-worker part.
    pub comm_reconstruct_per_worker: SimDuration,
    /// Data repartition under serial semantics (replicating one integer).
    pub data_repartition: SimDuration,
    /// Evaluating the hybrid-scaling decision.
    pub scaling_decision: SimDuration,
    /// Worker process start (container/process launch), drawn per worker.
    pub start_min: SimDuration,
    /// Upper bound of the start draw.
    pub start_max: SimDuration,
    /// Framework/runtime initialization (CUDA context, libraries), drawn
    /// per worker.
    pub init_min: SimDuration,
    /// Upper bound of the init draw.
    pub init_max: SimDuration,
    /// AM processing per coordination message.
    pub am_processing: SimDuration,
}

impl ElanCosts {
    /// Values calibrated to the paper's Fig. 11 breakdown: start ≈ 10 s,
    /// initialization ≈ 15–25 s, while the in-band costs are sub-second.
    pub fn paper_default() -> Self {
        ElanCosts {
            comm_reconstruct_base: SimDuration::from_millis(400),
            comm_reconstruct_per_worker: SimDuration::from_millis(8),
            data_repartition: SimDuration::from_millis(2),
            scaling_decision: SimDuration::from_micros(100),
            start_min: SimDuration::from_secs(8),
            start_max: SimDuration::from_secs(12),
            init_min: SimDuration::from_secs(15),
            init_max: SimDuration::from_secs(25),
            am_processing: SimDuration::from_micros(10),
        }
    }
}

impl Default for ElanCosts {
    fn default() -> Self {
        ElanCosts::paper_default()
    }
}

/// The Elan elasticity system.
///
/// # Examples
///
/// ```
/// use elan_core::{AdjustmentContext, AdjustmentRequest, ElanSystem, ElasticitySystem};
/// use elan_models::{perf::PerfModel, zoo};
/// use elan_topology::{BandwidthModel, ClusterSpec};
///
/// let topo = ClusterSpec::paper_testbed().build();
/// let bw = BandwidthModel::paper_default();
/// let perf = PerfModel::paper_default();
/// let model = zoo::resnet50();
/// let ctx = AdjustmentContext {
///     topology: &topo, bandwidth: &bw, perf: &perf, model: &model,
///     total_batch: 512, coordination_interval: 10, seed: 7,
/// };
/// let cost = ElanSystem::new().adjust(&AdjustmentRequest::contiguous(16, 32), &ctx);
/// // Elan's visible pause is about a second (Fig. 15).
/// assert!(cost.pause.as_secs_f64() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ElanSystem {
    costs: ElanCosts,
}

impl ElanSystem {
    /// Creates the system with paper-calibrated costs.
    pub fn new() -> Self {
        ElanSystem {
            costs: ElanCosts::paper_default(),
        }
    }

    /// Creates the system with custom cost constants (for ablations).
    pub fn with_costs(costs: ElanCosts) -> Self {
        ElanSystem { costs }
    }

    /// The cost constants in use.
    pub fn costs(&self) -> &ElanCosts {
        &self.costs
    }

    /// Per-worker start+init durations for the joining workers, drawn
    /// deterministically from the context seed. The *maximum* gates when
    /// the adjustment can begin — but off the critical path.
    pub fn start_init_times(
        &self,
        request: &AdjustmentRequest,
        ctx: &AdjustmentContext<'_>,
    ) -> Vec<SimDuration> {
        let seeds = SeedStream::new(ctx.seed);
        request
            .joining()
            .iter()
            .map(|g| {
                let mut rng = seeds.rng_indexed("start-init", g.0 as u64);
                let start_span = self
                    .costs
                    .start_max
                    .saturating_sub(self.costs.start_min)
                    .as_nanos();
                let init_span = self
                    .costs
                    .init_max
                    .saturating_sub(self.costs.init_min)
                    .as_nanos();
                let start = self.costs.start_min
                    + SimDuration::from_nanos(rng.gen_range(0..=start_span.max(1)));
                let init = self.costs.init_min
                    + SimDuration::from_nanos(rng.gen_range(0..=init_span.max(1)));
                start + init
            })
            .collect()
    }

    /// The replication part of the pause: plans transfers with the
    /// concurrent IO-free mechanism and prices them on the link model.
    /// The payload is parameters + optimizer slots (gradients are
    /// recomputed); CPU state overlaps on the side channel.
    pub fn replication_time(
        &self,
        request: &AdjustmentRequest,
        ctx: &AdjustmentContext<'_>,
    ) -> SimDuration {
        let joining = request.joining();
        if joining.is_empty() {
            return SimDuration::ZERO;
        }
        let plan = ReplicationPlanner::new(ctx.topology)
            .plan(request.current(), &joining)
            .expect("valid adjustment placements");
        let gpu_payload = Bytes::new(ctx.model.parameters * 4 * 2); // params + momentum
        plan.duration(ctx.bandwidth, gpu_payload, ctx.model.cpu_state_bytes())
    }

    /// The state-adjustment part of the pause (step ⑤).
    pub fn state_adjustment_time(&self, n_after: u32) -> SimDuration {
        self.costs.data_repartition
            + self.costs.scaling_decision
            + self.costs.comm_reconstruct_base
            + self.costs.comm_reconstruct_per_worker * n_after as u64
    }
}

impl ElasticitySystem for ElanSystem {
    fn name(&self) -> &'static str {
        "Elan"
    }

    fn adjust(&self, request: &AdjustmentRequest, ctx: &AdjustmentContext<'_>) -> AdjustmentCost {
        let pause = match request.kind() {
            AdjustmentKind::ScaleOut | AdjustmentKind::Migration => {
                self.replication_time(request, ctx) + self.state_adjustment_time(request.n_after())
            }
            AdjustmentKind::ScaleIn => self.state_adjustment_time(request.n_after()),
        };

        // Completion: new workers start+init asynchronously while training
        // continues; the adjustment triggers at the first coordination
        // boundary after the slowest report, then the pause applies.
        let slowest_init = self
            .start_init_times(request, ctx)
            .into_iter()
            .fold(SimDuration::ZERO, SimDuration::max);
        let boundary = ctx.next_boundary_after(slowest_init, request.n_before());
        AdjustmentCost {
            pause,
            completion: boundary + pause,
        }
    }

    fn runtime_overhead(&self, ctx: &AdjustmentContext<'_>, n_workers: u32) -> f64 {
        // Per coordination round: one RPC round trip on the side channel
        // plus AM processing of every worker's message.
        let rpc = ctx.bandwidth.side_channel.latency * 2;
        let processing = self.costs.am_processing * n_workers as u64;
        let per_round = rpc + processing;
        let period = ctx.coordination_period(n_workers);
        per_round.as_secs_f64() / period.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elan_models::{zoo, PerfModel};
    use elan_topology::{BandwidthModel, ClusterSpec, Topology};

    fn fixtures() -> (Topology, BandwidthModel, PerfModel) {
        (
            ClusterSpec::paper_testbed().build(),
            BandwidthModel::paper_default(),
            PerfModel::paper_default(),
        )
    }

    fn ctx<'a>(
        topo: &'a Topology,
        bw: &'a BandwidthModel,
        perf: &'a PerfModel,
        model: &'a elan_models::ModelSpec,
    ) -> AdjustmentContext<'a> {
        AdjustmentContext {
            topology: topo,
            bandwidth: bw,
            perf,
            model,
            total_batch: 512,
            coordination_interval: 10,
            seed: 7,
        }
    }

    #[test]
    fn pause_is_about_a_second_for_all_models() {
        // Fig. 15: Elan achieves ~1s on migration and scaling for every
        // model (A-E) at every scale.
        let (topo, bw, perf) = fixtures();
        for model in zoo::evaluation_models() {
            let c = ctx(&topo, &bw, &perf, &model);
            for req in [
                AdjustmentRequest::contiguous(16, 32),
                AdjustmentRequest::contiguous(32, 16),
                AdjustmentRequest::migration(16, 32),
            ] {
                let cost = ElanSystem::new().adjust(&req, &c);
                assert!(
                    cost.pause.as_secs_f64() < 3.5,
                    "{} {} pause {}",
                    model.name,
                    req,
                    cost.pause
                );
                assert!(cost.pause > SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn scale_in_is_cheapest() {
        // No replication needed when workers leave.
        let (topo, bw, perf) = fixtures();
        let model = zoo::resnet50();
        let c = ctx(&topo, &bw, &perf, &model);
        let sys = ElanSystem::new();
        let out = sys.adjust(&AdjustmentRequest::contiguous(16, 32), &c);
        let inn = sys.adjust(&AdjustmentRequest::contiguous(32, 16), &c);
        assert!(inn.pause < out.pause);
    }

    #[test]
    fn completion_hides_init_off_critical_path() {
        // Completion includes the ~25-35s start+init wait, but pause does
        // not — the asynchronous coordination headline.
        let (topo, bw, perf) = fixtures();
        let model = zoo::resnet50();
        let c = ctx(&topo, &bw, &perf, &model);
        let cost = ElanSystem::new().adjust(&AdjustmentRequest::contiguous(16, 32), &c);
        assert!(cost.completion.as_secs_f64() > 20.0);
        assert!(cost.pause.as_secs_f64() < 2.0);
    }

    #[test]
    fn start_init_draws_are_deterministic_and_bounded() {
        let (topo, bw, perf) = fixtures();
        let model = zoo::resnet50();
        let c = ctx(&topo, &bw, &perf, &model);
        let sys = ElanSystem::new();
        let req = AdjustmentRequest::contiguous(8, 16);
        let a = sys.start_init_times(&req, &c);
        let b = sys.start_init_times(&req, &c);
        assert_eq!(a, b);
        for t in &a {
            let s = t.as_secs_f64();
            assert!((23.0..=37.0).contains(&s), "draw out of range: {s}");
        }
    }

    #[test]
    fn replication_payload_prefers_fast_links() {
        // Scaling out within one node must beat scaling out across nodes.
        let (topo, bw, perf) = fixtures();
        let model = zoo::vgg19(); // big payload amplifies the difference
        let c = ctx(&topo, &bw, &perf, &model);
        let sys = ElanSystem::new();
        let near = AdjustmentRequest::new(
            vec![elan_topology::GpuId(0)],
            vec![elan_topology::GpuId(0), elan_topology::GpuId(1)],
        )
        .unwrap();
        let far = AdjustmentRequest::new(
            vec![elan_topology::GpuId(0)],
            vec![elan_topology::GpuId(0), elan_topology::GpuId(8)],
        )
        .unwrap();
        assert!(sys.replication_time(&near, &c) < sys.replication_time(&far, &c));
    }

    #[test]
    fn runtime_overhead_below_three_permille() {
        // Fig. 14: < 3‰ for every model on 2-64 workers.
        let (topo, bw, perf) = fixtures();
        let sys = ElanSystem::new();
        for model in zoo::evaluation_models() {
            let c = ctx(&topo, &bw, &perf, &model);
            for n in [2u32, 4, 8, 16, 32, 64] {
                let o = sys.runtime_overhead(&c, n);
                assert!(o < 0.003, "{} at {n} workers: {o:.5}", model.name);
                assert!(o > 0.0);
            }
        }
    }

    #[test]
    fn overhead_shrinks_with_longer_interval() {
        let (topo, bw, perf) = fixtures();
        let model = zoo::resnet50();
        let mut c = ctx(&topo, &bw, &perf, &model);
        let sys = ElanSystem::new();
        let o10 = sys.runtime_overhead(&c, 16);
        c.coordination_interval = 100;
        let o100 = sys.runtime_overhead(&c, 16);
        assert!(o100 < o10);
    }
}
