//! Data loading semantics and repartition (§V-C).
//!
//! After a resource adjustment the remaining data of the current epoch
//! must be repartitioned across the new worker set without losing or
//! duplicating samples. Elan's **serial** semantics makes this trivial:
//! workers fetch data in a global serial order, so the data-loading state
//! is a single integer — the cursor at the start of the remaining data.
//! The **chunk-based** semantics used by most frameworks fragments the
//! remaining data and needs a record table; it is implemented here as the
//! comparison point.

use std::collections::BTreeMap;

/// The serial data-loading sampler: one global cursor (§V-C).
///
/// # Examples
///
/// ```
/// use elan_core::data::SerialSampler;
/// use elan_core::state::WorkerId;
///
/// let mut s = SerialSampler::new(1000);
/// let batch = s.next_batch(8);
/// // 8 contiguous samples, one per worker shard when split 4 ways.
/// assert_eq!(batch, (0..8).collect::<Vec<u64>>());
/// let shards = SerialSampler::shard(&batch, 4);
/// assert_eq!(shards[0], vec![0, 1]);
/// assert_eq!(s.cursor(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialSampler {
    dataset_size: u64,
    cursor: u64,
    epoch: u32,
}

impl SerialSampler {
    /// Creates a sampler over a dataset of `dataset_size` samples.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn new(dataset_size: u64) -> Self {
        assert!(dataset_size > 0, "dataset must be non-empty");
        SerialSampler {
            dataset_size,
            cursor: 0,
            epoch: 0,
        }
    }

    /// The single integer that *is* the data-loading state.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// The current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Samples remaining in the current epoch.
    pub fn remaining(&self) -> u64 {
        self.dataset_size - self.cursor
    }

    /// Fetches the next `total_batch` sample indices in global serial
    /// order, wrapping into the next epoch when the dataset is exhausted.
    pub fn next_batch(&mut self, total_batch: u32) -> Vec<u64> {
        let mut batch = Vec::with_capacity(total_batch as usize);
        for _ in 0..total_batch {
            batch.push(self.cursor);
            self.cursor += 1;
            if self.cursor == self.dataset_size {
                self.cursor = 0;
                self.epoch += 1;
            }
        }
        batch
    }

    /// Splits a fetched batch across `n_workers` shards (contiguous
    /// slices; the tail pads to earlier shards when uneven).
    pub fn shard(batch: &[u64], n_workers: u32) -> Vec<Vec<u64>> {
        assert!(n_workers > 0, "need at least one worker");
        let n = n_workers as usize;
        let base = batch.len() / n;
        let extra = batch.len() % n;
        let mut shards = Vec::with_capacity(n);
        let mut at = 0;
        for i in 0..n {
            let take = base + usize::from(i < extra);
            shards.push(batch[at..at + take].to_vec());
            at += take;
        }
        shards
    }

    /// Restores the sampler from a replicated cursor — the entire
    /// repartition operation under serial semantics.
    pub fn restore(dataset_size: u64, cursor: u64, epoch: u32) -> Self {
        assert!(dataset_size > 0, "dataset must be non-empty");
        assert!(cursor < dataset_size, "cursor out of range");
        SerialSampler {
            dataset_size,
            cursor,
            epoch,
        }
    }
}

/// The chunk-based sampler used by most frameworks, for comparison.
///
/// The dataset is split into fixed-size chunks assigned round-robin to
/// workers; each worker consumes its chunks in order. Repartition must
/// collect every unconsumed fragment into a record table and redistribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkSampler {
    dataset_size: u64,
    chunk_size: u64,
    /// Per-worker queues of unconsumed fragments `(start, len)`.
    assignments: BTreeMap<u32, Vec<(u64, u64)>>,
}

impl ChunkSampler {
    /// Creates a sampler splitting `dataset_size` samples into chunks of
    /// `chunk_size`, assigned round-robin over `n_workers`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(dataset_size: u64, chunk_size: u64, n_workers: u32) -> Self {
        assert!(dataset_size > 0 && chunk_size > 0 && n_workers > 0);
        let mut s = ChunkSampler {
            dataset_size,
            chunk_size,
            assignments: BTreeMap::new(),
        };
        let fragments: Vec<(u64, u64)> = (0..dataset_size)
            .step_by(chunk_size as usize)
            .map(|start| (start, chunk_size.min(dataset_size - start)))
            .collect();
        s.assign_fragments(fragments, n_workers);
        s
    }

    fn assign_fragments(&mut self, fragments: Vec<(u64, u64)>, n_workers: u32) {
        self.assignments.clear();
        for w in 0..n_workers {
            self.assignments.insert(w, Vec::new());
        }
        for (i, frag) in fragments.into_iter().enumerate() {
            let w = (i as u32) % n_workers;
            self.assignments.entry(w).or_default().push(frag);
        }
    }

    /// Number of workers currently assigned chunks.
    pub fn n_workers(&self) -> u32 {
        self.assignments.len() as u32
    }

    /// Fetches `per_worker` samples for worker `w` from its chunk queue.
    /// Returns fewer (possibly zero) samples when the worker's chunks are
    /// exhausted — chunk semantics can starve workers unevenly.
    pub fn next_for_worker(&mut self, w: u32, per_worker: u32) -> Vec<u64> {
        let Some(queue) = self.assignments.get_mut(&w) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(per_worker as usize);
        while out.len() < per_worker as usize {
            let Some(front) = queue.first_mut() else {
                break;
            };
            let (start, len) = *front;
            if len > 0 {
                out.push(start);
                front.0 += 1;
                front.1 -= 1;
            } else {
                queue.remove(0);
            }
        }
        out
    }

    /// The record table of unconsumed fragments — what chunk semantics
    /// must manage to repartition (contrast with one integer).
    pub fn record_table(&self) -> Vec<(u64, u64)> {
        let mut table: Vec<(u64, u64)> = self
            .assignments
            .values()
            .flatten()
            .copied()
            .filter(|&(_, len)| len > 0)
            .collect();
        table.sort_unstable();
        table
    }

    /// Repartitions the remaining fragments across a new worker count,
    /// rebuilding the record table. Returns the table size that had to be
    /// managed (the management-cost metric the paper contrasts with the
    /// serial semantics' single integer).
    pub fn repartition(&mut self, n_workers: u32) -> usize {
        assert!(n_workers > 0);
        let table = self.record_table();
        let count = table.len();
        self.assign_fragments(table, n_workers);
        count
    }

    /// Remaining unconsumed samples in the current epoch.
    pub fn remaining(&self) -> u64 {
        self.record_table().iter().map(|&(_, len)| len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_serves_each_sample_once_per_epoch() {
        let mut s = SerialSampler::new(100);
        let mut seen = Vec::new();
        while s.epoch() == 0 {
            seen.extend(s.next_batch(10));
            if seen.len() >= 100 {
                break;
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_remaining_data_is_contiguous() {
        let mut s = SerialSampler::new(100);
        s.next_batch(37);
        assert_eq!(s.cursor(), 37);
        assert_eq!(s.remaining(), 63);
        // Repartition = restore from one integer.
        let restored = SerialSampler::restore(100, s.cursor(), s.epoch());
        assert_eq!(restored, s);
    }

    #[test]
    fn serial_wraps_into_next_epoch() {
        let mut s = SerialSampler::new(10);
        let batch = s.next_batch(15);
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.cursor(), 5);
        assert_eq!(batch[9], 9);
        assert_eq!(batch[10], 0);
    }

    #[test]
    fn shard_covers_batch_exactly() {
        let batch: Vec<u64> = (0..10).collect();
        let shards = SerialSampler::shard(&batch, 3);
        assert_eq!(shards.len(), 3);
        let flat: Vec<u64> = shards.into_iter().flatten().collect();
        assert_eq!(flat, batch);
    }

    #[test]
    fn shard_balances_within_one() {
        let batch: Vec<u64> = (0..10).collect();
        let shards = SerialSampler::shard(&batch, 4);
        let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn chunk_sampler_serves_all_samples() {
        let mut c = ChunkSampler::new(100, 16, 4);
        let mut seen = Vec::new();
        for w in 0..4 {
            loop {
                let got = c.next_for_worker(w, 8);
                if got.is_empty() {
                    break;
                }
                seen.extend(got);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn chunk_remaining_is_fragmented() {
        let mut c = ChunkSampler::new(100, 10, 4);
        // Consume a little from every worker: remaining data fragments.
        for w in 0..4 {
            c.next_for_worker(w, 3);
        }
        let table = c.record_table();
        assert!(table.len() > 1, "chunk semantics fragments remaining data");
        // Serial semantics would describe the same situation with ONE integer.
    }

    #[test]
    fn chunk_repartition_conserves_samples() {
        let mut c = ChunkSampler::new(100, 10, 4);
        for w in 0..4 {
            c.next_for_worker(w, 5);
        }
        let before = c.remaining();
        let table_size = c.repartition(6);
        assert!(table_size >= 1);
        assert_eq!(c.remaining(), before);
        assert_eq!(c.n_workers(), 6);
    }

    #[test]
    fn serial_state_is_one_integer_chunk_state_is_many() {
        // The §V-C comparison, as an executable fact.
        let mut serial = SerialSampler::new(1000);
        let mut chunk = ChunkSampler::new(1000, 10, 8);
        serial.next_batch(8 * 25);
        for w in 0..8 {
            chunk.next_for_worker(w, 25);
        }
        // Serial: the state is `cursor` — exactly one u64.
        assert_eq!(serial.cursor(), 200);
        // Chunk: the record table holds many entries.
        assert!(chunk.record_table().len() > 8);
    }

    #[test]
    #[should_panic(expected = "cursor out of range")]
    fn restore_validates_cursor() {
        let _ = SerialSampler::restore(10, 10, 0);
    }
}
