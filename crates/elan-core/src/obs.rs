//! Observability primitives shared across the Elan crates.
//!
//! The live runtime (`elan-rt`) builds its structured event journal and
//! adjustment traces on top of the types in this module:
//!
//! - [`AdjustmentPhase`] names the five steps of the paper's adjustment
//!   pipeline (§V-B): *request → report → coordinate → replicate →
//!   adjust*. Latency attributions everywhere in the workspace use this
//!   taxonomy, so a live trace, a simulated run, and a bench report all
//!   speak the same phase names.
//! - [`MetricsRegistry`] is a process-wide registry of named
//!   [`Counter`]s, [`Gauge`]s, and [`Histogram`]s. Handles are cheap
//!   `Arc`-backed atomics: registering is locked, *recording is
//!   lock-free*, which is what lets the hot paths of the runtime count
//!   resends and chunks without serializing on a metrics mutex.
//! - [`MetricsSnapshot`] is the point-in-time copy a shutdown report (or
//!   a scrape) carries, with a dependency-free JSON emitter.
//!
//! # Examples
//!
//! ```
//! use elan_core::obs::{AdjustmentPhase, MetricsRegistry};
//!
//! let registry = MetricsRegistry::new();
//! let resends = registry.counter("rt.resends");
//! resends.inc();
//! resends.add(2);
//! let lat = registry.histogram("adjust.total_us");
//! lat.record(1_500);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("rt.resends"), 3);
//! assert_eq!(snap.histograms["adjust.total_us"].count, 1);
//! assert_eq!(AdjustmentPhase::ALL.len(), 5);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One step of the 5-step adjustment pipeline (§V-B).
///
/// Every adjustment — scale-out, scale-in, migration, or a
/// failure-driven scale-in — moves through these phases in order; the
/// runtime's `AdjustmentTrace` records one wall-clock window per phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AdjustmentPhase {
    /// Step ①: the controller (or failure detector) requests the
    /// adjustment and the AM accepts it.
    Request,
    /// Step ②: newly launched workers initialize and report readiness.
    Report,
    /// Step ③: the AM waits for every live worker to park at a common
    /// iteration boundary.
    Coordinate,
    /// Step ④: training state replicates to the joiners in
    /// contention-free transfer waves.
    Replicate,
    /// Step ⑤: the communication group reconfigures and training resumes
    /// under the new membership.
    Adjust,
}

impl AdjustmentPhase {
    /// All five phases, in pipeline order.
    pub const ALL: [AdjustmentPhase; 5] = [
        AdjustmentPhase::Request,
        AdjustmentPhase::Report,
        AdjustmentPhase::Coordinate,
        AdjustmentPhase::Replicate,
        AdjustmentPhase::Adjust,
    ];

    /// Stable lowercase name (used in JSON exports and metric names).
    pub fn name(self) -> &'static str {
        match self {
            AdjustmentPhase::Request => "request",
            AdjustmentPhase::Report => "report",
            AdjustmentPhase::Coordinate => "coordinate",
            AdjustmentPhase::Replicate => "replicate",
            AdjustmentPhase::Adjust => "adjust",
        }
    }

    /// Position in the pipeline, `0..5`.
    pub fn index(self) -> usize {
        match self {
            AdjustmentPhase::Request => 0,
            AdjustmentPhase::Report => 1,
            AdjustmentPhase::Coordinate => 2,
            AdjustmentPhase::Replicate => 3,
            AdjustmentPhase::Adjust => 4,
        }
    }
}

impl fmt::Display for AdjustmentPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A half-open wall-clock window `[start_us, end_us]` on the journal's
/// microsecond time axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseWindow {
    /// Phase entry, µs since the journal epoch.
    pub start_us: u64,
    /// Phase exit, µs since the journal epoch.
    pub end_us: u64,
}

impl PhaseWindow {
    /// Window length in microseconds.
    pub fn micros(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Window length in milliseconds.
    pub fn ms(&self) -> f64 {
        self.micros() as f64 / 1e3
    }
}

/// A monotonically increasing named counter. Handles are cheap to clone
/// and record lock-free.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named signed gauge (set/add semantics).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Power-of-two bucket boundaries: bucket `i` counts values `v` with
/// `2^(i-1) < v <= 2^i` (bucket 0 counts 0 and 1).
const HIST_BUCKETS: usize = 64;

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistInner {
    fn default() -> Self {
        HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free log₂-bucketed histogram of `u64` samples (typically
/// microsecond latencies).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        let inner = HistInner {
            min: AtomicU64::new(u64::MAX),
            ..HistInner::default()
        };
        Histogram(Arc::new(inner))
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        let bucket = (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.min.fetch_min(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time summary.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.0.count.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.0.min.load(Ordering::Relaxed)
            },
            max: self.0.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSummary {
    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named metrics.
///
/// `counter`/`gauge`/`histogram` are get-or-create: every caller asking
/// for the same name shares the same underlying atomic, so subsystems
/// can be wired independently and still aggregate. Registration takes a
/// short lock; recording through the returned handles is lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns (creating if needed) the counter named `name`.
    pub fn counter(&self, name: impl Into<String>) -> Counter {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.counters.entry(name.into()).or_default().clone()
    }

    /// Returns (creating if needed) the gauge named `name`.
    pub fn gauge(&self, name: impl Into<String>) -> Gauge {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.gauges.entry(name.into()).or_default().clone()
    }

    /// Returns (creating if needed) the histogram named `name`.
    pub fn histogram(&self, name: impl Into<String>) -> Histogram {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.histograms.entry(name.into()).or_default().clone()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Counter value, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, or 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Serializes the snapshot as a JSON object (dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {}", json_escape(k), v));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {}", json_escape(k), v));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}}}",
                json_escape(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean()
            ));
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_ordered_and_named() {
        let names: Vec<_> = AdjustmentPhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["request", "report", "coordinate", "replicate", "adjust"]
        );
        for (i, p) in AdjustmentPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x").get(), 5);
        assert_eq!(reg.snapshot().counter("x"), 5);
        assert_eq!(reg.snapshot().counter("missing"), 0);
    }

    #[test]
    fn gauges_set_and_adjust() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("world");
        g.set(4);
        g.add(-1);
        assert_eq!(reg.snapshot().gauge("world"), 3);
    }

    #[test]
    fn histogram_summary_tracks_extremes() {
        let h = Histogram::default();
        assert_eq!(h.summary(), HistogramSummary::default());
        h.record(10);
        h.record(1000);
        h.record(1);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 1011);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 337.0).abs() < 1.0);
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").inc();
        reg.gauge("g").set(-2);
        reg.histogram("h").record(7);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"a.b\": 1"));
        assert!(json.contains("\"g\": -2"));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn phase_window_lengths() {
        let w = PhaseWindow {
            start_us: 1_000,
            end_us: 3_500,
        };
        assert_eq!(w.micros(), 2_500);
        assert!((w.ms() - 2.5).abs() < 1e-9);
        let inverted = PhaseWindow {
            start_us: 5,
            end_us: 1,
        };
        assert_eq!(inverted.micros(), 0);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
