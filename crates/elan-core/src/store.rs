//! A replicated key-value store standing in for etcd (§V-D).
//!
//! The application master persists its state machine to distributed
//! storage before acting on transitions, so a crashed AM can be replaced
//! and resume where it left off. This module provides a deterministic
//! in-process equivalent with versioned writes and compare-and-swap, plus
//! crash-snapshot support used by the fault-tolerance tests.

use std::collections::HashMap;
use std::fmt;

/// A versioned value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Versioned<T> {
    /// Monotone per-key version, starting at 1 for the first write.
    pub version: u64,
    /// The stored value.
    pub value: T,
}

/// Errors from conditional store operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// Compare-and-swap lost the race: the expected version is stale.
    VersionConflict {
        /// The version the caller expected.
        expected: u64,
        /// The version actually stored.
        actual: u64,
    },
    /// The key does not exist.
    NotFound,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::VersionConflict { expected, actual } => {
                write!(f, "version conflict: expected {expected}, stored {actual}")
            }
            StoreError::NotFound => write!(f, "key not found"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A linearizable, versioned key-value store (the simulated etcd).
///
/// # Examples
///
/// ```
/// use elan_core::store::ReplicatedStore;
///
/// let mut store: ReplicatedStore<String> = ReplicatedStore::new();
/// let v1 = store.put("am/job-1", "Idle".to_string());
/// assert_eq!(v1, 1);
/// let read = store.get("am/job-1").unwrap();
/// assert_eq!(read.value, "Idle");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplicatedStore<T> {
    entries: HashMap<String, Versioned<T>>,
    writes: u64,
}

impl<T: Clone> ReplicatedStore<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        ReplicatedStore {
            entries: HashMap::new(),
            writes: 0,
        }
    }

    /// Unconditionally writes `value`, returning the new version.
    pub fn put(&mut self, key: impl Into<String>, value: T) -> u64 {
        let key = key.into();
        self.writes += 1;
        let version = self.entries.get(&key).map_or(0, |v| v.version) + 1;
        self.entries.insert(key, Versioned { version, value });
        version
    }

    /// Writes only if the stored version matches `expected` (0 = absent).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::VersionConflict`] when the expectation fails.
    pub fn compare_and_put(
        &mut self,
        key: impl Into<String>,
        expected: u64,
        value: T,
    ) -> Result<u64, StoreError> {
        let key = key.into();
        let actual = self.entries.get(&key).map_or(0, |v| v.version);
        if actual != expected {
            return Err(StoreError::VersionConflict { expected, actual });
        }
        Ok(self.put(key, value))
    }

    /// Reads the versioned value at `key`.
    pub fn get(&self, key: &str) -> Option<&Versioned<T>> {
        self.entries.get(key)
    }

    /// Deletes `key`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if the key does not exist.
    pub fn delete(&mut self, key: &str) -> Result<Versioned<T>, StoreError> {
        self.entries.remove(key).ok_or(StoreError::NotFound)
    }

    /// Keys with the given prefix, sorted.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .entries
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Total writes accepted — persistence-cost metric for overhead math.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_increase_per_key() {
        let mut s = ReplicatedStore::new();
        assert_eq!(s.put("a", 1), 1);
        assert_eq!(s.put("a", 2), 2);
        assert_eq!(s.put("b", 9), 1);
        assert_eq!(s.get("a").unwrap().value, 2);
    }

    #[test]
    fn cas_succeeds_on_expected_version() {
        let mut s = ReplicatedStore::new();
        s.put("k", 1);
        assert_eq!(s.compare_and_put("k", 1, 2), Ok(2));
        assert_eq!(
            s.compare_and_put("k", 1, 3),
            Err(StoreError::VersionConflict {
                expected: 1,
                actual: 2
            })
        );
    }

    #[test]
    fn cas_with_zero_creates_fresh_keys() {
        let mut s = ReplicatedStore::new();
        assert_eq!(s.compare_and_put("new", 0, 5), Ok(1));
        assert!(s.compare_and_put("new", 0, 6).is_err());
    }

    #[test]
    fn delete_and_not_found() {
        let mut s = ReplicatedStore::new();
        s.put("k", 1);
        assert_eq!(s.delete("k").unwrap().value, 1);
        assert_eq!(s.delete("k"), Err(StoreError::NotFound));
    }

    #[test]
    fn prefix_listing_is_sorted() {
        let mut s = ReplicatedStore::new();
        s.put("am/2", 0);
        s.put("am/1", 0);
        s.put("job/1", 0);
        assert_eq!(s.keys_with_prefix("am/"), vec!["am/1", "am/2"]);
    }

    #[test]
    fn crash_recovery_via_clone() {
        // The AM clones the store into "stable storage"; a new AM resumes
        // from the snapshot with identical contents.
        let mut live = ReplicatedStore::new();
        live.put("am/state", "Pending".to_string());
        let stable = live.clone();
        drop(live); // the AM crashes
        let recovered = stable;
        assert_eq!(recovered.get("am/state").unwrap().value, "Pending");
    }

    #[test]
    fn write_count_tracks_persistence_cost() {
        let mut s = ReplicatedStore::new();
        s.put("a", 1);
        s.put("a", 2);
        let _ = s.compare_and_put("a", 2, 3);
        assert_eq!(s.write_count(), 3);
    }
}
