//! Leases over virtual time — etcd-style liveness for the AM (§V-D).
//!
//! The application master is a single point of failure; the paper detects
//! its death through the distributed store. [`LeaseManager`] models the
//! etcd lease primitive: the AM holds a lease it must refresh within the
//! TTL; a scheduler-side watchdog that sees the lease expire starts a
//! replacement AM, which recovers the state machine from the store.

use std::collections::BTreeMap;

use elan_sim::{SimDuration, SimTime};

/// A lease identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeaseId(pub u64);

/// The state of one lease at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// Refreshed within the TTL.
    Alive {
        /// When it lapses without a refresh.
        expires_at: SimTime,
    },
    /// TTL elapsed without a refresh.
    Expired {
        /// When it lapsed.
        expired_at: SimTime,
    },
}

/// Manages leases on the simulation clock.
///
/// # Examples
///
/// ```
/// use elan_core::lease::{LeaseManager, LeaseState};
/// use elan_sim::{SimDuration, SimTime};
///
/// let mut leases = LeaseManager::new(SimDuration::from_secs(5));
/// let id = leases.grant(SimTime::ZERO);
/// leases.keep_alive(id, SimTime::from_secs(3)).unwrap();
/// assert!(matches!(
///     leases.state(id, SimTime::from_secs(7)),
///     Some(LeaseState::Alive { .. })
/// ));
/// assert!(matches!(
///     leases.state(id, SimTime::from_secs(9)),
///     Some(LeaseState::Expired { .. })
/// ));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseManager {
    ttl: SimDuration,
    next_id: u64,
    refreshed: BTreeMap<LeaseId, SimTime>,
}

impl LeaseManager {
    /// Creates a manager granting leases with the given TTL.
    ///
    /// # Panics
    ///
    /// Panics if the TTL is zero.
    pub fn new(ttl: SimDuration) -> Self {
        assert!(!ttl.is_zero(), "lease TTL must be positive");
        LeaseManager {
            ttl,
            next_id: 0,
            refreshed: BTreeMap::new(),
        }
    }

    /// The configured TTL.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Grants a fresh lease at `now`.
    pub fn grant(&mut self, now: SimTime) -> LeaseId {
        let id = LeaseId(self.next_id);
        self.next_id += 1;
        self.refreshed.insert(id, now);
        id
    }

    /// Refreshes a lease.
    ///
    /// # Errors
    ///
    /// Returns the expiry instant if the lease already lapsed (a holder
    /// must not act on an expired lease — another AM may have taken over)
    /// or an error for unknown leases.
    pub fn keep_alive(&mut self, id: LeaseId, now: SimTime) -> Result<(), LeaseError> {
        let last = *self.refreshed.get(&id).ok_or(LeaseError::Unknown(id))?;
        let expires = last + self.ttl;
        if now >= expires {
            return Err(LeaseError::Expired {
                id,
                expired_at: expires,
            });
        }
        self.refreshed.insert(id, now);
        Ok(())
    }

    /// The lease's state as of `now` (None for unknown leases).
    pub fn state(&self, id: LeaseId, now: SimTime) -> Option<LeaseState> {
        let last = *self.refreshed.get(&id)?;
        let expires_at = last + self.ttl;
        Some(if now < expires_at {
            LeaseState::Alive { expires_at }
        } else {
            LeaseState::Expired {
                expired_at: expires_at,
            }
        })
    }

    /// Revokes a lease (clean shutdown); returns true if it existed.
    pub fn revoke(&mut self, id: LeaseId) -> bool {
        self.refreshed.remove(&id).is_some()
    }
}

/// Errors from lease operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseError {
    /// The lease id was never granted (or was revoked).
    Unknown(LeaseId),
    /// The lease lapsed before the refresh.
    Expired {
        /// The lapsed lease.
        id: LeaseId,
        /// When it lapsed.
        expired_at: SimTime,
    },
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::Unknown(id) => write!(f, "unknown lease {id:?}"),
            LeaseError::Expired { id, expired_at } => {
                write!(f, "lease {id:?} expired at {expired_at}")
            }
        }
    }
}

impl std::error::Error for LeaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> LeaseManager {
        LeaseManager::new(SimDuration::from_secs(10))
    }

    #[test]
    fn lease_stays_alive_with_refreshes() {
        let mut m = mgr();
        let id = m.grant(SimTime::ZERO);
        for t in (5..60).step_by(5) {
            m.keep_alive(id, SimTime::from_secs(t)).unwrap();
        }
        assert!(matches!(
            m.state(id, SimTime::from_secs(60)),
            Some(LeaseState::Alive { .. })
        ));
    }

    #[test]
    fn missing_refresh_expires() {
        let mut m = mgr();
        let id = m.grant(SimTime::ZERO);
        let s = m.state(id, SimTime::from_secs(10)).unwrap();
        assert_eq!(
            s,
            LeaseState::Expired {
                expired_at: SimTime::from_secs(10)
            }
        );
    }

    #[test]
    fn refresh_after_expiry_is_rejected() {
        let mut m = mgr();
        let id = m.grant(SimTime::ZERO);
        let err = m.keep_alive(id, SimTime::from_secs(11)).unwrap_err();
        assert!(matches!(err, LeaseError::Expired { .. }));
    }

    #[test]
    fn revoked_leases_are_unknown() {
        let mut m = mgr();
        let id = m.grant(SimTime::ZERO);
        assert!(m.revoke(id));
        assert!(!m.revoke(id));
        assert_eq!(m.state(id, SimTime::ZERO), None);
        assert_eq!(
            m.keep_alive(id, SimTime::from_secs(1)),
            Err(LeaseError::Unknown(id))
        );
    }

    #[test]
    fn am_failover_scenario() {
        // The AM holds a lease; it crashes at t=12 (stops refreshing).
        // A watchdog polling every 5s notices at t=25 and starts a
        // replacement, which takes a new lease.
        let mut m = LeaseManager::new(SimDuration::from_secs(10));
        let am1 = m.grant(SimTime::ZERO);
        m.keep_alive(am1, SimTime::from_secs(5)).unwrap();
        m.keep_alive(am1, SimTime::from_secs(10)).unwrap();
        // crash: no refresh after t=10; expiry at t=20.
        let mut detected = None;
        for t in (15..40).step_by(5) {
            if matches!(
                m.state(am1, SimTime::from_secs(t)),
                Some(LeaseState::Expired { .. })
            ) {
                detected = Some(t);
                break;
            }
        }
        assert_eq!(detected, Some(20));
        let am2 = m.grant(SimTime::from_secs(20));
        assert_ne!(am1, am2);
        assert!(matches!(
            m.state(am2, SimTime::from_secs(25)),
            Some(LeaseState::Alive { .. })
        ));
    }
}
