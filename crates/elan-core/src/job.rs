//! The elastic-training experiment driver (§VI-B).
//!
//! Runs a full training job under a phase plan — each phase fixes a worker
//! count and a total batch size — charging per-epoch wall time from the
//! performance model and adjustment pauses from the chosen elasticity
//! system, and scoring final accuracy with the convergence model. This is
//! the machinery behind Figs. 18/19 and Table IV:
//!
//! - `512 (16)` — static training, the accuracy/time baseline,
//! - `512-2048 (Elastic)` — AdaBatch batch doubling with Elan growing the
//!   worker pool (16 → 32 → 64) per the hybrid scaling mechanism,
//! - `512-2048 (64)` — dynamic batch sizes on *fixed* 64 workers, showing
//!   that elastic algorithms need elastic resources.

use elan_sim::SimDuration;
use elan_topology::{BandwidthModel, GpuId, Topology};

use elan_models::convergence::{AccuracyCurve, AccuracyModel, ScalingRule};
use elan_models::{ModelSpec, PerfModel};

use crate::elasticity::{AdjustmentContext, AdjustmentCost, AdjustmentRequest, ElasticitySystem};

/// One phase of an elastic training plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticPhase {
    /// First epoch of the phase.
    pub start_epoch: u32,
    /// Workers during the phase.
    pub n_workers: u32,
    /// Total batch size during the phase.
    pub total_batch: u32,
}

/// A complete experiment configuration.
pub struct ElasticRunConfig<'a> {
    /// The model being trained.
    pub model: &'a ModelSpec,
    /// Performance model for throughput.
    pub perf: &'a PerfModel,
    /// Convergence model for accuracy.
    pub accuracy: &'a AccuracyModel,
    /// Learning-rate rule in effect for batch increases.
    pub rule: ScalingRule,
    /// The phase plan (first phase must start at epoch 0).
    pub phases: Vec<ElasticPhase>,
    /// Total epochs trained.
    pub total_epochs: u32,
    /// Cluster topology for replication planning.
    pub topology: &'a Topology,
    /// Link model for replication pricing.
    pub bandwidth: &'a BandwidthModel,
    /// The elasticity system charging adjustment costs.
    pub system: &'a dyn ElasticitySystem,
    /// Workers coordinate every this many iterations.
    pub coordination_interval: u32,
    /// Seed for the deterministic cost draws.
    pub seed: u64,
}

/// The outcome of one elastic training run.
#[derive(Debug, Clone)]
pub struct ElasticRunResult {
    /// Final top-1 accuracy.
    pub final_accuracy: f64,
    /// Wall time of each epoch (including adjustment pauses).
    pub epoch_times: Vec<SimDuration>,
    /// The epoch-wise accuracy curve.
    pub curve: AccuracyCurve,
    /// Costs of the adjustments performed, in phase order.
    pub adjustments: Vec<AdjustmentCost>,
}

impl ElasticRunResult {
    /// Total wall time of the run.
    pub fn total_time(&self) -> SimDuration {
        self.epoch_times.iter().copied().sum()
    }

    /// Wall time until the run first reaches `target` top-1 accuracy
    /// (`None` if it never does) — the Table IV metric.
    pub fn time_to_accuracy(&self, target: f64) -> Option<SimDuration> {
        let epochs = self.curve.epochs_to_accuracy(target)?;
        let whole = epochs.floor() as u32;
        let mut total = SimDuration::ZERO;
        for e in 0..whole.min(self.epoch_times.len() as u32) {
            total += self.epoch_times[e as usize];
        }
        let frac = epochs - whole as f64;
        if frac > 0.0 && (whole as usize) < self.epoch_times.len() {
            total += self.epoch_times[whole as usize].mul_f64(frac);
        }
        Some(total)
    }

    /// Accuracy-versus-time points for Fig. 19 (one per epoch).
    pub fn accuracy_vs_time(&self) -> Vec<(SimDuration, f64)> {
        let mut t = SimDuration::ZERO;
        let mut out = Vec::with_capacity(self.epoch_times.len());
        for (e, &dt) in self.epoch_times.iter().enumerate() {
            t += dt;
            out.push((t, self.curve.accuracy_at((e + 1) as f64)));
        }
        out
    }
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics if the phase plan is empty, does not start at epoch 0, or is not
/// strictly increasing in start epochs.
pub fn run_elastic_training(cfg: &ElasticRunConfig<'_>) -> ElasticRunResult {
    assert!(!cfg.phases.is_empty(), "need at least one phase");
    assert_eq!(cfg.phases[0].start_epoch, 0, "phase plan must start at 0");
    for w in cfg.phases.windows(2) {
        assert!(
            w[0].start_epoch < w[1].start_epoch,
            "phase starts must increase"
        );
    }

    // Final accuracy: governed by the largest batch used under the rule.
    let max_tbs = cfg.phases.iter().map(|p| p.total_batch).max().unwrap_or(1);
    let is_dynamic = cfg.phases.iter().any(|p| p.total_batch != max_tbs);
    let mut final_acc = cfg.accuracy.final_accuracy(max_tbs, cfg.rule);
    if is_dynamic {
        final_acc = (final_acc - 0.0002).max(0.0);
    }
    let curve = AccuracyCurve::resnet50_like(final_acc, cfg.total_epochs);

    // Per-epoch durations from throughput, plus pauses at phase changes.
    let samples_per_epoch = cfg.model.dataset_size as f64;
    let mut epoch_times = Vec::with_capacity(cfg.total_epochs as usize);
    let mut adjustments = Vec::new();
    for e in 0..cfg.total_epochs {
        let phase_idx = cfg
            .phases
            .iter()
            .rposition(|p| p.start_epoch <= e)
            .unwrap_or(0);
        let phase = cfg.phases[phase_idx];
        let thr = cfg
            .perf
            .throughput(cfg.model, phase.n_workers, phase.total_batch);
        let mut dt = SimDuration::from_secs_f64(samples_per_epoch / thr);
        // A phase transition at this epoch incurs the adjustment pause.
        if phase.start_epoch == e && phase_idx > 0 {
            let prev = cfg.phases[phase_idx - 1];
            if prev.n_workers != phase.n_workers {
                let request = AdjustmentRequest::new(
                    (0..prev.n_workers).map(GpuId).collect(),
                    (0..phase.n_workers).map(GpuId).collect(),
                )
                .expect("contiguous placements differ");
                let ctx = AdjustmentContext {
                    topology: cfg.topology,
                    bandwidth: cfg.bandwidth,
                    perf: cfg.perf,
                    model: cfg.model,
                    total_batch: prev.total_batch,
                    coordination_interval: cfg.coordination_interval,
                    seed: cfg.seed.wrapping_add(e as u64),
                };
                let cost = cfg.system.adjust(&request, &ctx);
                dt += cost.pause;
                adjustments.push(cost);
            }
        }
        // Elasticity-maintenance overhead applies throughout.
        let overhead = cfg.system.runtime_overhead(
            &AdjustmentContext {
                topology: cfg.topology,
                bandwidth: cfg.bandwidth,
                perf: cfg.perf,
                model: cfg.model,
                total_batch: phase.total_batch,
                coordination_interval: cfg.coordination_interval,
                seed: cfg.seed,
            },
            phase.n_workers,
        );
        dt = dt.mul_f64(1.0 + overhead);
        epoch_times.push(dt);
    }

    ElasticRunResult {
        final_accuracy: final_acc,
        epoch_times,
        curve,
        adjustments,
    }
}

/// The three §VI-B configurations for ResNet-50 on ImageNet.
pub mod resnet50_configs {
    use super::ElasticPhase;

    /// `512 (16)`: static 512 batch on 16 workers.
    pub fn static_512_16() -> Vec<ElasticPhase> {
        vec![ElasticPhase {
            start_epoch: 0,
            n_workers: 16,
            total_batch: 512,
        }]
    }

    /// `512-2048 (Elastic)`: AdaBatch doubling with elastic workers —
    /// exactly what Algorithm 1 produces on the calibrated model.
    pub fn elastic_512_2048() -> Vec<ElasticPhase> {
        vec![
            ElasticPhase {
                start_epoch: 0,
                n_workers: 16,
                total_batch: 512,
            },
            ElasticPhase {
                start_epoch: 30,
                n_workers: 32,
                total_batch: 1024,
            },
            ElasticPhase {
                start_epoch: 60,
                n_workers: 64,
                total_batch: 2048,
            },
        ]
    }

    /// `512-2048 (64)`: dynamic batch sizes on fixed 64 workers.
    pub fn fixed64_512_2048() -> Vec<ElasticPhase> {
        vec![
            ElasticPhase {
                start_epoch: 0,
                n_workers: 64,
                total_batch: 512,
            },
            ElasticPhase {
                start_epoch: 30,
                n_workers: 64,
                total_batch: 1024,
            },
            ElasticPhase {
                start_epoch: 60,
                n_workers: 64,
                total_batch: 2048,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjustment::ElanSystem;
    use elan_models::zoo;
    use elan_topology::ClusterSpec;

    struct Fixtures {
        topo: Topology,
        bw: BandwidthModel,
        perf: PerfModel,
        model: ModelSpec,
        acc: AccuracyModel,
    }

    fn fixtures() -> Fixtures {
        Fixtures {
            topo: ClusterSpec::paper_testbed().build(),
            bw: BandwidthModel::paper_default(),
            perf: PerfModel::paper_default(),
            model: zoo::resnet50(),
            acc: AccuracyModel::resnet50_imagenet(),
        }
    }

    fn run(
        f: &Fixtures,
        sys: &dyn ElasticitySystem,
        phases: Vec<ElasticPhase>,
    ) -> ElasticRunResult {
        run_elastic_training(&ElasticRunConfig {
            model: &f.model,
            perf: &f.perf,
            accuracy: &f.acc,
            rule: ScalingRule::ProgressiveLinear { ramp_iters: 100 },
            phases,
            total_epochs: 90,
            topology: &f.topo,
            bandwidth: &f.bw,
            system: sys,
            coordination_interval: 10,
            seed: 3,
        })
    }

    #[test]
    fn elastic_beats_static_on_time_to_solution() {
        // Table IV: the elastic run reaches every accuracy target faster.
        let f = fixtures();
        let sys = ElanSystem::new();
        let static_run = run(&f, &sys, resnet50_configs::static_512_16());
        let elastic_run = run(&f, &sys, resnet50_configs::elastic_512_2048());
        for target in [0.745, 0.750, 0.755] {
            let ts = static_run.time_to_accuracy(target).unwrap();
            let te = elastic_run.time_to_accuracy(target).unwrap();
            assert!(te < ts, "target {target}: {te} !< {ts}");
            let speedup = ts.as_secs_f64() / te.as_secs_f64();
            assert!(speedup > 1.1, "speedup only {speedup:.2}");
        }
    }

    #[test]
    fn accuracy_matches_static_baseline() {
        // Fig. 18: 75.89% static vs 75.87% elastic.
        let f = fixtures();
        let sys = ElanSystem::new();
        let s = run(&f, &sys, resnet50_configs::static_512_16());
        let e = run(&f, &sys, resnet50_configs::elastic_512_2048());
        assert!((s.final_accuracy - 0.7589).abs() < 1e-9);
        assert!((e.final_accuracy - 0.7587).abs() < 1e-4);
    }

    #[test]
    fn fixed_workers_with_dynamic_batches_barely_gain() {
        // §VI-B: dynamic batch sizes on fixed 64 workers underutilize
        // resources at small batches; elastic resources are necessary.
        let f = fixtures();
        let sys = ElanSystem::new();
        let fixed = run(&f, &sys, resnet50_configs::fixed64_512_2048());
        let elastic = run(&f, &sys, resnet50_configs::elastic_512_2048());
        let t_fixed = fixed.time_to_accuracy(0.75).unwrap();
        let t_elastic = elastic.time_to_accuracy(0.75).unwrap();
        // The elastic schedule reaches the target in a comparable time
        // while using FAR fewer GPU-hours in the first 60 epochs.
        let gpu_seconds = |r: &ElasticRunResult, phases: &[ElasticPhase]| -> f64 {
            r.epoch_times
                .iter()
                .enumerate()
                .map(|(e, dt)| {
                    let n = phases
                        .iter()
                        .rev()
                        .find(|p| p.start_epoch as usize <= e)
                        .unwrap()
                        .n_workers;
                    dt.as_secs_f64() * n as f64
                })
                .sum()
        };
        let cost_fixed = gpu_seconds(&fixed, &resnet50_configs::fixed64_512_2048());
        let cost_elastic = gpu_seconds(&elastic, &resnet50_configs::elastic_512_2048());
        assert!(
            cost_elastic < cost_fixed * 0.75,
            "{cost_elastic} vs {cost_fixed}"
        );
        // And the wall-clock gap is small relative to the resource gap.
        assert!(t_elastic.as_secs_f64() < t_fixed.as_secs_f64() * 1.35);
    }

    #[test]
    fn adjustments_are_charged_once_per_transition() {
        let f = fixtures();
        let sys = ElanSystem::new();
        let e = run(&f, &sys, resnet50_configs::elastic_512_2048());
        assert_eq!(e.adjustments.len(), 2);
        for a in &e.adjustments {
            assert!(a.pause > SimDuration::ZERO);
        }
    }

    #[test]
    fn accuracy_vs_time_is_monotone() {
        let f = fixtures();
        let sys = ElanSystem::new();
        let e = run(&f, &sys, resnet50_configs::elastic_512_2048());
        let pts = e.accuracy_vs_time();
        assert_eq!(pts.len(), 90);
        for w in pts.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn speedup_grows_with_target_accuracy() {
        // Table IV note: elastic training tends to give a higher speedup
        // for a higher target accuracy.
        let f = fixtures();
        let sys = ElanSystem::new();
        let s = run(&f, &sys, resnet50_configs::static_512_16());
        let e = run(&f, &sys, resnet50_configs::elastic_512_2048());
        let speedup = |t: f64| {
            s.time_to_accuracy(t).unwrap().as_secs_f64()
                / e.time_to_accuracy(t).unwrap().as_secs_f64()
        };
        assert!(speedup(0.755) > speedup(0.745));
    }

    #[test]
    #[should_panic(expected = "start at 0")]
    fn phase_plan_must_start_at_zero() {
        let f = fixtures();
        let sys = ElanSystem::new();
        let _ = run(
            &f,
            &sys,
            vec![ElasticPhase {
                start_epoch: 5,
                n_workers: 4,
                total_batch: 128,
            }],
        );
    }
}
