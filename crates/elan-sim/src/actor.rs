//! Message-passing actor framework over the event queue.
//!
//! The Elan coordination protocol is naturally expressed as actors (an
//! application master and workers) exchanging timestamped messages. [`World`]
//! hosts a set of [`Actor`]s, delivers messages in deterministic order, and
//! lets actors schedule timers and sends through [`Ctx`].

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::Scheduler;
use crate::rng::SeedStream;
use crate::time::{SimDuration, SimTime};

/// Identifies an actor within a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl std::fmt::Display for ActorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// A simulated process that reacts to messages and timers.
///
/// Implementations receive a [`Ctx`] giving access to the clock, an RNG
/// seeded deterministically per actor, and outbound scheduling.
pub trait Actor<M> {
    /// Handles a message delivered to this actor at the current sim time.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ActorId, msg: M);

    /// Called once when the actor is spawned, before any messages arrive.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }
}

#[derive(Debug)]
enum Event<M> {
    Deliver { from: ActorId, to: ActorId, msg: M },
}

/// Side-channel handed to actors for interacting with the world.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    id: ActorId,
    now: SimTime,
    rng: &'a mut StdRng,
    outbox: &'a mut Vec<(SimDuration, ActorId, ActorId, M)>,
    stopped: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// The id of the actor this context belongs to.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-actor random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `msg` to `to`, arriving after `delay`.
    pub fn send_after(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        self.outbox.push((delay, self.id, to, msg));
    }

    /// Sends `msg` to `to`, arriving immediately (same timestamp, after all
    /// currently queued same-time events).
    pub fn send(&mut self, to: ActorId, msg: M) {
        self.send_after(SimDuration::ZERO, to, msg);
    }

    /// Schedules `msg` back to this actor after `delay` — a timer.
    pub fn set_timer(&mut self, delay: SimDuration, msg: M) {
        self.send_after(delay, self.id, msg);
    }

    /// Requests the whole simulation to stop after this handler returns.
    pub fn stop_world(&mut self) {
        *self.stopped = true;
    }
}

/// Hosts actors and runs the simulation to completion.
///
/// # Examples
///
/// ```
/// use elan_sim::{Actor, ActorId, Ctx, SimDuration, World};
///
/// struct Ping { peer: Option<ActorId>, left: u32 }
///
/// impl Actor<u32> for Ping {
///     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
///         if let Some(peer) = self.peer {
///             ctx.send_after(SimDuration::from_millis(1), peer, 0);
///         }
///     }
///     fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: ActorId, n: u32) {
///         self.left = self.left.saturating_sub(1);
///         if self.left == 0 {
///             ctx.stop_world();
///         } else {
///             ctx.send_after(SimDuration::from_millis(1), from, n + 1);
///         }
///     }
/// }
///
/// let mut world: World<u32> = World::new(42);
/// let a = world.reserve_id();
/// let b = world.reserve_id();
/// world.spawn_with_id(a, Ping { peer: Some(b), left: 4 });
/// world.spawn_with_id(b, Ping { peer: None, left: 4 });
/// let end = world.run();
/// assert_eq!(end.as_nanos() % 1_000_000, 0);
/// ```
pub struct World<M> {
    scheduler: Scheduler<Event<M>>,
    actors: HashMap<ActorId, Box<dyn Actor<M>>>,
    rngs: HashMap<ActorId, StdRng>,
    seeds: SeedStream,
    next_id: u32,
    started: Vec<ActorId>,
    stopped: bool,
    delivered: u64,
}

impl<M> std::fmt::Debug for World<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("actors", &self.actors.len())
            .field("pending_events", &self.scheduler.len())
            .field("now", &self.scheduler.now())
            .finish()
    }
}

impl<M> World<M> {
    /// Creates an empty world whose randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        World {
            scheduler: Scheduler::new(),
            actors: HashMap::new(),
            rngs: HashMap::new(),
            seeds: SeedStream::new(seed),
            next_id: 0,
            started: Vec::new(),
            stopped: false,
            delivered: 0,
        }
    }

    /// Allocates an actor id without spawning, for wiring mutually-referencing
    /// actors.
    pub fn reserve_id(&mut self) -> ActorId {
        let id = ActorId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Spawns `actor` under a fresh id and returns the id.
    pub fn spawn(&mut self, actor: impl Actor<M> + 'static) -> ActorId {
        let id = self.reserve_id();
        self.spawn_with_id(id, actor);
        id
    }

    /// Spawns `actor` under a previously [reserved](World::reserve_id) id.
    ///
    /// # Panics
    ///
    /// Panics if the id is already occupied.
    pub fn spawn_with_id(&mut self, id: ActorId, actor: impl Actor<M> + 'static) {
        assert!(
            !self.actors.contains_key(&id),
            "actor id {id} already spawned"
        );
        let rng = StdRng::seed_from_u64(self.seeds.derive(&format!("actor-{}", id.0)));
        self.actors.insert(id, Box::new(actor));
        self.rngs.insert(id, rng);
        self.started.push(id);
    }

    /// Removes an actor; pending messages to it are dropped on delivery.
    pub fn despawn(&mut self, id: ActorId) {
        self.actors.remove(&id);
        self.rngs.remove(&id);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Injects a message from the outside world (e.g. a scheduler request).
    pub fn inject(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        // External messages appear to come from a reserved "environment" id.
        self.scheduler.schedule_after(
            delay,
            Event::Deliver {
                from: ActorId(u32::MAX),
                to,
                msg,
            },
        );
    }

    /// The sender id used for [`World::inject`]ed messages.
    pub const ENVIRONMENT: ActorId = ActorId(u32::MAX);

    fn flush_starts(&mut self) {
        while let Some(id) = self.started.pop() {
            self.with_ctx(id, |actor, ctx| actor.on_start(ctx));
        }
    }

    fn with_ctx(&mut self, id: ActorId, f: impl FnOnce(&mut Box<dyn Actor<M>>, &mut Ctx<'_, M>)) {
        let Some(mut actor) = self.actors.remove(&id) else {
            return; // actor despawned; drop the message
        };
        let mut rng = self.rngs.remove(&id).expect("rng exists for live actor");
        let mut outbox = Vec::new();
        let mut stopped = false;
        {
            let mut ctx = Ctx {
                id,
                now: self.scheduler.now(),
                rng: &mut rng,
                outbox: &mut outbox,
                stopped: &mut stopped,
            };
            f(&mut actor, &mut ctx);
        }
        // Only re-insert if the actor did not despawn itself via World-level
        // operations (not expressible from Ctx, so always re-insert).
        self.actors.insert(id, actor);
        self.rngs.insert(id, rng);
        for (delay, from, to, msg) in outbox {
            self.scheduler
                .schedule_after(delay, Event::Deliver { from, to, msg });
        }
        if stopped {
            self.stopped = true;
        }
    }

    /// Runs one event; returns false when the queue is exhausted or stopped.
    pub fn step(&mut self) -> bool {
        self.flush_starts();
        if self.stopped {
            return false;
        }
        let Some((_, Event::Deliver { from, to, msg })) = self.scheduler.pop() else {
            return false;
        };
        self.delivered += 1;
        self.with_ctx(to, |actor, ctx| actor.on_message(ctx, from, msg));
        self.flush_starts();
        !self.stopped
    }

    /// Runs until no events remain or an actor stops the world; returns the
    /// final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now()
    }

    /// Runs until the given deadline (events after it stay queued).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.flush_starts();
        while !self.stopped {
            match self.scheduler.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.scheduler.peek_time().is_none_or(|t| t > deadline) && self.now() < deadline {
            // Advance the clock to the deadline if nothing is left before it.
            self.scheduler.advance_to(deadline);
        }
        self.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Tick,
        Echo(u64),
    }

    struct Counter {
        ticks: u64,
        limit: u64,
    }

    impl Actor<Msg> for Counter {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.set_timer(SimDuration::from_secs(1), Msg::Tick);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
            if msg == Msg::Tick {
                self.ticks += 1;
                if self.ticks < self.limit {
                    ctx.set_timer(SimDuration::from_secs(1), Msg::Tick);
                } else {
                    ctx.stop_world();
                }
            }
        }
    }

    #[test]
    fn timers_fire_periodically() {
        let mut world = World::new(1);
        world.spawn(Counter { ticks: 0, limit: 5 });
        let end = world.run();
        assert_eq!(end, SimTime::from_secs(5));
        assert_eq!(world.delivered(), 5);
    }

    struct EchoServer;
    impl Actor<Msg> for EchoServer {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
            if let Msg::Echo(n) = msg {
                if from != World::<Msg>::ENVIRONMENT {
                    return;
                }
                let _ = n;
                ctx.stop_world();
            }
        }
    }

    #[test]
    fn injection_comes_from_environment() {
        let mut world = World::new(7);
        let id = world.spawn(EchoServer);
        world.inject(SimDuration::from_millis(3), id, Msg::Echo(9));
        let end = world.run();
        assert_eq!(end, SimTime::ZERO + SimDuration::from_millis(3));
    }

    #[test]
    fn messages_to_despawned_actors_are_dropped() {
        let mut world = World::new(3);
        let id = world.spawn(EchoServer);
        world.inject(SimDuration::from_millis(1), id, Msg::Echo(1));
        world.despawn(id);
        world.run();
        assert_eq!(world.delivered(), 1); // popped but handler skipped
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut world = World::new(5);
        world.spawn(Counter {
            ticks: 0,
            limit: 100,
        });
        let t = world.run_until(SimTime::from_secs(3));
        assert_eq!(t, SimTime::from_secs(3));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut world = World::new(11);
            world.spawn(Counter {
                ticks: 0,
                limit: 10,
            });
            world.run().as_nanos()
        };
        assert_eq!(run(), run());
    }
}
