//! Virtual time for the discrete-event simulation.
//!
//! All simulated clocks use integer nanoseconds so that arithmetic is exact
//! and ordering is total. [`SimTime`] is an absolute instant (nanoseconds
//! since simulation start) and [`SimDuration`] is a span between instants.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since start.
///
/// # Examples
///
/// ```
/// use elan_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_secs_f64(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use elan_sim::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// assert_eq!(d * 2, SimDuration::from_secs(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (lossy for huge values).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The span length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span length in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the span has zero length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Component-wise maximum of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Component-wise minimum of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Subtraction clamping at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a float factor, rounding to nanoseconds.
    ///
    /// Negative and non-finite factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500_000_000);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_secs(1)
        );
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_inversion() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn min_max_ordering() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
