//! Time-ordered event queue.
//!
//! [`Scheduler`] is the heart of the discrete-event simulation: events are
//! popped in non-decreasing time order, and events scheduled for the same
//! instant are delivered in the order they were scheduled (stable FIFO
//! tie-break), which keeps simulations deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A time-ordered event queue driving a discrete-event simulation.
///
/// The queue tracks the current virtual time: popping an event advances the
/// clock to that event's timestamp. Scheduling in the past is rejected.
///
/// # Examples
///
/// ```
/// use elan_sim::{Scheduler, SimDuration};
///
/// let mut sched = Scheduler::new();
/// sched.schedule_after(SimDuration::from_secs(1), "a");
/// sched.schedule_after(SimDuration::from_secs(1), "b");
/// // Same-time events pop in insertion order.
/// assert_eq!(sched.pop().unwrap().1, "a");
/// assert_eq!(sched.pop().unwrap().1, "b");
/// assert!(sched.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    /// The current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time — discrete-event
    /// simulations must never schedule into the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} before current time {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` after a relative delay from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the next event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Advances the clock to `at` without delivering events.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time or before the next pending
    /// event (which would reorder history).
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot rewind the clock");
        if let Some(next) = self.peek_time() {
            assert!(
                at <= next,
                "advance_to({at}) would skip a pending event at {next}"
            );
        }
        self.now = at;
    }

    /// Drops all pending events, keeping the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(3), 3);
        s.schedule_at(SimTime::from_secs(1), 1);
        s.schedule_at(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_fifo() {
        let mut s = Scheduler::new();
        for i in 0..100 {
            s.schedule_at(SimTime::from_secs(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut s = Scheduler::new();
        s.schedule_after(SimDuration::from_secs(2), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn rejects_past_events() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(2), ());
        s.pop();
        s.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.advance_to(SimTime::from_secs(10));
        assert_eq!(s.now(), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "skip a pending event")]
    fn advance_past_pending_event_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::from_secs(1), ());
        s.advance_to(SimTime::from_secs(2));
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut s = Scheduler::new();
        s.schedule_after(SimDuration::from_secs(1), "first");
        s.pop();
        s.schedule_after(SimDuration::from_secs(1), "second");
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(2));
    }

    #[test]
    fn clear_keeps_clock() {
        let mut s = Scheduler::new();
        s.schedule_after(SimDuration::from_secs(1), ());
        s.pop();
        s.schedule_after(SimDuration::from_secs(1), ());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.now(), SimTime::from_secs(1));
    }
}
