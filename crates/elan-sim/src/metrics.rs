//! Measurement collection: time series, summary statistics, histograms.
//!
//! The benchmark harness reproduces the paper's figures from data recorded
//! through these types. Error bars in the paper are standard deviations, so
//! [`Summary`] exposes mean/std directly.

use std::fmt;

use crate::time::SimTime;

/// A time-stamped series of scalar measurements (one figure line).
///
/// # Examples
///
/// ```
/// use elan_sim::{Series, SimTime};
///
/// let mut s = Series::new("gpu-utilization");
/// s.record(SimTime::from_secs(0), 0.4);
/// s.record(SimTime::from_secs(60), 0.9);
/// assert_eq!(s.len(), 2);
/// assert!((s.mean_value() - 0.65).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Series {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Creates an empty, named series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name (figure legend entry).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a measurement.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last recorded timestamp — series are
    /// recorded in simulation order.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "series {} recorded out of order", self.name);
        }
        self.points.push((at, value));
    }

    /// The recorded points in time order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the recorded values (0 if empty).
    pub fn mean_value(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Time-weighted average over the recorded span, treating each value as
    /// holding until the next timestamp (0 if fewer than 2 points).
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map_or(0.0, |&(_, v)| v);
        }
        let mut acc = 0.0;
        let mut span = 0.0;
        for pair in self.points.windows(2) {
            let (t0, v) = pair[0];
            let (t1, _) = pair[1];
            let dt = t1.duration_since(t0).as_secs_f64();
            acc += v * dt;
            span += dt;
        }
        if span == 0.0 {
            self.mean_value()
        } else {
            acc / span
        }
    }

    /// Downsamples to at most `n` points by uniform stride, for printing.
    pub fn downsample(&self, n: usize) -> Series {
        if n == 0 || self.points.len() <= n {
            return self.clone();
        }
        let stride = self.points.len().div_ceil(n);
        Series {
            name: self.name.clone(),
            points: self.points.iter().step_by(stride).copied().collect(),
        }
    }
}

/// Summary statistics over a set of repeated measurements.
///
/// The paper reports mean with standard-deviation error bars; this type
/// computes both, plus min/max and percentiles for the scheduling metrics.
///
/// # Examples
///
/// ```
/// use elan_sim::Summary;
///
/// let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    values: Vec<f64>,
    mean: f64,
    std: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Computes statistics over `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite numbers.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of no values");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "summary of non-finite values"
        );
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Summary {
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            values: sorted,
            mean,
            std: var.sqrt(),
        }
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (the paper's error bars).
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Linear-interpolated percentile, `p` in [0, 100].
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside [0, 100].
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.values.len() == 1 {
            return self.values[0];
        }
        let rank = p / 100.0 * (self.values.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.values[lo] * (1.0 - frac) + self.values[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (min {:.4}, max {:.4}, n={})",
            self.mean,
            self.std,
            self.min,
            self.max,
            self.values.len()
        )
    }
}

/// A fixed-bucket linear histogram for latency-style distributions.
///
/// # Examples
///
/// ```
/// use elan_sim::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.observe(0.5);
/// h.observe(9.5);
/// h.observe(42.0); // clamps into the last bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bucket_counts()[9], 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram of `buckets` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range empty: [{lo}, {hi})");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records `value`, clamping out-of-range values into the edge buckets.
    pub fn observe(&mut self, value: f64) {
        let idx = if value < self.lo {
            0
        } else if value >= self.hi {
            self.buckets.len() - 1
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            (((value - self.lo) / width) as usize).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Per-bucket observation counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observed values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_statistics() {
        let mut s = Series::new("x");
        s.record(SimTime::from_secs(0), 1.0);
        s.record(SimTime::from_secs(10), 3.0);
        s.record(SimTime::from_secs(20), 3.0);
        assert!((s.mean_value() - 7.0 / 3.0).abs() < 1e-12);
        // value 1.0 holds 10s, 3.0 holds 10s -> weighted mean 2.0
        assert!((s.time_weighted_mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn series_rejects_unordered() {
        let mut s = Series::new("x");
        s.record(SimTime::from_secs(5), 1.0);
        s.record(SimTime::from_secs(4), 1.0);
    }

    #[test]
    fn series_downsample_keeps_name_and_bounds() {
        let mut s = Series::new("big");
        for i in 0..1000 {
            s.record(SimTime::from_secs(i), i as f64);
        }
        let d = s.downsample(10);
        assert!(d.len() <= 10);
        assert_eq!(d.name(), "big");
        assert_eq!(d.points()[0].1, 0.0);
    }

    #[test]
    fn summary_mean_std() {
        let s = Summary::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std(), 2.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn summary_percentiles_interpolate() {
        let s = Summary::from_values(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert_eq!(s.median(), 25.0);
    }

    #[test]
    #[should_panic(expected = "summary of no values")]
    fn summary_rejects_empty() {
        let _ = Summary::from_values(&[]);
    }

    #[test]
    fn histogram_buckets_and_clamping() {
        let mut h = Histogram::new(0.0, 100.0, 4);
        for v in [5.0, 30.0, 55.0, 80.0, -3.0, 200.0] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 1, 1, 2]);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_mean_tracks_raw_values() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.observe(2.0);
        h.observe(4.0);
        assert_eq!(h.mean(), 3.0);
    }
}
