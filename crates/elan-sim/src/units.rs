//! Byte and bandwidth quantities.
//!
//! Transfer-time math appears throughout the replication planner and the
//! baselines; typed quantities keep GB vs GiB vs Gb confusions out of the
//! code. [`Bytes`] is an exact integer count; [`Bandwidth`] is bytes per
//! second stored as `f64` (bandwidths are modelling inputs, not counters).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::time::SimDuration;

/// An exact count of bytes.
///
/// # Examples
///
/// ```
/// use elan_sim::Bytes;
///
/// let params = Bytes::from_mib(98); // ~ResNet-50 fp32 parameters
/// assert_eq!(params.as_u64(), 98 * 1024 * 1024);
/// assert_eq!(format!("{params}"), "98.00 MiB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    pub const fn new(n: u64) -> Self {
        Bytes(n)
    }

    /// `n` kibibytes.
    pub const fn from_kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// `n` mebibytes.
    pub const fn from_mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// `n` gibibytes.
    pub const fn from_gib(n: u64) -> Self {
        Bytes(n * 1024 * 1024 * 1024)
    }

    /// The raw count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The count as a float, for rate math.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Scales by a float factor, rounding; negative factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> Bytes {
        if !factor.is_finite() || factor <= 0.0 {
            return Bytes::ZERO;
        }
        Bytes((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.checked_add(rhs.0).expect("Bytes overflow"))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.checked_sub(rhs.0).expect("Bytes underflow"))
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0.checked_mul(rhs).expect("Bytes overflow"))
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0 as f64;
        const KIB: f64 = 1024.0;
        const MIB: f64 = 1024.0 * 1024.0;
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        if n < KIB {
            write!(f, "{} B", self.0)
        } else if n < MIB {
            write!(f, "{:.2} KiB", n / KIB)
        } else if n < GIB {
            write!(f, "{:.2} MiB", n / MIB)
        } else {
            write!(f, "{:.2} GiB", n / GIB)
        }
    }
}

/// A transfer rate in bytes per second.
///
/// # Examples
///
/// ```
/// use elan_sim::{Bandwidth, Bytes};
///
/// let ib = Bandwidth::from_gbps(56.0); // 56 Gb/s InfiniBand
/// let t = ib.transfer_time(Bytes::from_gib(1));
/// assert!((t.as_secs_f64() - 0.1534).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a rate from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is negative or not finite.
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec >= 0.0,
            "bandwidth must be finite and non-negative, got {bytes_per_sec}"
        );
        Bandwidth(bytes_per_sec)
    }

    /// Creates a rate from gigabytes (10^9 bytes) per second.
    pub fn from_gbytes_per_sec(gb_per_sec: f64) -> Self {
        Bandwidth::from_bytes_per_sec(gb_per_sec * 1e9)
    }

    /// Creates a rate from gigabits per second (network convention).
    pub fn from_gbps(gbits_per_sec: f64) -> Self {
        Bandwidth::from_bytes_per_sec(gbits_per_sec * 1e9 / 8.0)
    }

    /// Creates a rate from megabytes (10^6 bytes) per second.
    pub fn from_mbytes_per_sec(mb_per_sec: f64) -> Self {
        Bandwidth::from_bytes_per_sec(mb_per_sec * 1e6)
    }

    /// Bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Gigabytes (10^9 bytes) per second — the unit used by Fig. 8.
    pub fn as_gbytes_per_sec(self) -> f64 {
        self.0 / 1e9
    }

    /// Time to move `bytes` at this rate. Zero bandwidth yields an
    /// effectively infinite (u64::MAX nanosecond) duration.
    pub fn transfer_time(self, bytes: Bytes) -> SimDuration {
        if self.0 <= 0.0 {
            return SimDuration::from_nanos(u64::MAX);
        }
        SimDuration::from_secs_f64(bytes.as_f64() / self.0)
    }

    /// Scales the rate by a factor (e.g. efficiency), clamping at zero.
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec((self.0 * factor).max(0.0))
    }

    /// The smaller of two rates — the bottleneck.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.as_gbytes_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors_scale() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_mib(1), Bytes::from_kib(1024));
        assert_eq!(Bytes::from_gib(1), Bytes::from_mib(1024));
    }

    #[test]
    fn byte_arithmetic() {
        let a = Bytes::new(100);
        let b = Bytes::new(28);
        assert_eq!(a + b, Bytes::new(128));
        assert_eq!(a - b, Bytes::new(72));
        assert_eq!(a * 2, Bytes::new(200));
        assert_eq!(a / 4, Bytes::new(25));
        let total: Bytes = vec![a, b].into_iter().sum();
        assert_eq!(total, Bytes::new(128));
    }

    #[test]
    fn transfer_time_is_linear() {
        let bw = Bandwidth::from_gbytes_per_sec(10.0);
        let t1 = bw.transfer_time(Bytes::from_gib(1));
        let t2 = bw.transfer_time(Bytes::from_gib(2));
        // Rounding to whole nanoseconds may introduce ±1ns slack.
        assert!(t2.as_nanos().abs_diff(t1.as_nanos() * 2) <= 1);
    }

    #[test]
    fn zero_bandwidth_is_infinite() {
        let bw = Bandwidth::from_bytes_per_sec(0.0);
        assert_eq!(
            bw.transfer_time(Bytes::new(1)),
            SimDuration::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn gbps_is_bits() {
        // 8 Gb/s == 1 GB/s
        let bw = Bandwidth::from_gbps(8.0);
        assert!((bw.as_gbytes_per_sec() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bytes::new(512).to_string(), "512 B");
        assert_eq!(Bytes::from_kib(2).to_string(), "2.00 KiB");
        assert_eq!(
            Bandwidth::from_gbytes_per_sec(12.5).to_string(),
            "12.50 GB/s"
        );
    }

    #[test]
    fn mul_f64_clamps() {
        assert_eq!(Bytes::new(100).mul_f64(0.5), Bytes::new(50));
        assert_eq!(Bytes::new(100).mul_f64(-1.0), Bytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be finite")]
    fn negative_bandwidth_panics() {
        let _ = Bandwidth::from_bytes_per_sec(-1.0);
    }
}
