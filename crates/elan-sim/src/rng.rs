//! Deterministic seed derivation.
//!
//! Experiments need many independent random streams (per actor, per job, per
//! repetition) that are all reproducible from a single root seed.
//! [`SeedStream`] derives child seeds by hashing a label into the root seed
//! with a SplitMix64-style mixer, so adding a new consumer never perturbs
//! existing streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, label-addressed child seeds from one root seed.
///
/// # Examples
///
/// ```
/// use elan_sim::SeedStream;
///
/// let stream = SeedStream::new(42);
/// let a = stream.derive("worker-0");
/// let b = stream.derive("worker-1");
/// assert_ne!(a, b);
/// // Same label, same seed — fully reproducible.
/// assert_eq!(a, SeedStream::new(42).derive("worker-0"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    root: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `seed`.
    pub const fn new(seed: u64) -> Self {
        SeedStream { root: seed }
    }

    /// The root seed.
    pub const fn root(&self) -> u64 {
        self.root
    }

    /// Derives the child seed for `label`.
    pub fn derive(&self, label: &str) -> u64 {
        let mut h = self.root ^ 0x9e37_79b9_7f4a_7c15;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = splitmix64(h);
        }
        splitmix64(h)
    }

    /// Derives a child seed for a label plus numeric index, a common pattern
    /// for per-instance streams.
    pub fn derive_indexed(&self, label: &str, index: u64) -> u64 {
        splitmix64(self.derive(label) ^ splitmix64(index ^ 0xa076_1d64_78bd_642f))
    }

    /// Convenience: an [`StdRng`] seeded for `label`.
    pub fn rng(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.derive(label))
    }

    /// Convenience: an [`StdRng`] seeded for `label` and `index`.
    pub fn rng_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.derive_indexed(label, index))
    }

    /// A sub-stream rooted at this stream's derivation of `label`, for
    /// hierarchical seeding (e.g. per-job, then per-worker).
    pub fn substream(&self, label: &str) -> SeedStream {
        SeedStream::new(self.derive(label))
    }
}

/// SplitMix64 finalizer — a well-tested 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn labels_give_distinct_seeds() {
        let s = SeedStream::new(0);
        let seeds: Vec<u64> = (0..64).map(|i| s.derive_indexed("w", i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn derivation_is_stable() {
        assert_eq!(
            SeedStream::new(42).derive("am"),
            SeedStream::new(42).derive("am")
        );
        assert_ne!(
            SeedStream::new(42).derive("am"),
            SeedStream::new(43).derive("am")
        );
    }

    #[test]
    fn rngs_are_reproducible() {
        let mut a = SeedStream::new(9).rng("x");
        let mut b = SeedStream::new(9).rng("x");
        let va: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn substreams_are_independent() {
        let s = SeedStream::new(1);
        let j0 = s.substream("job-0");
        let j1 = s.substream("job-1");
        assert_ne!(j0.derive("worker"), j1.derive("worker"));
    }

    #[test]
    fn empty_label_is_valid() {
        let s = SeedStream::new(5);
        // Must not panic and must differ from a non-empty label.
        assert_ne!(s.derive(""), s.derive("a"));
    }
}
