//! Deterministic discrete-event simulation substrate for the Elan
//! reproduction.
//!
//! Every performance experiment in this repository runs on virtual time so
//! that results are exactly reproducible across machines and runs. The crate
//! provides:
//!
//! - [`SimTime`] / [`SimDuration`]: integer-nanosecond virtual clock types,
//! - [`Scheduler`]: a time-ordered event queue with stable FIFO tie-breaking,
//! - [`World`] / [`Actor`]: a small message-passing actor framework layered on
//!   the scheduler, used by the coordination-protocol simulations,
//! - [`SeedStream`]: deterministic derivation of per-component RNG seeds,
//! - [`metrics`]: time series, summary statistics, and histograms used to
//!   produce the paper's figures,
//! - [`units`]: byte/bandwidth quantities with human-readable formatting.
//!
//! # Examples
//!
//! ```
//! use elan_sim::{Scheduler, SimDuration, SimTime};
//!
//! let mut sched: Scheduler<&'static str> = Scheduler::new();
//! sched.schedule_after(SimDuration::from_millis(5), "world");
//! sched.schedule_after(SimDuration::from_millis(1), "hello");
//! let (t1, first) = sched.pop().unwrap();
//! let (t2, second) = sched.pop().unwrap();
//! assert_eq!((first, second), ("hello", "world"));
//! assert!(t1 < t2);
//! assert_eq!(t2, SimTime::ZERO + SimDuration::from_millis(5));
//! ```

pub mod actor;
pub mod event;
pub mod metrics;
pub mod rng;
pub mod time;
pub mod units;

pub use actor::{Actor, ActorId, Ctx, World};
pub use event::Scheduler;
pub use metrics::{Histogram, Series, Summary};
pub use rng::SeedStream;
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, Bytes};
