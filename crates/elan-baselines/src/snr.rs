//! Shutdown-&-Restart (S&R) — the checkpoint-based baseline (§V-B, §VI-A).
//!
//! The Fig. 10/11 timeline: coordinate → checkpoint → shutdown → start →
//! initialize → load checkpoint → resume. Checkpointing involves GPU→CPU
//! memory copies plus parallel-filesystem IO; restart pays process start,
//! framework initialization, and collective-communication setup for every
//! worker — tens of seconds that Elan hides entirely.

use elan_sim::{Bytes, SeedStream, SimDuration};

use rand::Rng;

use elan_core::elasticity::{
    AdjustmentContext, AdjustmentCost, AdjustmentKind, AdjustmentRequest, ElasticitySystem,
};

/// Cost constants of the S&R pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrCosts {
    /// Tearing down worker processes.
    pub shutdown: SimDuration,
    /// Worker process start draw (min).
    pub start_min: SimDuration,
    /// Worker process start draw (max).
    pub start_max: SimDuration,
    /// Framework/runtime initialization draw (min).
    pub init_min: SimDuration,
    /// Framework/runtime initialization draw (max).
    pub init_max: SimDuration,
    /// Collective-communication (re)initialization per worker.
    pub comm_init_per_worker: SimDuration,
    /// Concurrent checkpoint readers the filesystem serves at full speed.
    pub fs_parallel_readers: u32,
}

impl SnrCosts {
    /// Calibrated to the Fig. 11 breakdown: start ≈ 10 s, init ≈ 20 s,
    /// checkpoint/load seconds-scale depending on model size.
    pub fn paper_default() -> Self {
        SnrCosts {
            shutdown: SimDuration::from_secs(2),
            start_min: SimDuration::from_secs(8),
            start_max: SimDuration::from_secs(12),
            init_min: SimDuration::from_secs(15),
            init_max: SimDuration::from_secs(25),
            comm_init_per_worker: SimDuration::from_millis(60),
            fs_parallel_readers: 4,
        }
    }
}

impl Default for SnrCosts {
    fn default() -> Self {
        SnrCosts::paper_default()
    }
}

/// Phase-by-phase breakdown of one S&R adjustment (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnrBreakdown {
    /// GPU→CPU copy plus filesystem write of all states.
    pub checkpoint: SimDuration,
    /// Worker teardown.
    pub shutdown: SimDuration,
    /// Process start (max across workers; they start in parallel).
    pub start: SimDuration,
    /// Framework initialization (max across workers) plus collective setup.
    pub initialize: SimDuration,
    /// Filesystem read plus CPU→GPU copy of the checkpoint.
    pub load: SimDuration,
}

impl SnrBreakdown {
    /// Total time of the pipeline.
    pub fn total(&self) -> SimDuration {
        self.checkpoint + self.shutdown + self.start + self.initialize + self.load
    }
}

/// The Shutdown-&-Restart elasticity system.
///
/// # Examples
///
/// ```
/// use elan_baselines::ShutdownRestart;
/// use elan_core::{AdjustmentContext, AdjustmentRequest, ElanSystem, ElasticitySystem};
/// use elan_models::{perf::PerfModel, zoo};
/// use elan_topology::{BandwidthModel, ClusterSpec};
///
/// let topo = ClusterSpec::paper_testbed().build();
/// let bw = BandwidthModel::paper_default();
/// let perf = PerfModel::paper_default();
/// let model = zoo::resnet50();
/// let ctx = AdjustmentContext {
///     topology: &topo, bandwidth: &bw, perf: &perf, model: &model,
///     total_batch: 512, coordination_interval: 10, seed: 7,
/// };
/// let req = AdjustmentRequest::contiguous(16, 32);
/// let snr = ShutdownRestart::new().adjust(&req, &ctx);
/// let elan = ElanSystem::new().adjust(&req, &ctx);
/// // Fig. 15: S&R pauses training 10-80x longer than Elan on scale-out.
/// assert!(snr.pause.as_secs_f64() > 10.0 * elan.pause.as_secs_f64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShutdownRestart {
    costs: SnrCosts,
}

impl ShutdownRestart {
    /// Creates the system with paper-calibrated costs.
    pub fn new() -> Self {
        ShutdownRestart {
            costs: SnrCosts::paper_default(),
        }
    }

    /// Creates the system with custom costs (for ablations).
    pub fn with_costs(costs: SnrCosts) -> Self {
        ShutdownRestart { costs }
    }

    /// The checkpoint payload: parameters + optimizer slots + CPU state.
    fn checkpoint_bytes(ctx: &AdjustmentContext<'_>) -> Bytes {
        Bytes::new(ctx.model.parameters * 4 * 2) + ctx.model.cpu_state_bytes()
    }

    /// Checkpoint time: rank-0 copies GPU state to host memory and writes
    /// it to the parallel filesystem.
    pub fn checkpoint_time(&self, ctx: &AdjustmentContext<'_>) -> SimDuration {
        let payload = Self::checkpoint_bytes(ctx);
        ctx.bandwidth.host_device.transfer_time(payload)
            + ctx.bandwidth.filesystem.transfer_time(payload)
    }

    /// Load time: `n_readers` workers read the checkpoint back and copy it
    /// to their GPUs; the filesystem serves a limited number concurrently.
    pub fn load_time(&self, ctx: &AdjustmentContext<'_>, n_readers: u32) -> SimDuration {
        let payload = Self::checkpoint_bytes(ctx);
        let rounds = n_readers.div_ceil(self.costs.fs_parallel_readers).max(1);
        ctx.bandwidth.filesystem.transfer_time(payload) * rounds as u64
            + ctx.bandwidth.host_device.transfer_time(payload)
    }

    /// Start+init maxima across `n` workers, drawn deterministically.
    fn start_init(&self, ctx: &AdjustmentContext<'_>, n: u32) -> (SimDuration, SimDuration) {
        let seeds = SeedStream::new(ctx.seed);
        let mut max_start = SimDuration::ZERO;
        let mut max_init = SimDuration::ZERO;
        for i in 0..n {
            let mut rng = seeds.rng_indexed("snr-start-init", i as u64);
            let sspan = self.costs.start_max.saturating_sub(self.costs.start_min);
            let ispan = self.costs.init_max.saturating_sub(self.costs.init_min);
            let start = self.costs.start_min
                + SimDuration::from_nanos(rng.gen_range(0..=sspan.as_nanos().max(1)));
            let init = self.costs.init_min
                + SimDuration::from_nanos(rng.gen_range(0..=ispan.as_nanos().max(1)));
            max_start = max_start.max(start);
            max_init = max_init.max(init);
        }
        (max_start, max_init)
    }

    /// The full Fig. 11 breakdown for an adjustment to `n_after` workers.
    pub fn breakdown(
        &self,
        request: &AdjustmentRequest,
        ctx: &AdjustmentContext<'_>,
    ) -> SnrBreakdown {
        let n_after = request.n_after();
        let (start, init) = self.start_init(ctx, n_after);
        SnrBreakdown {
            checkpoint: self.checkpoint_time(ctx),
            shutdown: self.costs.shutdown,
            start,
            initialize: init + self.costs.comm_init_per_worker * n_after as u64,
            load: self.load_time(ctx, n_after),
        }
    }
}

impl ElasticitySystem for ShutdownRestart {
    fn name(&self) -> &'static str {
        "S&R"
    }

    fn adjust(&self, request: &AdjustmentRequest, ctx: &AdjustmentContext<'_>) -> AdjustmentCost {
        let b = self.breakdown(request, ctx);
        match request.kind() {
            AdjustmentKind::ScaleOut | AdjustmentKind::ScaleIn => {
                // Existing workers shut down and restart — everything is on
                // the critical path (§VI-A2).
                let pause = b.total();
                AdjustmentCost {
                    pause,
                    completion: pause,
                }
            }
            AdjustmentKind::Migration => {
                // Existing workers are discarded after migration, so S&R
                // benefits from asynchronous start of the destination
                // workers: only checkpoint + load + comm setup stall
                // training.
                let pause = b.checkpoint
                    + b.load
                    + self.costs.comm_init_per_worker * request.n_after() as u64;
                let (start, init) = self.start_init(ctx, request.n_after());
                let hidden = start + init;
                let boundary = ctx.next_boundary_after(hidden, request.n_before());
                AdjustmentCost {
                    pause,
                    completion: boundary + pause,
                }
            }
        }
    }

    fn runtime_overhead(&self, ctx: &AdjustmentContext<'_>, n_workers: u32) -> f64 {
        // §VI-A1: with no adjustments, S&R performs the same coordination
        // as Elan, so the runtime overhead is identical.
        elan_core::ElanSystem::new().runtime_overhead(ctx, n_workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elan_core::ElanSystem;
    use elan_models::{zoo, ModelSpec, PerfModel};
    use elan_topology::{BandwidthModel, ClusterSpec, Topology};

    fn fixtures() -> (Topology, BandwidthModel, PerfModel) {
        (
            ClusterSpec::paper_testbed().build(),
            BandwidthModel::paper_default(),
            PerfModel::paper_default(),
        )
    }

    fn ctx<'a>(
        topo: &'a Topology,
        bw: &'a BandwidthModel,
        perf: &'a PerfModel,
        model: &'a ModelSpec,
    ) -> AdjustmentContext<'a> {
        AdjustmentContext {
            topology: topo,
            bandwidth: bw,
            perf,
            model,
            total_batch: 512,
            coordination_interval: 10,
            seed: 7,
        }
    }

    #[test]
    fn start_and_init_dominate_the_breakdown() {
        // Fig. 11: "it is the long time of start and initialization that
        // leads to the inefficiency of S&R".
        let (topo, bw, perf) = fixtures();
        let model = zoo::resnet50();
        let c = ctx(&topo, &bw, &perf, &model);
        let b = ShutdownRestart::new().breakdown(&AdjustmentRequest::contiguous(16, 32), &c);
        let start_init = b.start + b.initialize;
        let rest = b.checkpoint + b.shutdown + b.load;
        assert!(start_init > rest, "{start_init} !> {rest}");
        assert!(start_init.as_secs_f64() > 0.5 * b.total().as_secs_f64());
    }

    #[test]
    fn scaling_is_10_to_80x_slower_than_elan() {
        let (topo, bw, perf) = fixtures();
        let elan = ElanSystem::new();
        let snr = ShutdownRestart::new();
        for model in zoo::evaluation_models() {
            let c = ctx(&topo, &bw, &perf, &model);
            for req in [
                AdjustmentRequest::contiguous(16, 32),
                AdjustmentRequest::contiguous(32, 64),
                AdjustmentRequest::contiguous(32, 16),
            ] {
                let pe = elan.adjust(&req, &c).pause.as_secs_f64();
                let ps = snr.adjust(&req, &c).pause.as_secs_f64();
                let ratio = ps / pe;
                assert!(
                    (8.0..150.0).contains(&ratio),
                    "{} {req}: ratio {ratio:.1} (elan {pe:.2}s, snr {ps:.2}s)",
                    model.name
                );
            }
        }
    }

    #[test]
    fn migration_is_only_few_times_slower() {
        // Fig. 15: up to ~4x on migration, because S&R's destination
        // workers start asynchronously and only IO stays on the path.
        let (topo, bw, perf) = fixtures();
        let elan = ElanSystem::new();
        let snr = ShutdownRestart::new();
        let model = zoo::resnet50();
        let c = ctx(&topo, &bw, &perf, &model);
        let req = AdjustmentRequest::migration(16, 32);
        let pe = elan.adjust(&req, &c).pause.as_secs_f64();
        let ps = snr.adjust(&req, &c).pause.as_secs_f64();
        let ratio = ps / pe;
        assert!((1.5..10.0).contains(&ratio), "ratio {ratio:.1}");
    }

    #[test]
    fn bigger_models_checkpoint_slower() {
        let (topo, bw, perf) = fixtures();
        let snr = ShutdownRestart::new();
        let resnet = zoo::resnet50();
        let vgg = zoo::vgg19();
        let t_resnet = snr.checkpoint_time(&ctx(&topo, &bw, &perf, &resnet));
        let t_vgg = snr.checkpoint_time(&ctx(&topo, &bw, &perf, &vgg));
        assert!(t_vgg > t_resnet * 3);
    }

    #[test]
    fn load_contends_on_the_filesystem() {
        let (topo, bw, perf) = fixtures();
        let snr = ShutdownRestart::new();
        let model = zoo::resnet50();
        let c = ctx(&topo, &bw, &perf, &model);
        assert!(snr.load_time(&c, 64) > snr.load_time(&c, 4));
    }

    #[test]
    fn overhead_matches_elan_when_idle() {
        let (topo, bw, perf) = fixtures();
        let model = zoo::resnet50();
        let c = ctx(&topo, &bw, &perf, &model);
        assert_eq!(
            ShutdownRestart::new().runtime_overhead(&c, 16),
            ElanSystem::new().runtime_overhead(&c, 16)
        );
    }

    #[test]
    fn breakdown_total_sums_phases() {
        let (topo, bw, perf) = fixtures();
        let model = zoo::transformer();
        let c = ctx(&topo, &bw, &perf, &model);
        let b = ShutdownRestart::new().breakdown(&AdjustmentRequest::contiguous(8, 16), &c);
        assert_eq!(
            b.total(),
            b.checkpoint + b.shutdown + b.start + b.initialize + b.load
        );
    }
}
