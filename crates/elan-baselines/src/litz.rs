//! A Litz-style executor/context-switching baseline (§VI-A, Fig. 16).
//!
//! Litz expresses elasticity through a programming model: each physical
//! worker hosts several *executors*, and elasticity moves executors rather
//! than replicating worker state. The price is paid every iteration: GPU
//! memory cannot hold all executor contexts, so each micro-batch swap
//! moves one context out to CPU memory and another in, through the PCIe
//! host↔device link. Local gradient aggregation (one allreduce per worker
//! iteration instead of per executor micro-batch) softens but does not
//! repair the damage.

use elan_sim::{Bytes, SimDuration};

use elan_core::elasticity::{
    AdjustmentContext, AdjustmentCost, AdjustmentRequest, ElasticitySystem,
};
use elan_topology::Transport;

/// The Litz baseline with a configurable executor count per worker.
///
/// # Examples
///
/// ```
/// use elan_baselines::Litz;
/// use elan_core::{AdjustmentContext, ElasticitySystem};
/// use elan_models::{perf::PerfModel, zoo};
/// use elan_topology::{BandwidthModel, ClusterSpec};
///
/// let topo = ClusterSpec::paper_testbed().build();
/// let bw = BandwidthModel::paper_default();
/// let perf = PerfModel::paper_default();
/// let model = zoo::transformer();
/// let ctx = AdjustmentContext {
///     topology: &topo, bandwidth: &bw, perf: &perf, model: &model,
///     total_batch: 512, coordination_interval: 10, seed: 7,
/// };
/// // Fig. 16: Litz throughput collapses on Transformer (>90% reduction).
/// let rel = Litz::new(4).relative_throughput(&ctx, 16);
/// assert!(rel < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Litz {
    executors_per_worker: u32,
}

impl Litz {
    /// Creates a Litz system with `executors_per_worker` executors
    /// sharing each GPU (the paper evaluates Litz-2 and Litz-4).
    ///
    /// # Panics
    ///
    /// Panics if `executors_per_worker` is zero.
    pub fn new(executors_per_worker: u32) -> Self {
        assert!(executors_per_worker > 0, "need at least one executor");
        Litz {
            executors_per_worker,
        }
    }

    /// The paper's Litz-2 variant.
    pub fn litz2() -> Self {
        Litz::new(2)
    }

    /// The paper's Litz-4 variant.
    pub fn litz4() -> Self {
        Litz::new(4)
    }

    /// Executors per worker.
    pub fn executors(&self) -> u32 {
        self.executors_per_worker
    }

    /// Context switches run far below peak PCIe copy bandwidth: executor
    /// state lives in pageable, fragmented allocations (no pinned-memory
    /// DMA), and every swap churns the allocator and caches.
    const SWAP_EFFICIENCY: f64 = 0.1;

    /// The GPU context that a switch moves each way: parameters, gradients
    /// and optimizer state of one executor.
    fn context_bytes(ctx: &AdjustmentContext<'_>) -> Bytes {
        Bytes::new(ctx.model.parameters * 4 * 3)
    }

    /// One Litz iteration on `n_workers`: every executor computes its
    /// micro-batch (context switched in and out), then the worker performs
    /// one locally-aggregated allreduce.
    pub fn iteration_time(&self, ctx: &AdjustmentContext<'_>, n_workers: u32) -> SimDuration {
        let m = self.executors_per_worker;
        let micro_batch = ctx.total_batch as f64 / (n_workers as f64 * m as f64);
        let compute = ctx.perf.gpu.compute_time(ctx.model, micro_batch);
        let swap_secs = Self::context_bytes(ctx).as_f64()
            / (ctx.bandwidth.host_device.peak.as_bytes_per_sec() * Self::SWAP_EFFICIENCY);
        let swap = ctx.bandwidth.host_device.latency + SimDuration::from_secs_f64(swap_secs);
        // Swap out the previous context and in the next one, per executor.
        let per_executor = compute + swap * 2;
        let comm = ctx
            .perf
            .interconnect
            .allreduce_time(ctx.model.param_bytes(), n_workers);
        let sync = ctx.perf.interconnect.sync_time(n_workers);
        per_executor * m as u64 + comm + sync
    }
}

impl ElasticitySystem for Litz {
    fn name(&self) -> &'static str {
        match self.executors_per_worker {
            2 => "Litz-2",
            4 => "Litz-4",
            _ => "Litz",
        }
    }

    fn adjust(&self, request: &AdjustmentRequest, ctx: &AdjustmentContext<'_>) -> AdjustmentCost {
        // Executor migration: move one executor context over the network
        // per joining/leaving worker, plus rebalancing bookkeeping. Cheap —
        // Litz's problem is runtime overhead, not adjustment latency.
        let moved = request.joining().len().max(request.leaving().len()) as u64;
        let per_move = ctx
            .bandwidth
            .transfer_time(Transport::Net, Self::context_bytes(ctx));
        let pause = SimDuration::from_millis(100) + per_move * moved.min(4);
        AdjustmentCost {
            pause,
            completion: pause,
        }
    }

    fn runtime_overhead(&self, ctx: &AdjustmentContext<'_>, n_workers: u32) -> f64 {
        1.0 - self.relative_throughput(ctx, n_workers)
    }

    fn relative_throughput(&self, ctx: &AdjustmentContext<'_>, n_workers: u32) -> f64 {
        let native = ctx
            .perf
            .iteration_time(ctx.model, n_workers, ctx.total_batch)
            .as_secs_f64();
        let litz = self.iteration_time(ctx, n_workers).as_secs_f64();
        native / litz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elan_models::{zoo, ModelSpec, PerfModel};
    use elan_topology::{BandwidthModel, ClusterSpec, Topology};

    fn fixtures() -> (Topology, BandwidthModel, PerfModel) {
        (
            ClusterSpec::paper_testbed().build(),
            BandwidthModel::paper_default(),
            PerfModel::paper_default(),
        )
    }

    fn ctx<'a>(
        topo: &'a Topology,
        bw: &'a BandwidthModel,
        perf: &'a PerfModel,
        model: &'a ModelSpec,
        tbs: u32,
    ) -> AdjustmentContext<'a> {
        AdjustmentContext {
            topology: topo,
            bandwidth: bw,
            perf,
            model,
            total_batch: tbs,
            coordination_interval: 10,
            seed: 7,
        }
    }

    #[test]
    fn litz_is_always_slower_than_native() {
        let (topo, bw, perf) = fixtures();
        for model in zoo::evaluation_models() {
            let c = ctx(&topo, &bw, &perf, &model, 512);
            for n in [2u32, 8, 16, 64] {
                let rel = Litz::litz2().relative_throughput(&c, n);
                assert!(rel < 1.0, "{} at {n}: {rel}", model.name);
                assert!(rel > 0.0);
            }
        }
    }

    #[test]
    fn litz4_is_no_faster_than_litz2() {
        // Fig. 16: although Litz-4 performs more computation, it still
        // cannot match Elan — more executors mean more switches.
        let (topo, bw, perf) = fixtures();
        for model in zoo::evaluation_models() {
            let c = ctx(&topo, &bw, &perf, &model, 512);
            let r2 = Litz::litz2().relative_throughput(&c, 16);
            let r4 = Litz::litz4().relative_throughput(&c, 16);
            assert!(r4 <= r2 * 1.05, "{}: litz4 {r4} vs litz2 {r2}", model.name);
        }
    }

    #[test]
    fn transformer_loses_more_than_90_percent() {
        let (topo, bw, perf) = fixtures();
        let model = zoo::transformer();
        let c = ctx(&topo, &bw, &perf, &model, 512);
        let rel = Litz::litz4().relative_throughput(&c, 16);
        assert!(rel < 0.10, "reduction should exceed 90%, got rel {rel}");
    }

    #[test]
    fn throughput_improves_slightly_with_more_workers() {
        // Fig. 16: with more workers, relative throughput creeps up thanks
        // to local gradient aggregation (comm amortized while swap cost
        // per worker stays fixed).
        let (topo, bw, perf) = fixtures();
        let model = zoo::resnet50();
        // Weak-ish scaling: keep per-worker batch meaningful.
        let c16 = ctx(&topo, &bw, &perf, &model, 16 * 32);
        let c64 = ctx(&topo, &bw, &perf, &model, 64 * 32);
        let r16 = Litz::litz2().relative_throughput(&c16, 16);
        let r64 = Litz::litz2().relative_throughput(&c64, 64);
        assert!(r64 > r16 * 0.9, "r64 {r64} vs r16 {r16}");
    }

    #[test]
    fn adjustments_are_cheap() {
        let (topo, bw, perf) = fixtures();
        let model = zoo::resnet50();
        let c = ctx(&topo, &bw, &perf, &model, 512);
        let cost = Litz::litz2().adjust(&AdjustmentRequest::contiguous(8, 16), &c);
        assert!(cost.pause.as_secs_f64() < 3.0);
    }

    #[test]
    fn overhead_complements_relative_throughput() {
        let (topo, bw, perf) = fixtures();
        let model = zoo::vgg19();
        let c = ctx(&topo, &bw, &perf, &model, 512);
        let litz = Litz::litz2();
        let rel = litz.relative_throughput(&c, 8);
        let ov = litz.runtime_overhead(&c, 8);
        assert!((rel + ov - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn zero_executors_rejected() {
        let _ = Litz::new(0);
    }
}
