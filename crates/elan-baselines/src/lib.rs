//! Baseline elastic-training systems for the §VI comparisons.
//!
//! - [`snr`] — **Shutdown-&-Restart**, the common practice of Gandiva and
//!   Optimus: checkpoint all training states to the parallel filesystem,
//!   shut every worker down, restart with the new resource configuration,
//!   and load the checkpoint. The shutdown/restart of *existing* workers
//!   sits on the critical path, so S&R cannot benefit from asynchronous
//!   new-worker start (except for migration, where existing workers are
//!   discarded anyway).
//! - [`litz`] — a **Litz-style** programming-model system: several
//!   executors share each GPU worker and context-switch between micro-
//!   batches, with local gradient aggregation. Context switches move GPU
//!   state to CPU memory and back, devastating throughput for models with
//!   large parameter tensors (Fig. 16).
//!
//! Both implement [`ElasticitySystem`], so every experiment compares the
//! same quantities under the same workload models.

pub mod litz;
pub mod snr;

pub use litz::Litz;
pub use snr::ShutdownRestart;

// Re-exported for convenience in benches and tests.
pub use elan_core::elasticity::ElasticitySystem;
