//! Data-plane benchmark harness: chunked cooperative allreduce and
//! chunked pipelined state replication versus their naive baselines.
//!
//! ```text
//! dataplane [--quick] [--out PATH]     run the sweep, write a JSON report
//! dataplane --validate PATH            schema-check an existing report
//! ```
//!
//! The default output path is `BENCH_dataplane.json` in the current
//! directory. `--quick` runs a reduced grid suitable for CI smoke runs.
//! `--validate` exits non-zero if the file does not conform to the
//! report schema (used by CI after the smoke run).

use std::process::ExitCode;

use bench::dataplane;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = String::from("BENCH_dataplane.json");
    let mut validate: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out requires a path"),
            },
            "--validate" => match args.next() {
                Some(path) => validate = Some(path),
                None => return usage("--validate requires a path"),
            },
            "--help" | "-h" => {
                eprintln!("usage: dataplane [--quick] [--out PATH] | dataplane --validate PATH");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    if let Some(path) = validate {
        return match std::fs::read_to_string(&path) {
            Ok(text) => match dataplane::validate_json(&text) {
                Ok(()) => {
                    eprintln!("{path}: ok");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: schema violation: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let report = dataplane::run(quick, |line| eprintln!("{line}"));
    let json = report.to_json();
    if let Err(e) = dataplane::validate_json(&json) {
        eprintln!("internal error: emitted report fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: dataplane [--quick] [--out PATH] | dataplane --validate PATH");
    ExitCode::FAILURE
}
