//! Data-plane benchmark harness: adaptive allreduce (flat / chunked /
//! hierarchical dispatch) and chunked pipelined state replication versus
//! their naive baselines.
//!
//! ```text
//! dataplane [--quick] [--out PATH] [--assert-thresholds BASELINE]
//!                                      run the sweep, write a JSON report
//! dataplane --validate PATH            schema-check an existing report
//! ```
//!
//! The default output path is `BENCH_dataplane.json` in the current
//! directory. `--quick` runs a reduced grid suitable for CI smoke runs.
//! `--validate` exits non-zero if the file does not conform to the
//! report schema (used by CI after the smoke run).
//! `--assert-thresholds` additionally diffs the fresh sweep against the
//! committed baseline report: exit code 2 if any shared cell regressed
//! more than the tolerance or any allreduce cell lost to naive outside
//! the allowlist (the CI perf regression gate).

use std::process::ExitCode;

use bench::dataplane;

fn main() -> ExitCode {
    let mut quick = false;
    let mut out = String::from("BENCH_dataplane.json");
    let mut validate: Option<String> = None;
    let mut baseline: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out requires a path"),
            },
            "--validate" => match args.next() {
                Some(path) => validate = Some(path),
                None => return usage("--validate requires a path"),
            },
            "--assert-thresholds" => match args.next() {
                Some(path) => baseline = Some(path),
                None => return usage("--assert-thresholds requires a baseline path"),
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    if let Some(path) = validate {
        return match std::fs::read_to_string(&path) {
            Ok(text) => match dataplane::validate_json(&text) {
                Ok(()) => {
                    eprintln!("{path}: ok");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: schema violation: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Read the baseline *before* the sweep so a bad path fails fast
    // instead of after minutes of measurement.
    let baseline_text = match &baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let report = dataplane::run(quick, |line| eprintln!("{line}"));
    let json = report.to_json();
    if let Err(e) = dataplane::validate_json(&json) {
        eprintln!("internal error: emitted report fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");

    if let (Some(path), Some(text)) = (&baseline, &baseline_text) {
        match dataplane::assert_thresholds(&report, text) {
            Ok(()) => eprintln!("thresholds ok against {path}"),
            Err(violations) => {
                eprintln!("perf regression against {path}:");
                eprintln!("{violations}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

const USAGE: &str =
    "usage: dataplane [--quick] [--out PATH] [--assert-thresholds BASELINE] | dataplane --validate PATH";

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}
