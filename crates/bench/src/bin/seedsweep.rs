//! Determinism fuzzer for the virtual-time runtime (`elan-rt`).
//!
//! ```text
//! seedsweep [--quick] [--seeds N] [--start S] [--scenario NAME] [--out PATH]
//! ```
//!
//! For each seed the selected end-to-end scenario is executed **twice**
//! on a [`TimeSource::virtual_seeded`] clock and each run's event journal
//! is hashed (FNV-1a over the rendered event lines, virtual timestamps
//! included). Determinism means the two hashes are equal for every seed;
//! any divergent seed is replayed twice more to confirm the divergence is
//! reproducible, and its journals ride the JSON report so CI can upload
//! them as an artifact. A seed whose run panics is a failure too — the
//! panic message is captured into the report.
//!
//! Scenarios:
//!
//! - `chaos` (default) — lossy + delaying + duplicating bus with a
//!   scale-out mid-run;
//! - `partition` — a scripted 500ms window isolating the acting AM while
//!   a scale-out is requested: the watchdog must elect a term-fenced
//!   successor that completes the adjustment, and on top of the journal
//!   hash every run is replayed through [`check_term_safety`] (at most
//!   one AM acting per term, no post-fence effects);
//! - `allreduce-adjust` — a nine-worker job whose gradient vectors sit
//!   above the pinned flat crossover, so the dispatcher runs the
//!   hierarchical path, with a scale-out landing mid-run: proves that
//!   path selection and the per-round topology re-plan are pure
//!   functions of the seed (the journal's `allreduce_path` events are
//!   part of the hash);
//! - `churn` — a 1 000-member scripted join/leave/crash storm over the
//!   open-membership epoch machine (DESIGN.md §17) with corrupt-digest
//!   joiners and partition windows: on top of the journal hash, every
//!   run is replayed through [`check_epoch_safety`] (no un-warmed
//!   member enters `Train`, membership within bounds, epochs
//!   monotonic).
//!
//! `--quick` sweeps 64 seeds (the CI smoke configuration); the default
//! sweep is 256. Exit status is non-zero iff any seed diverged or failed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Duration;

use elan_rt::epoch::{run_churn, ChurnConfig};
use elan_rt::{
    check_epoch_safety, check_term_safety, ChaosPolicy, ElasticRuntime, EndpointId, RuntimeConfig,
    TimeSource, TuningProfile,
};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Journal lines retained per divergent/failed run in the report.
const REPORT_LINE_CAP: usize = 200;
/// Seeds in the `--quick` (CI) sweep.
const QUICK_SEEDS: u64 = 64;
/// Seeds in the default sweep.
const FULL_SEEDS: u64 = 256;

fn fnv1a(lines: &[String]) -> u64 {
    let mut h = FNV_OFFSET;
    for line in lines {
        for &b in line.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        h = (h ^ u64::from(b'\n')).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Which end-to-end scenario the sweep replays per seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    /// Lossy/delaying/duplicating bus with a scale-out mid-run.
    Chaos,
    /// Scripted partition isolating the acting AM mid-adjustment.
    Partition,
    /// Hierarchical-path allreduce with a scale-out mid-run.
    AllreduceAdjust,
    /// 1k-member open-membership churn storm over the epoch machine.
    Churn,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Chaos => "chaos",
            Scenario::Partition => "partition",
            Scenario::AllreduceAdjust => "allreduce-adjust",
            Scenario::Churn => "churn",
        }
    }
}

/// The chaos e2e scenario under virtual time: a lossy, delaying,
/// duplicating bus and a live scale-out. Returns the journal, rendered
/// line-by-line.
fn chaos_scenario(seed: u64) -> Vec<String> {
    let mut cfg = RuntimeConfig::small(2);
    cfg.retry_max_attempts = 12;
    let chaos = ChaosPolicy::new(seed)
        .drop(0.20)
        .delay(0.20, 3)
        .duplicate(0.10);
    let mut rt = ElasticRuntime::builder()
        .config(cfg)
        .chaos(chaos)
        .time(TimeSource::virtual_seeded(seed))
        .start()
        .expect("valid sweep configuration");
    rt.run_until_iteration(8);
    rt.scale_out(1);
    rt.run_until_iteration(16);
    let report = rt.shutdown();
    assert!(report.states_consistent(), "replicas diverged");
    report.events.iter().map(|e| format!("{e:?}")).collect()
}

/// The partition e2e scenario: a 500ms scripted window cuts the acting
/// AM off from workers, controller, and store while a scale-out is
/// requested. The lease lapses, a successor is elected at a higher
/// fencing term, the old AM's persist-before-act probe bounces, and the
/// adjustment completes under the new term. On top of the determinism
/// hash, the journal is replayed through the term-safety checker.
fn partition_scenario(seed: u64) -> Vec<String> {
    let mut cfg = RuntimeConfig::small(3);
    cfg.retry_max_attempts = 12;
    // The policy scripts no probabilistic fates: the partition *is* the
    // chaos, so every journal difference across seeds comes from the
    // virtual-clock schedule alone.
    let mut rt = ElasticRuntime::builder()
        .config(cfg)
        .chaos(ChaosPolicy::new(seed))
        .time(TimeSource::virtual_seeded(seed))
        .start()
        .expect("valid sweep configuration");
    rt.run_until_iteration(8);
    assert!(
        rt.partition(
            "am-isolated",
            vec![vec![EndpointId::Am]],
            Duration::from_millis(500),
        ),
        "partition scripting needs a chaos engine"
    );
    rt.scale_out(1);
    rt.run_until_iteration(16);
    let report = rt.shutdown();
    assert!(report.states_consistent(), "replicas diverged");
    assert!(
        report.journal.count("term_bump") >= 2,
        "no fenced failover: {:?}",
        report.journal
    );
    assert!(
        report.journal.count("stale_term_rejected") >= 1,
        "old AM never fenced: {:?}",
        report.journal
    );
    let safety = check_term_safety(&report.events);
    assert!(safety.is_safe(), "term safety violated: {safety}");
    report.events.iter().map(|e| format!("{e:?}")).collect()
}

/// The allreduce-adjust e2e scenario: nine workers (the pinned
/// chunked/hierarchical crossover) reduce vectors twice the pinned flat
/// crossover, so every round dispatches hierarchically over the default
/// planning topology; a two-worker scale-out lands mid-run, forcing the
/// dispatcher to re-plan its socket groups for the grown membership.
/// The journal's `allreduce_path` events (round, path, world, group
/// count) are part of the determinism hash, so a divergence in path
/// selection or group planning across identically-seeded runs fails the
/// sweep.
fn allreduce_adjust_scenario(seed: u64) -> Vec<String> {
    let mut cfg = RuntimeConfig::small(9);
    cfg.param_elems = 2 * TuningProfile::pinned().flat_max_len;
    cfg.replication_chunk_elems = cfg.param_elems / 4;
    let mut rt = ElasticRuntime::builder()
        .config(cfg)
        .time(TimeSource::virtual_seeded(seed))
        .start()
        .expect("valid sweep configuration");
    rt.run_until_iteration(4);
    rt.scale_out(2);
    rt.run_until_iteration(8);
    let report = rt.shutdown();
    assert!(report.states_consistent(), "replicas diverged");
    assert_eq!(report.final_world_size, 11, "scale-out did not land");
    let lines: Vec<String> = report.events.iter().map(|e| format!("{e:?}")).collect();
    assert!(
        lines
            .iter()
            .any(|l| l.contains("AllreducePath") && l.contains("Hier")),
        "no hierarchical round was journalled"
    );
    lines
}

/// The churn scenario: a 1 000-member scripted join/leave/crash storm
/// over the open-membership epoch machine, with corrupt-digest joiners
/// (witness bait) and two partition windows swallowing announces. The
/// storm is a pure function of the seed, so its journal hash is too;
/// every run's retained journal is additionally replayed through the
/// epoch-safety auditor, and a storm that admits nobody is a failure
/// (a dead harness must not sweep green).
fn churn_scenario(seed: u64) -> Vec<String> {
    let report = run_churn(&ChurnConfig::sized(1_000, seed));
    assert!(report.admitted >= 1, "storm admitted nobody: {report:?}");
    assert!(
        report.epochs_trained >= 1,
        "storm never entered Train: {report:?}"
    );
    let safety = check_epoch_safety(&report.events);
    assert!(safety.is_safe(), "epoch safety violated: {safety}");
    report.events.iter().map(|e| format!("{e:?}")).collect()
}

/// One run, panic-safe. `Err` carries the panic payload as text.
fn run_once(seed: u64, scenario: Scenario) -> Result<Vec<String>, String> {
    // A panicking run may leave the controller thread registered with the
    // (abandoned) virtual clock's thread-local id; clear it so the next
    // seed starts clean.
    let guard = TimeSource::virtual_seeded(seed);
    let out = catch_unwind(AssertUnwindSafe(|| match scenario {
        Scenario::Chaos => chaos_scenario(seed),
        Scenario::Partition => partition_scenario(seed),
        Scenario::AllreduceAdjust => allreduce_adjust_scenario(seed),
        Scenario::Churn => churn_scenario(seed),
    }));
    out.map_err(|e| {
        guard.deregister();
        match e.downcast::<String>() {
            Ok(s) => *s,
            Err(e) => match e.downcast::<&'static str>() {
                Ok(s) => (*s).to_string(),
                Err(_) => "non-string panic payload".to_string(),
            },
        }
    })
}

#[derive(Debug)]
enum Verdict {
    /// Both runs agreed: one hash.
    Ok { hash: u64 },
    /// Hashes differed; `replay` holds the two confirmation-run hashes.
    Divergent {
        hashes: (u64, u64),
        replay: (u64, u64),
        first: Vec<String>,
        second: Vec<String>,
    },
    /// A run panicked.
    Failed { message: String, prior: Vec<String> },
}

fn sweep_seed(seed: u64, scenario: Scenario) -> Verdict {
    let a = match run_once(seed, scenario) {
        Ok(lines) => lines,
        Err(message) => {
            return Verdict::Failed {
                message,
                prior: Vec::new(),
            }
        }
    };
    let b = match run_once(seed, scenario) {
        Ok(lines) => lines,
        Err(message) => return Verdict::Failed { message, prior: a },
    };
    let (ha, hb) = (fnv1a(&a), fnv1a(&b));
    if ha == hb {
        return Verdict::Ok { hash: ha };
    }
    // Confirm: a divergence should reproduce — replay twice more so the
    // report can say whether the seed is unstable or the first pair was a
    // one-off (either way it is a bug; the replay hashes aid triage).
    let ra = run_once(seed, scenario).map(|l| fnv1a(&l)).unwrap_or(0);
    let rb = run_once(seed, scenario).map(|l| fnv1a(&l)).unwrap_or(0);
    Verdict::Divergent {
        hashes: (ha, hb),
        replay: (ra, rb),
        first: a,
        second: b,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_lines(s: &mut String, key: &str, lines: &[String], indent: &str) {
    s.push_str(&format!("{indent}\"{key}\": [\n"));
    let tail = lines.len().saturating_sub(REPORT_LINE_CAP);
    for (i, line) in lines.iter().skip(tail).enumerate() {
        let comma = if i + 1 + tail == lines.len() { "" } else { "," };
        s.push_str(&format!("{indent}  \"{}\"{comma}\n", json_escape(line)));
    }
    s.push_str(&format!("{indent}]"));
}

struct Report {
    mode: &'static str,
    scenario: Scenario,
    start: u64,
    results: Vec<(u64, Verdict)>,
}

impl Report {
    fn bad_seeds(&self) -> usize {
        self.results
            .iter()
            .filter(|(_, v)| !matches!(v, Verdict::Ok { .. }))
            .count()
    }

    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema_version\": 1,\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str(&format!("  \"scenario\": \"{}\",\n", self.scenario.name()));
        s.push_str(&format!("  \"start_seed\": {},\n", self.start));
        s.push_str(&format!("  \"seeds\": {},\n", self.results.len()));
        s.push_str(&format!("  \"bad_seeds\": {},\n", self.bad_seeds()));
        s.push_str("  \"hashes\": [\n");
        for (i, (seed, v)) in self.results.iter().enumerate() {
            let hash = match v {
                Verdict::Ok { hash } => format!("\"{hash:016x}\""),
                _ => "null".to_string(),
            };
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"seed\": {seed}, \"hash\": {hash}}}{comma}\n"
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"divergent\": [\n");
        let divergent: Vec<_> = self
            .results
            .iter()
            .filter_map(|(seed, v)| match v {
                Verdict::Divergent {
                    hashes,
                    replay,
                    first,
                    second,
                } => Some((*seed, hashes, replay, first, second)),
                _ => None,
            })
            .collect();
        for (i, (seed, hashes, replay, first, second)) in divergent.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"seed\": {seed},\n"));
            s.push_str(&format!(
                "      \"hashes\": [\"{:016x}\", \"{:016x}\"],\n",
                hashes.0, hashes.1
            ));
            s.push_str(&format!(
                "      \"replay_hashes\": [\"{:016x}\", \"{:016x}\"],\n",
                replay.0, replay.1
            ));
            push_lines(&mut s, "journal_a", first, "      ");
            s.push_str(",\n");
            push_lines(&mut s, "journal_b", second, "      ");
            s.push('\n');
            let comma = if i + 1 == divergent.len() { "" } else { "," };
            s.push_str(&format!("    }}{comma}\n"));
        }
        s.push_str("  ],\n");
        s.push_str("  \"failed\": [\n");
        let failed: Vec<_> = self
            .results
            .iter()
            .filter_map(|(seed, v)| match v {
                Verdict::Failed { message, prior } => Some((*seed, message, prior)),
                _ => None,
            })
            .collect();
        for (i, (seed, message, prior)) in failed.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"seed\": {seed},\n"));
            s.push_str(&format!("      \"panic\": \"{}\",\n", json_escape(message)));
            push_lines(&mut s, "journal_prior_run", prior, "      ");
            s.push('\n');
            let comma = if i + 1 == failed.len() { "" } else { "," };
            s.push_str(&format!("    }}{comma}\n"));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

fn main() -> ExitCode {
    let mut n: Option<u64> = None;
    let mut start = 0u64;
    let mut quick = false;
    let mut scenario = Scenario::Chaos;
    let mut out = String::from("BENCH_seedsweep.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => n = Some(v),
                None => return usage("--seeds requires a count"),
            },
            "--start" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => start = v,
                None => return usage("--start requires a seed"),
            },
            "--scenario" => {
                match args.next().as_deref() {
                    Some("chaos") => scenario = Scenario::Chaos,
                    Some("partition") => scenario = Scenario::Partition,
                    Some("allreduce-adjust") => scenario = Scenario::AllreduceAdjust,
                    Some("churn") => scenario = Scenario::Churn,
                    _ => return usage(
                        "--scenario requires 'chaos', 'partition', 'allreduce-adjust', or 'churn'",
                    ),
                }
            }
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out requires a path"),
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let n = n.unwrap_or(if quick { QUICK_SEEDS } else { FULL_SEEDS });
    let mode = if quick { "quick" } else { "full" };

    let mut results = Vec::with_capacity(n as usize);
    for seed in start..start + n {
        let verdict = sweep_seed(seed, scenario);
        match &verdict {
            Verdict::Ok { hash } => eprintln!("seed {seed}: ok {hash:016x}"),
            Verdict::Divergent { hashes, .. } => eprintln!(
                "seed {seed}: DIVERGENT {:016x} != {:016x}",
                hashes.0, hashes.1
            ),
            Verdict::Failed { message, .. } => {
                eprintln!("seed {seed}: FAILED: {message}")
            }
        }
        results.push((seed, verdict));
    }

    let report = Report {
        mode,
        scenario,
        start,
        results,
    };
    let bad = report.bad_seeds();
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {out}: {} seeds, {} divergent/failed",
        report.results.len(),
        bad
    );
    if bad > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const USAGE: &str = "usage: seedsweep [--quick] [--seeds N] [--start S] \
     [--scenario chaos|partition|allreduce-adjust|churn] [--out PATH]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}
