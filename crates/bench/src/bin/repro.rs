//! `repro` — regenerates every table and figure of the Elan paper.
//!
//! ```text
//! repro <experiment-id> [...]   # e.g. repro fig15 fig16
//! repro all                     # the whole evaluation
//! repro list                    # available ids
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" || args[0] == "--help" {
        eprintln!("usage: repro <experiment-id|all> [...]");
        eprintln!("experiments: {}", bench::ALL_EXPERIMENTS.join(", "));
        return if args.first().map(String::as_str) == Some("list") {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        bench::ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for id in ids {
        match bench::run_experiment(id) {
            Ok(report) => {
                println!("================ {id} ================");
                println!("{report}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
