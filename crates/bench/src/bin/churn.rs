//! Open-membership churn stress harness: a 10 000-member scripted
//! join/leave/crash storm over the epoch machine, on virtual time.
//!
//! ```text
//! churn [--population N] [--seed S] [--runs K] [--out PATH]
//!                                      run the storm, write a JSON report
//! churn --validate PATH                schema-check an existing report
//! ```
//!
//! The default output path is `BENCH_churn.json` in the current
//! directory. The storm runs twice by default and the report records
//! whether both runs hashed identically and whether the epoch-safety
//! auditor passed — `--validate` (used by the CI smoke job) refuses any
//! report where either check failed or the wall budget was blown.

use std::process::ExitCode;

use bench::churn;

fn main() -> ExitCode {
    let mut population: u32 = 10_000;
    let mut seed: u64 = 2020;
    let mut runs: u32 = 2;
    let mut out = String::from("BENCH_churn.json");
    let mut validate: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--population" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => population = n,
                None => return usage("--population requires a number"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed requires a number"),
            },
            "--runs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(r) if r >= 1 => runs = r,
                _ => return usage("--runs requires a number >= 1"),
            },
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return usage("--out requires a path"),
            },
            "--validate" => match args.next() {
                Some(path) => validate = Some(path),
                None => return usage("--validate requires a path"),
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    if let Some(path) = validate {
        return match std::fs::read_to_string(&path) {
            Ok(text) => match churn::validate_json(&text) {
                Ok(()) => {
                    eprintln!("{path}: ok");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: schema violation: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("{path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let report = churn::run(population, seed, runs, |line| eprintln!("{line}"));
    let json = report.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {out} (wall={}ms, budget={}ms)",
        report.wall_ms,
        churn::WALL_BUDGET_MS
    );
    if let Err(e) = churn::validate_json(&json) {
        eprintln!("churn report failed its own gate: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

const USAGE: &str =
    "usage: churn [--population N] [--seed S] [--runs K] [--out PATH] | churn --validate PATH";

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}
