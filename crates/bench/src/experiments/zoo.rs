//! Table I — the model zoo.

use elan_models::zoo;

use crate::table::Table;

/// Renders Table I: the models used throughout the evaluation.
pub fn tab1_model_zoo() -> String {
    let mut t = Table::new(vec![
        "Model",
        "Type",
        "Domain",
        "#Parameters",
        "Dataset",
        "GFLOPs/sample",
        "fp32 params",
    ]);
    for m in zoo::evaluation_models() {
        t.row(vec![
            m.name.to_string(),
            m.kind.to_string(),
            m.domain.to_string(),
            format!("{:.0}M", m.parameters as f64 / 1e6),
            m.dataset.to_string(),
            format!("{:.1}", m.gflops_per_sample),
            m.param_bytes().to_string(),
        ]);
    }
    format!(
        "Table I: DL models for scaling-out strategy analysis\n\n{}",
        t.render()
    )
}

/// Renders Table II: the characteristics of training states — GPU states
/// dwarf CPU states, motivating topology-aware GPU-to-GPU replication.
pub fn tab2_state_characteristics() -> String {
    let mut t = Table::new(vec![
        "Model",
        "model params (GPU)",
        "optimizer (GPU)",
        "data cursor (CPU)",
        "runtime info (CPU)",
        "GPU/CPU ratio",
    ]);
    for m in zoo::evaluation_models() {
        let params = m.param_bytes();
        let opt = m.param_bytes(); // SGD momentum: one slot per parameter
        let cpu = m.cpu_state_bytes();
        t.row(vec![
            m.name.to_string(),
            params.to_string(),
            opt.to_string(),
            "8 B (one integer)".to_string(),
            cpu.to_string(),
            format!("{:.0}x", (params + opt).as_f64() / cpu.as_f64()),
        ]);
    }
    format!(
        "Table II: training-state characteristics \
         (GPU states are far larger than CPU states)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_five_models() {
        let s = super::tab1_model_zoo();
        for name in [
            "ResNet-50",
            "VGG-19",
            "MobileNet-v2",
            "Seq2Seq",
            "Transformer",
        ] {
            assert!(s.contains(name), "missing {name}");
        }
    }

    #[test]
    fn state_table_shows_gpu_dominance() {
        let s = super::tab2_state_characteristics();
        assert!(s.contains("one integer"));
    }
}
