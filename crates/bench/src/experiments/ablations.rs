//! Ablation studies of Elan's design choices (beyond the paper's own
//! figures, but directly supporting its §IV/§V arguments).
//!
//! - **Replication strategy**: topology-aware concurrent planning versus
//!   a naive single-source sequential copy — quantifies §IV's design.
//! - **Coordination interval**: the overhead/responsiveness trade-off the
//!   paper calls configurable (§V-B).
//! - **Scaling strategy**: hybrid versus always-strong versus always-weak
//!   in the §VI-B elastic training experiment.

use elan_core::elasticity::{AdjustmentRequest, ElasticitySystem};
use elan_core::job::{run_elastic_training, ElasticPhase, ElasticRunConfig};
use elan_core::ElanSystem;
use elan_models::convergence::ScalingRule;
use elan_models::{zoo, AccuracyModel};
use elan_sim::{Bytes, SimDuration};
use elan_topology::ReplicationPlanner;

use crate::experiments::Testbed;
use crate::table::Table;

/// Replication ablation: Elan's planner vs. a naive strategy that copies
/// everything sequentially from worker 0 over whatever link that implies.
pub fn ablation_replication() -> String {
    let tb = Testbed::paper();
    let mut t = Table::new(vec![
        "model",
        "scale",
        "topology-aware (concurrent)",
        "naive (single-source)",
        "speedup",
    ]);
    for model in zoo::evaluation_models() {
        let payload = Bytes::new(model.parameters * 4 * 2);
        for (label, n_before, n_after) in [("16->32", 16u32, 32u32), ("32->64", 32, 64)] {
            let req = AdjustmentRequest::contiguous(n_before, n_after);
            let plan = ReplicationPlanner::new(&tb.topology)
                .plan(req.current(), &req.joining())
                .expect("valid");
            let smart = plan.duration(&tb.bandwidth, payload, model.cpu_state_bytes());
            // Naive: each joining worker copies from worker 0, one at a
            // time, over the worker-0 link (source is the bottleneck).
            let naive: SimDuration = req
                .joining()
                .iter()
                .map(|&dst| {
                    let level = tb.topology.link_level(elan_topology::GpuId(0), dst);
                    tb.bandwidth.transfer_time(level.transport(), payload)
                })
                .sum();
            t.row(vec![
                model.name.to_string(),
                label.to_string(),
                format!("{:.2}s", smart.as_secs_f64()),
                format!("{:.2}s", naive.as_secs_f64()),
                format!("{:.1}x", naive.as_secs_f64() / smart.as_secs_f64()),
            ]);
        }
    }
    format!(
        "Ablation: concurrent topology-aware replication vs. naive copy\n\n{}",
        t.render()
    )
}

/// Coordination-interval ablation: overhead vs. worst-case adjustment
/// delay (an adjustment waits for the next boundary).
pub fn ablation_coordination_interval() -> String {
    let tb = Testbed::paper();
    let model = zoo::resnet50();
    let sys = ElanSystem::new();
    let mut t = Table::new(vec![
        "interval (iters)",
        "overhead (permille)",
        "max boundary wait (s)",
    ]);
    for interval in [1u32, 5, 10, 50, 100, 500] {
        let mut ctx = tb.ctx(&model, 512);
        ctx.coordination_interval = interval;
        let overhead = sys.runtime_overhead(&ctx, 16) * 1000.0;
        let wait = ctx.coordination_period(16).as_secs_f64();
        t.row(vec![
            interval.to_string(),
            format!("{overhead:.4}"),
            format!("{wait:.2}"),
        ]);
    }
    format!(
        "Ablation: coordination interval — elasticity vs. efficiency (§V-B)\n\n{}",
        t.render()
    )
}

/// Scaling-strategy ablation on the §VI-B experiment: hybrid vs. pure
/// strong scaling (keep TBS 512 everywhere) vs. pure weak scaling without
/// the progressive LR rule.
pub fn ablation_scaling_strategy() -> String {
    let tb = Testbed::paper();
    let model = zoo::resnet50();
    let acc = AccuracyModel::resnet50_imagenet();
    let system = ElanSystem::new();
    let hybrid_rule = ScalingRule::ProgressiveLinear { ramp_iters: 100 };

    let phases_for = |tbs: [u32; 3]| {
        vec![
            ElasticPhase {
                start_epoch: 0,
                n_workers: 16,
                total_batch: tbs[0],
            },
            ElasticPhase {
                start_epoch: 30,
                n_workers: 32,
                total_batch: tbs[1],
            },
            ElasticPhase {
                start_epoch: 60,
                n_workers: 64,
                total_batch: tbs[2],
            },
        ]
    };
    let run = |phases: Vec<ElasticPhase>, rule: ScalingRule| {
        run_elastic_training(&ElasticRunConfig {
            model: &model,
            perf: &tb.perf,
            accuracy: &acc,
            rule,
            phases,
            total_epochs: 90,
            topology: &tb.topology,
            bandwidth: &tb.bandwidth,
            system: &system,
            coordination_interval: 10,
            seed: 42,
        })
    };

    let hybrid = run(phases_for([512, 1024, 2048]), hybrid_rule);
    let strong = run(phases_for([512, 512, 512]), hybrid_rule);
    let weak_no_rule = run(phases_for([512, 1024, 2048]), ScalingRule::None);

    let mut t = Table::new(vec![
        "strategy",
        "final accuracy",
        "total time",
        "time to 75%",
    ]);
    for (name, r) in [
        ("hybrid (paper)", &hybrid),
        ("always strong (TBS fixed 512)", &strong),
        ("weak without LR rule", &weak_no_rule),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:.2}%", r.final_accuracy * 100.0),
            format!("{:.0}s", r.total_time().as_secs_f64()),
            r.time_to_accuracy(0.75)
                .map_or("never".to_string(), |d| format!("{:.0}s", d.as_secs_f64())),
        ]);
    }
    format!(
        "Ablation: scaling strategies on elastic ResNet-50 \
         (hybrid keeps accuracy AND speed)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn topology_aware_replication_wins() {
        let s = super::ablation_replication();
        assert!(s.contains("speedup"));
    }

    #[test]
    fn interval_trades_overhead_for_latency() {
        let s = super::ablation_coordination_interval();
        assert!(s.contains("overhead"));
    }

    #[test]
    fn hybrid_dominates_alternatives() {
        let s = super::ablation_scaling_strategy();
        assert!(s.contains("hybrid (paper)"));
    }
}
