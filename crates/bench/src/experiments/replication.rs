//! Figs. 8, 9, 11 — links, the planner's worked example, S&R breakdown.

use elan_baselines::ShutdownRestart;
use elan_core::elasticity::AdjustmentRequest;
use elan_models::zoo;
use elan_sim::Bytes;
use elan_topology::{NodeId, ReplicationPlanner, Transport};

use crate::experiments::Testbed;
use crate::table::Table;

/// Fig. 8: effective bandwidth of P2P / SHM / NET by message size.
pub fn fig8_bandwidth() -> String {
    let tb = Testbed::paper();
    let mut t = Table::new(vec![
        "message size",
        "P2P (GB/s)",
        "SHM (GB/s)",
        "NET (GB/s)",
    ]);
    for kib in [4u64, 64, 1024, 16 * 1024, 262_144, 1_048_576] {
        let size = Bytes::from_kib(kib);
        let row = |tr: Transport| {
            format!(
                "{:.2}",
                tb.bandwidth
                    .effective_bandwidth(tr, size)
                    .as_gbytes_per_sec()
            )
        };
        t.row(vec![
            size.to_string(),
            row(Transport::P2p),
            row(Transport::Shm),
            row(Transport::Net),
        ]);
    }
    format!(
        "Fig. 8: bandwidth of three communication ways (P2P > SHM > NET)\n\n{}",
        t.render()
    )
}

/// Fig. 9: the worked replication example — workers A,B (same switch),
/// C (other socket), D (other node); E and F join.
pub fn fig9_planner_example() -> String {
    let tb = Testbed::paper();
    let topo = &tb.topology;
    let a = topo.gpu_at(NodeId(0), 0, 0, 0);
    let b = topo.gpu_at(NodeId(0), 0, 0, 1);
    let c = topo.gpu_at(NodeId(0), 1, 0, 0);
    let d = topo.gpu_at(NodeId(1), 0, 0, 0);
    let e = topo.gpu_at(NodeId(0), 1, 0, 1);
    let f = topo.gpu_at(NodeId(1), 0, 1, 0);
    let plan = ReplicationPlanner::new(topo)
        .plan(&[a, b, c, d], &[e, f])
        .expect("valid example");
    let names = [(a, "A"), (b, "B"), (c, "C"), (d, "D"), (e, "E"), (f, "F")];
    let name = |g| {
        names
            .iter()
            .find(|(id, _)| *id == g)
            .map_or("?", |(_, n)| *n)
    };
    let mut t = Table::new(vec!["transfer", "link level", "transport", "wave"]);
    for (i, tr) in plan.transfers().iter().enumerate() {
        let wave = plan
            .waves()
            .iter()
            .position(|w| w.contains(&i))
            .expect("every transfer is in a wave");
        t.row(vec![
            format!("{} -> {}", name(tr.src), name(tr.dst)),
            tr.level.to_string(),
            tr.transport.to_string(),
            (wave + 1).to_string(),
        ]);
    }
    let model = zoo::resnet50();
    let d_total = plan.duration(
        &tb.bandwidth,
        Bytes::new(model.parameters * 4 * 2),
        model.cpu_state_bytes(),
    );
    format!(
        "Fig. 9: topology-aware replication for the worked example\n\
         (A,B same switch; C other socket; D other node; E,F join)\n\n{}\n\
         Concurrent waves: {}; ResNet-50 state replication time: {}\n",
        t.render(),
        plan.waves().len(),
        d_total
    )
}

/// Fig. 11: the Shutdown-&-Restart time breakdown that motivates the
/// asynchronous coordination mechanism.
pub fn fig11_snr_breakdown() -> String {
    let tb = Testbed::paper();
    let snr = ShutdownRestart::new();
    let mut t = Table::new(vec![
        "model",
        "checkpoint",
        "shutdown",
        "start",
        "initialize",
        "load",
        "total",
    ]);
    for model in zoo::evaluation_models() {
        let ctx = tb.ctx(&model, 512);
        let b = snr.breakdown(&AdjustmentRequest::contiguous(16, 32), &ctx);
        t.row(vec![
            model.name.to_string(),
            format!("{:.2}s", b.checkpoint.as_secs_f64()),
            format!("{:.2}s", b.shutdown.as_secs_f64()),
            format!("{:.2}s", b.start.as_secs_f64()),
            format!("{:.2}s", b.initialize.as_secs_f64()),
            format!("{:.2}s", b.load.as_secs_f64()),
            format!("{:.2}s", b.total().as_secs_f64()),
        ]);
    }
    format!(
        "Fig. 11: time breakdown of S&R scale-out 16 -> 32 \
         (start + initialization dominate)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig8_preserves_ordering() {
        let s = super::fig8_bandwidth();
        assert!(s.contains("P2P"));
    }

    #[test]
    fn fig9_pairs_match_paper() {
        let s = super::fig9_planner_example();
        assert!(s.contains("C -> E"));
        assert!(s.contains("D -> F"));
    }

    #[test]
    fn fig11_renders_phases() {
        let s = super::fig11_snr_breakdown();
        assert!(s.contains("initialize"));
    }
}
