//! Figs. 1, 20, 21, 22 — elastic scheduling.

use elan_baselines::ShutdownRestart;
use elan_core::elasticity::{ElasticitySystem, IdealSystem};
use elan_core::ElanSystem;
use elan_sched::{generate_trace, run_trace, PolicyKind, SimConfig, TraceConfig};
use elan_sim::{SimDuration, Summary};

use crate::table::Table;

fn sim_config<'a>(
    policy: PolicyKind,
    system: &'a dyn ElasticitySystem,
    seed: u64,
) -> SimConfig<'a> {
    SimConfig {
        total_gpus: 128,
        policy,
        system,
        coordination_interval: 10,
        startup: SimDuration::from_secs(30),
        seed,
        capacity: None,
    }
}

/// Fig. 1: GPU utilization of one week under static scheduling — the
/// motivating fluctuation.
pub fn fig1_weekly_utilization() -> String {
    let jobs = generate_trace(&TraceConfig::one_week(1));
    let elan = ElanSystem::new();
    let result = run_trace(&sim_config(PolicyKind::Backfill, &elan, 1), &jobs);
    let series = result.utilization.downsample(28);
    let mut t = Table::new(vec!["day", "GPU utilization"]);
    for &(at, u) in series.points() {
        t.row(vec![
            format!("{:.2}", at.as_secs_f64() / 86_400.0),
            format!("{:>5.1}% {}", u * 100.0, "#".repeat((u * 40.0) as usize)),
        ]);
    }
    format!(
        "Fig. 1: GPU utilization over one week, static scheduling \
         ({} jobs; mean {:.1}%)\n\n{}",
        jobs.len(),
        result.utilization.time_weighted_mean() * 100.0,
        t.render()
    )
}

struct PolicyStats {
    jpt: Summary,
    jct: Summary,
    makespan: Summary,
    util: Summary,
}

fn run_policy(policy: PolicyKind, system: &dyn ElasticitySystem, seeds: &[u64]) -> PolicyStats {
    let mut jpt = Vec::new();
    let mut jct = Vec::new();
    let mut makespan = Vec::new();
    let mut util = Vec::new();
    for &seed in seeds {
        let jobs = generate_trace(&TraceConfig::paper_two_day(seed));
        let m = run_trace(&sim_config(policy, system, seed), &jobs).metrics();
        jpt.push(m.avg_jpt());
        jct.push(m.avg_jct());
        makespan.push(m.makespan.as_secs_f64());
        util.push(m.mean_utilization);
    }
    PolicyStats {
        jpt: Summary::from_values(&jpt),
        jct: Summary::from_values(&jct),
        makespan: Summary::from_values(&makespan),
        util: Summary::from_values(&util),
    }
}

/// Fig. 20: JPT / JCT / makespan for the four policies over three seeds
/// (mean ± std, as the paper's error bars).
pub fn fig20_policy_comparison() -> String {
    let elan = ElanSystem::new();
    let seeds = [11u64, 22, 33];
    let mut t = Table::new(vec![
        "policy",
        "avg JPT (s)",
        "avg JCT (s)",
        "makespan (s)",
        "utilization",
    ]);
    let mut stats = Vec::new();
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::ElasticFifo,
        PolicyKind::Backfill,
        PolicyKind::ElasticBackfill,
    ] {
        let s = run_policy(policy, &elan, &seeds);
        t.row(vec![
            policy.name().to_string(),
            format!("{:.0} ± {:.0}", s.jpt.mean(), s.jpt.std()),
            format!("{:.0} ± {:.0}", s.jct.mean(), s.jct.std()),
            format!("{:.0} ± {:.0}", s.makespan.mean(), s.makespan.std()),
            format!("{:.1}%", s.util.mean() * 100.0),
        ]);
        stats.push((policy, s));
    }
    let red = |a: f64, b: f64| (a - b) / a * 100.0;
    let fifo = &stats[0].1;
    let efifo = &stats[1].1;
    let bf = &stats[2].1;
    let ebf = &stats[3].1;
    format!(
        "Fig. 20: scheduling with and without elasticity, 3 seeds \
         (paper: JPT -43%+, JCT -25%+, makespan -21%+)\n\n{}\n\
         E-FIFO vs FIFO: JPT -{:.0}%, JCT -{:.0}%, makespan -{:.0}%\n\
         E-BF   vs BF:   JPT -{:.0}%, JCT -{:.0}%, makespan -{:.0}%\n",
        t.render(),
        red(fifo.jpt.mean(), efifo.jpt.mean()),
        red(fifo.jct.mean(), efifo.jct.mean()),
        red(fifo.makespan.mean(), efifo.makespan.mean()),
        red(bf.jpt.mean(), ebf.jpt.mean()),
        red(bf.jct.mean(), ebf.jct.mean()),
        red(bf.makespan.mean(), ebf.makespan.mean()),
    )
}

/// Fig. 21: GPU utilization timeline, static vs. elastic backfill.
pub fn fig21_utilization_timeline() -> String {
    let elan = ElanSystem::new();
    let jobs = generate_trace(&TraceConfig::paper_two_day(11));
    let bf = run_trace(&sim_config(PolicyKind::Backfill, &elan, 11), &jobs);
    let ebf = run_trace(&sim_config(PolicyKind::ElasticBackfill, &elan, 11), &jobs);
    let mut t = Table::new(vec!["hour", "BF", "E-BF"]);
    let sample = |r: &elan_sched::SimResult, hour: f64| {
        let target = hour * 3600.0;
        r.utilization
            .points()
            .iter()
            .rev()
            .find(|(at, _)| at.as_secs_f64() <= target)
            .map_or(0.0, |&(_, u)| u)
    };
    for h in (0..48).step_by(3) {
        t.row(vec![
            h.to_string(),
            format!("{:>5.1}%", sample(&bf, h as f64) * 100.0),
            format!("{:>5.1}%", sample(&ebf, h as f64) * 100.0),
        ]);
    }
    let last_finish = |r: &elan_sched::SimResult| {
        r.outcomes
            .iter()
            .map(|o| o.finished_at.as_secs_f64() / 3600.0)
            .fold(0.0f64, f64::max)
    };
    format!(
        "Fig. 21: GPU utilization over the two-day trace \
         (same work: BF drains by hour {:.0}, E-BF by hour {:.0})\n\n{}",
        last_finish(&bf),
        last_finish(&ebf),
        t.render()
    )
}

/// Fig. 22: E-BF scheduling under Elan vs. S&R vs. an ideal system.
///
/// Uses a moderate-load variant of the trace: with head-room in the
/// cluster the elastic policy adjusts jobs frequently, which is exactly
/// where slow (S&R) adjustments hurt.
pub fn fig22_system_comparison() -> String {
    let seeds = [11u64, 22, 33];
    let elan = ElanSystem::new();
    let snr = ShutdownRestart::new();
    let ideal = IdealSystem;
    let systems: [(&str, &dyn ElasticitySystem); 3] =
        [("Ideal", &ideal), ("Elan", &elan), ("S&R", &snr)];
    let mut t = Table::new(vec![
        "system",
        "avg JCT (s)",
        "makespan (s)",
        "JCT vs Ideal",
    ]);
    let mut base = 0.0;
    for (name, sys) in systems {
        let mut jct = Vec::new();
        let mut makespan = Vec::new();
        for &seed in &seeds {
            let mut trace_cfg = TraceConfig::paper_two_day(seed);
            trace_cfg.expected_jobs = 110; // moderate load: high churn
            let jobs = generate_trace(&trace_cfg);
            let m = run_trace(&sim_config(PolicyKind::ElasticBackfill, sys, seed), &jobs).metrics();
            jct.push(m.avg_jct());
            makespan.push(m.makespan.as_secs_f64());
        }
        let jct = Summary::from_values(&jct);
        let makespan = Summary::from_values(&makespan);
        if base == 0.0 {
            base = jct.mean();
        }
        t.row(vec![
            name.to_string(),
            format!("{:.0} ± {:.0}", jct.mean(), jct.std()),
            format!("{:.0} ± {:.0}", makespan.mean(), makespan.std()),
            format!("+{:.1}%", (jct.mean() - base) / base * 100.0),
        ]);
    }
    format!(
        "Fig. 22: the necessity of high-performance elasticity \
         (paper: Elan ~= Ideal; S&R JCT +6%)\n\n{}",
        t.render()
    )
}

/// Beyond the paper's figures: the transient-capacity (spot instance)
/// scenario §VI-C motivates — the cluster loses a third of its GPUs for a
/// few hours at a time, and only elastic jobs can shrink gracefully
/// instead of being evicted.
pub fn spot_capacity() -> String {
    use elan_sched::capacity::CapacitySchedule;
    let jobs = generate_trace(&TraceConfig::paper_two_day(11));
    let spot = CapacitySchedule::spot_pattern(128, 80, 12, 4, 48);
    let elan = ElanSystem::new();
    let snr = ShutdownRestart::new();

    let mut t = Table::new(vec![
        "policy / system",
        "avg JCT (s)",
        "evictions",
        "adjustments",
    ]);
    let combos: [(&str, PolicyKind, &dyn ElasticitySystem); 3] = [
        ("BF / S&R", PolicyKind::Backfill, &snr),
        ("E-BF / S&R", PolicyKind::ElasticBackfill, &snr),
        ("E-BF / Elan", PolicyKind::ElasticBackfill, &elan),
    ];
    for (name, policy, system) in combos {
        let mut cfg = sim_config(policy, system, 11);
        cfg.capacity = Some(&spot);
        let result = run_trace(&cfg, &jobs);
        let m = result.metrics();
        t.row(vec![
            name.to_string(),
            format!("{:.0}", m.avg_jct()),
            result.evictions.to_string(),
            result.total_adjustments.to_string(),
        ]);
    }
    format!(
        "Spot/transient capacity: 128 GPUs dipping to 80 for 4h every 12h\n\
         (elastic jobs shrink into dips; static jobs are evicted and requeued)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig1_renders() {
        let s = super::fig1_weekly_utilization();
        assert!(s.contains("GPU utilization"));
    }
}
