//! Figs. 3, 4, 17 — strong and weak scaling curves.

use elan_models::{zoo, PerfModel};

use crate::table::Table;

const WORKER_COUNTS: [u32; 6] = [2, 4, 8, 16, 32, 64];

/// Fig. 3: strong-scaling throughput (fixed total batch); throughput
/// rises then falls, and the optimum grows with the batch size.
///
/// The paper ran this analysis on V100 servers; we present the calibrated
/// production model (GTX 1080 Ti), whose smoother compute/communication
/// balance shows the same qualitative shapes. Swap in
/// `PerfModel::v100_testbed()` to see the faster GPU hitting the node-
/// boundary communication cliff earlier.
pub fn fig3_strong_scaling() -> String {
    let perf = PerfModel::paper_default();
    let mut out = String::from("Fig. 3: training throughput using strong scaling (samples/s)\n");
    for model in zoo::evaluation_models() {
        out.push_str(&format!("\n[{}]\n", model.name));
        let mut t = Table::new(vec![
            "TBS \\ workers",
            "2",
            "4",
            "8",
            "16",
            "32",
            "64",
            "N_opt",
        ]);
        for tbs in [512u32, 1024, 2048] {
            let mut row = vec![tbs.to_string()];
            for n in WORKER_COUNTS {
                if n <= tbs {
                    row.push(format!("{:.0}", perf.throughput(&model, n, tbs)));
                } else {
                    row.push("-".into());
                }
            }
            row.push(perf.optimal_workers(&model, tbs, 128).to_string());
            t.row(row);
        }
        out.push_str(&t.render());
    }
    out
}

/// Fig. 4: weak-scaling throughput (fixed per-worker batch) — near-linear
/// lines whose slope grows with the per-worker batch.
pub fn fig4_weak_scaling() -> String {
    let perf = PerfModel::paper_default();
    let mut out = String::from("Fig. 4: training throughput using weak scaling (samples/s)\n");
    for model in zoo::evaluation_models() {
        out.push_str(&format!("\n[{}]\n", model.name));
        let mut t = Table::new(vec![
            "batch/worker \\ workers",
            "2",
            "4",
            "8",
            "16",
            "32",
            "64",
            "efficiency@64",
        ]);
        for b in [32u32, 64, 128] {
            let mut row = vec![b.to_string()];
            let t2 = perf.throughput(&model, 2, 2 * b);
            let mut t64 = 0.0;
            for n in WORKER_COUNTS {
                let thr = perf.throughput(&model, n, n * b);
                if n == 64 {
                    t64 = thr;
                }
                row.push(format!("{thr:.0}"));
            }
            row.push(format!("{:.0}%", t64 / (t2 * 32.0) * 100.0));
            t.row(row);
        }
        out.push_str(&t.render());
    }
    out
}

/// Fig. 17: ResNet-50 strong-scaling curves on the production testbed —
/// the curves that guided the elastic configuration (512→16, 1024→32,
/// 2048→64).
pub fn fig17_resnet_strong_scaling() -> String {
    let perf = PerfModel::paper_default();
    let model = zoo::resnet50();
    let mut out =
        String::from("Fig. 17: ResNet-50 strong scaling on the production testbed (samples/s)\n\n");
    let mut t = Table::new(vec![
        "TBS \\ workers",
        "8",
        "16",
        "24",
        "32",
        "48",
        "64",
        "96",
        "N_opt",
        "paper config",
    ]);
    for (tbs, cfg) in [(512u32, 16u32), (1024, 32), (2048, 64)] {
        let mut row = vec![tbs.to_string()];
        for n in [8u32, 16, 24, 32, 48, 64, 96] {
            row.push(format!("{:.0}", perf.throughput(&model, n, tbs)));
        }
        row.push(perf.optimal_workers(&model, tbs, 256).to_string());
        row.push(format!("{cfg} workers"));
        t.row(row);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn reports_render() {
        assert!(super::fig3_strong_scaling().contains("N_opt"));
        assert!(super::fig4_weak_scaling().contains("efficiency@64"));
        assert!(super::fig17_resnet_strong_scaling().contains("paper config"));
    }
}
