//! One module per group of paper artifacts.

pub mod ablations;
pub mod accuracy;
pub mod adjustment;
pub mod replication;
pub mod scaling;
pub mod sched;
pub mod zoo;

use elan_core::elasticity::AdjustmentContext;
use elan_models::{ModelSpec, PerfModel};
use elan_topology::{BandwidthModel, ClusterSpec, Topology};

/// Shared fixtures: the paper's production testbed.
pub struct Testbed {
    /// 8 servers x 8 GPUs.
    pub topology: Topology,
    /// Fig. 8-calibrated link model.
    pub bandwidth: BandwidthModel,
    /// 1080Ti + InfiniBand performance model.
    pub perf: PerfModel,
}

impl Testbed {
    /// Builds the standard testbed.
    pub fn paper() -> Self {
        Testbed {
            topology: ClusterSpec::paper_testbed().build(),
            bandwidth: BandwidthModel::paper_default(),
            perf: PerfModel::paper_default(),
        }
    }

    /// An adjustment context over this testbed for `model`.
    pub fn ctx<'a>(&'a self, model: &'a ModelSpec, total_batch: u32) -> AdjustmentContext<'a> {
        AdjustmentContext {
            topology: &self.topology,
            bandwidth: &self.bandwidth,
            perf: &self.perf,
            model,
            total_batch,
            coordination_interval: 10,
            seed: 42,
        }
    }
}
