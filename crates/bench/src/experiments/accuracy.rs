//! Figs. 5, 18, 19 and Table IV — batch size, accuracy, time-to-solution.

use elan_core::job::{resnet50_configs, run_elastic_training, ElasticRunConfig};
use elan_core::ElanSystem;
use elan_models::convergence::ScalingRule;
use elan_models::{zoo, AccuracyModel};
use elan_sim::SimDuration;

use crate::experiments::Testbed;
use crate::table::Table;

/// Fig. 5: MobileNet-v2/Cifar100 top-1 accuracy versus total batch size,
/// with the default (fixed) learning rate and with the hybrid rule.
pub fn fig5_batch_size_accuracy() -> String {
    let acc = AccuracyModel::mobilenet_v2_cifar100();
    let hybrid = ScalingRule::ProgressiveLinear { ramp_iters: 100 };
    let mut t = Table::new(vec!["total batch", "Default", "Hybrid"]);
    for p in 7..=12u32 {
        let tbs = 1u32 << p;
        t.row(vec![
            format!("2^{p} = {tbs}"),
            format!("{:.2}%", acc.final_accuracy(tbs, ScalingRule::None) * 100.0),
            format!("{:.2}%", acc.final_accuracy(tbs, hybrid) * 100.0),
        ]);
    }
    format!(
        "Fig. 5: MobileNet-v2 on Cifar100, accuracy vs. total batch size\n\n{}",
        t.render()
    )
}

/// The three §VI-B runs (shared by Fig. 18/19/Table IV).
fn run_three() -> [(String, elan_core::job::ElasticRunResult); 3] {
    let tb = Testbed::paper();
    let model = zoo::resnet50();
    let acc = AccuracyModel::resnet50_imagenet();
    let system = ElanSystem::new();
    let mk = |phases| {
        run_elastic_training(&ElasticRunConfig {
            model: &model,
            perf: &tb.perf,
            accuracy: &acc,
            rule: ScalingRule::ProgressiveLinear { ramp_iters: 100 },
            phases,
            total_epochs: 90,
            topology: &tb.topology,
            bandwidth: &tb.bandwidth,
            system: &system,
            coordination_interval: 10,
            seed: 42,
        })
    };
    [
        (
            "512 (16)".to_string(),
            mk(resnet50_configs::static_512_16()),
        ),
        (
            "512-2048 (Elastic)".to_string(),
            mk(resnet50_configs::elastic_512_2048()),
        ),
        (
            "512-2048 (64)".to_string(),
            mk(resnet50_configs::fixed64_512_2048()),
        ),
    ]
}

/// Fig. 18: final top-1 accuracy of static vs. elastic training.
pub fn fig18_elastic_accuracy() -> String {
    let runs = run_three();
    let mut t = Table::new(vec![
        "configuration",
        "top-1 accuracy",
        "epochs",
        "wall time",
    ]);
    for (name, r) in &runs {
        t.row(vec![
            name.clone(),
            format!("{:.2}%", r.final_accuracy * 100.0),
            r.epoch_times.len().to_string(),
            format!("{:.0}s", r.total_time().as_secs_f64()),
        ]);
    }
    format!(
        "Fig. 18: top-1 accuracy, static vs. elastic (paper: 75.89% vs 75.87%)\n\n{}",
        t.render()
    )
}

/// Table IV (and Fig. 19): time-to-solution for three accuracy targets
/// plus the elastic speedup over the static baseline.
pub fn tab4_time_to_solution() -> String {
    let runs = run_three();
    let mut t = Table::new(vec![
        "target accuracy",
        "512 (16)",
        "512-2048 (Elastic)",
        "512-2048 (64)",
        "speedup (Elastic vs static)",
    ]);
    for target in [0.745, 0.750, 0.755] {
        let times: Vec<Option<SimDuration>> = runs
            .iter()
            .map(|(_, r)| r.time_to_accuracy(target))
            .collect();
        let fmt = |t: &Option<SimDuration>| {
            t.map_or("n/a".to_string(), |d| format!("{:.0}s", d.as_secs_f64()))
        };
        let speedup = match (&times[0], &times[1]) {
            (Some(a), Some(b)) => format!("{:.2}x", a.as_secs_f64() / b.as_secs_f64()),
            _ => "n/a".to_string(),
        };
        t.row(vec![
            format!("{:.1}%", target * 100.0),
            fmt(&times[0]),
            fmt(&times[1]),
            fmt(&times[2]),
            speedup,
        ]);
    }
    let mut out = format!(
        "Table IV / Fig. 19: time to solution (paper: ~20% speedup; \
         dynamic-batch-on-fixed-64 barely gains)\n\n{}",
        t.render()
    );
    // The resource-efficiency view of "elasticity is necessary": dynamic
    // batches on fixed 64 workers burn idle GPU-hours at small batches.
    let worker_plan: [&[(u32, u32)]; 3] = [&[(0, 16)], &[(0, 16), (30, 32), (60, 64)], &[(0, 64)]];
    let mut cost = Table::new(vec!["configuration", "GPU-hours (full run)"]);
    for ((name, r), plan) in runs.iter().zip(worker_plan) {
        let hours: f64 = r
            .epoch_times
            .iter()
            .enumerate()
            .map(|(e, dt)| {
                let n = plan
                    .iter()
                    .rev()
                    .find(|(start, _)| *start as usize <= e)
                    .expect("covered")
                    .1;
                dt.as_secs_f64() * n as f64 / 3600.0
            })
            .sum();
        cost.row(vec![name.clone(), format!("{hours:.0}")]);
    }
    out.push('\n');
    out.push_str(&cost.render());
    // Fig. 19 series: accuracy vs. wall time, downsampled.
    out.push_str("\nFig. 19 series (accuracy at selected wall times):\n");
    let mut series = Table::new(vec![
        "configuration",
        "25% time",
        "50% time",
        "75% time",
        "end",
    ]);
    for (name, r) in &runs {
        let pts = r.accuracy_vs_time();
        let total = r.total_time().as_secs_f64();
        let at = |frac: f64| {
            let target = total * frac;
            pts.iter()
                .find(|(t, _)| t.as_secs_f64() >= target)
                .map_or("-".to_string(), |(_, a)| format!("{:.1}%", a * 100.0))
        };
        series.row(vec![name.clone(), at(0.25), at(0.5), at(0.75), at(1.0)]);
    }
    out.push_str(&series.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig5_shows_both_rules() {
        let s = super::fig5_batch_size_accuracy();
        assert!(s.contains("Default") && s.contains("Hybrid"));
        assert!(s.contains("2^12"));
    }

    #[test]
    fn fig18_and_tab4_render() {
        assert!(super::fig18_elastic_accuracy().contains("512-2048 (Elastic)"));
        let t4 = super::tab4_time_to_solution();
        assert!(t4.contains("speedup"));
        assert!(t4.contains("74.5%"));
    }
}
