//! Figs. 14, 15, 16 — runtime overhead, adjustment latency, Litz.

use elan_baselines::{Litz, ShutdownRestart};
use elan_core::coordination::{run_coordination, CoordinationConfig};
use elan_core::elasticity::{AdjustmentRequest, ElasticitySystem};
use elan_core::ElanSystem;
use elan_models::zoo;
use elan_sim::SimDuration;

use crate::experiments::Testbed;
use crate::table::Table;

/// Fig. 14: Elan's runtime overhead when no adjustments happen —
/// analytically from the cost model and empirically from the executable
/// coordination protocol.
pub fn fig14_runtime_overhead() -> String {
    let tb = Testbed::paper();
    let sys = ElanSystem::new();
    let mut t = Table::new(vec!["model", "2", "4", "8", "16", "32", "64"]);
    for model in zoo::evaluation_models() {
        let ctx = tb.ctx(&model, 512);
        let mut row = vec![model.name.to_string()];
        for n in [2u32, 4, 8, 16, 32, 64] {
            row.push(format!("{:.3}‰", sys.runtime_overhead(&ctx, n) * 1000.0));
        }
        t.row(row);
    }
    // Empirical cross-check: run the live protocol without adjustments.
    let cfg = CoordinationConfig::baseline(8, 50);
    let out = run_coordination(&cfg);
    let training = cfg.round_duration * cfg.rounds_limit;
    let worst = out
        .workers
        .values()
        .map(|w| w.stalled.as_secs_f64() / training.as_secs_f64())
        .fold(0.0f64, f64::max);
    format!(
        "Fig. 14: Elan runtime overhead (permille of training time; paper: <3‰)\n\n{}\n\
         Protocol-simulation cross-check (8 workers, 50 rounds): worst stall {:.3}‰\n",
        t.render(),
        worst * 1000.0
    )
}

/// Fig. 15: migration / scale-in / scale-out latency, Elan vs. S&R, five
/// models (A–E) at several scales.
pub fn fig15_adjustment_performance() -> String {
    let tb = Testbed::paper();
    let elan = ElanSystem::new();
    let snr = ShutdownRestart::new();
    type Case = (&'static str, fn() -> AdjustmentRequest);
    let cases: [Case; 6] = [
        ("migration 16->16", || AdjustmentRequest::migration(16, 16)),
        ("migration 32->32", || AdjustmentRequest::migration(32, 32)),
        ("scale-in 32->16", || AdjustmentRequest::contiguous(32, 16)),
        ("scale-in 64->32", || AdjustmentRequest::contiguous(64, 32)),
        ("scale-out 16->32", || AdjustmentRequest::contiguous(16, 32)),
        ("scale-out 32->64", || AdjustmentRequest::contiguous(32, 64)),
    ];
    let mut out = String::from(
        "Fig. 15: adjustment time (training pause), Elan vs. S&R\n\
         (paper: Elan ~1s everywhere; S&R ~4x slower on migration, 10-80x on scaling)\n",
    );
    for model in zoo::evaluation_models() {
        out.push_str(&format!("\n[{}]\n", model.name));
        let mut t = Table::new(vec!["case", "Elan", "S&R", "S&R / Elan"]);
        for (name, mk) in &cases {
            let req = mk();
            let ctx = tb.ctx(&model, 512);
            let e = elan.adjust(&req, &ctx).pause;
            let s = snr.adjust(&req, &ctx).pause;
            t.row(vec![
                name.to_string(),
                format!("{:.2}s", e.as_secs_f64()),
                format!("{:.2}s", s.as_secs_f64()),
                format!("{:.1}x", s.as_secs_f64() / e.as_secs_f64()),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Fig. 16: Litz-2/Litz-4 training throughput relative to Elan.
pub fn fig16_litz_throughput() -> String {
    let tb = Testbed::paper();
    let mut out = String::from(
        "Fig. 16: relative training throughput of Litz vs. Elan \
         (paper: reductions up to >90%)\n",
    );
    for model in zoo::evaluation_models() {
        out.push_str(&format!("\n[{}]\n", model.name));
        let mut t = Table::new(vec!["workers", "Litz-2", "Litz-4"]);
        for n in [2u32, 8, 16, 32, 64] {
            let ctx = tb.ctx(&model, n * 32);
            t.row(vec![
                n.to_string(),
                format!("{:.1}%", Litz::litz2().relative_throughput(&ctx, n) * 100.0),
                format!("{:.1}%", Litz::litz4().relative_throughput(&ctx, n) * 100.0),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// The Fig. 15 Elan latencies as raw durations (used by the integration
/// tests for shape assertions).
pub fn elan_pauses() -> Vec<(String, SimDuration)> {
    let tb = Testbed::paper();
    let elan = ElanSystem::new();
    let mut out = Vec::new();
    for model in zoo::evaluation_models() {
        for req in [
            AdjustmentRequest::migration(16, 16),
            AdjustmentRequest::contiguous(16, 32),
            AdjustmentRequest::contiguous(32, 16),
        ] {
            let ctx = tb.ctx(&model, 512);
            out.push((
                format!("{} {req}", model.name),
                elan.adjust(&req, &ctx).pause,
            ));
        }
    }
    out
}

/// Straggler mitigation (§VII): one worker's GPU degrades to a fraction
/// of its speed; data-parallel training runs at the straggler's pace.
/// Elan migrates the straggler's shard to a healthy GPU in ~1 s; S&R
/// restarts the whole job. The table shows time lost per mitigation and
/// the break-even degradation each system needs to be worth invoking.
pub fn straggler_mitigation() -> String {
    let tb = Testbed::paper();
    let model = zoo::resnet50();
    let ctx = tb.ctx(&model, 512);
    let elan = ElanSystem::new();
    let snr = ShutdownRestart::new();

    let n = 16u32;
    let healthy_iter = tb.perf.iteration_time(&model, n, 512);
    // Migrate the straggler's single worker to a spare GPU.
    let req = elan_core::elasticity::AdjustmentRequest::new(
        (0..n).map(elan_topology::GpuId).collect(),
        (1..=n).map(elan_topology::GpuId).collect(),
    )
    .expect("single-worker migration");
    let elan_cost = elan.adjust(&req, &ctx).pause;
    let snr_cost = snr.adjust(&req, &ctx).pause;

    let mut t = Table::new(vec![
        "straggler slowdown",
        "lost per iteration",
        "Elan pays off after",
        "S&R pays off after",
    ]);
    for slowdown in [1.25f64, 1.5, 2.0, 4.0] {
        let straggler_iter = healthy_iter.mul_f64(slowdown);
        let lost = straggler_iter.saturating_sub(healthy_iter);
        let iters = |pause: SimDuration| {
            format!(
                "{:.0} iters",
                (pause.as_secs_f64() / lost.as_secs_f64()).ceil()
            )
        };
        t.row(vec![
            format!("{slowdown}x"),
            format!("{:.0}ms", lost.as_millis_f64()),
            iters(elan_cost),
            iters(snr_cost),
        ]);
    }
    format!(
        "Straggler mitigation via migration (§VII): iteration time follows the\n\
         slowest worker. Migration pause: Elan {:.2}s vs S&R {:.2}s — Elan\n\
         breaks even within seconds of training, S&R within tens of minutes.\n\n{}",
        elan_cost.as_secs_f64(),
        snr_cost.as_secs_f64(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig14_renders_and_is_small() {
        let s = super::fig14_runtime_overhead();
        assert!(s.contains("cross-check"));
    }

    #[test]
    fn fig15_covers_all_cases() {
        let s = super::fig15_adjustment_performance();
        assert!(s.contains("migration 16->16"));
        assert!(s.contains("scale-out 32->64"));
    }

    #[test]
    fn fig16_has_both_variants() {
        let s = super::fig16_litz_throughput();
        assert!(s.contains("Litz-2") && s.contains("Litz-4"));
    }

    #[test]
    fn straggler_scenario_renders() {
        let s = super::straggler_mitigation();
        assert!(s.contains("breaks even"));
        assert!(s.contains("4x"));
    }
}
