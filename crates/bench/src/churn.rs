//! Open-membership churn stress: a scripted join/leave/crash storm over
//! the epoch machine (DESIGN.md §17), sized to thousands of members on
//! virtual time.
//!
//! The storm itself is [`elan_rt::epoch::run_churn`] — a pure function
//! of its config — so the bench's job is to size it (10 000 identities
//! by default), run it twice, and prove three things:
//!
//! 1. **determinism** — both runs produce the same journal hash,
//! 2. **safety** — the epoch-safety auditor passes over the retained
//!    journal of every run,
//! 3. **speed** — the whole thing fits the wall-clock budget
//!    ([`WALL_BUDGET_MS`]), which [`validate_json`] enforces on the
//!    emitted `BENCH_churn.json` so CI trips if the storm ever slows
//!    into the minutes.
//!
//! Like the dataplane report, the JSON emitter is a few `format!`s and
//! validation reuses the in-crate recursive-descent parser — no
//! external dependencies.

use std::time::Instant;

use elan_rt::epoch::{run_churn, ChurnConfig};
use elan_rt::safety::check_epoch_safety;

use crate::dataplane::{parse_json, Json};

/// Wall-clock budget for the whole bench (all runs), in milliseconds.
/// The 10k-member storm must stay interactive — this is a stress test
/// of the machine's bookkeeping, not a soak.
pub const WALL_BUDGET_MS: u64 = 30_000;

/// A full churn-bench run, serializable to `BENCH_churn.json`.
#[derive(Debug, Clone)]
pub struct Report {
    /// Member population of the storm.
    pub population: u32,
    /// Seed of the storm.
    pub seed: u64,
    /// Simulation steps per run.
    pub steps: u64,
    /// Virtual milliseconds covered per run.
    pub virtual_ms: u64,
    /// Identical runs executed (≥ 2 proves determinism).
    pub runs: u32,
    /// Wall-clock total across all runs, ms.
    pub wall_ms: u64,
    /// All runs produced the same journal hash.
    pub deterministic: bool,
    /// The (shared) journal hash, as `0x…` hex.
    pub journal_hash: u64,
    /// The epoch-safety auditor's verdict over every run's journal.
    pub epoch_safety_ok: bool,
    /// `Train` phases entered (epochs that actually trained).
    pub epochs_trained: u64,
    /// Joiners admitted by witness vote.
    pub admitted: u64,
    /// Joiners evicted by witness vote or warmup timeout.
    pub evicted: u64,
    /// Join attempts deferred to a later epoch.
    pub deferred: u64,
    /// Announces/claims swallowed by scripted partition windows.
    pub partitioned: u64,
    /// Voluntary leaves scripted.
    pub leaves: u64,
    /// Crashes scripted.
    pub crashes: u64,
    /// Peak concurrent membership.
    pub peak_members: usize,
}

/// Runs the storm `runs` times and folds the evidence into a [`Report`].
///
/// The report is only as good as its checks: `deterministic` is the
/// cross-run hash comparison and `epoch_safety_ok` is the auditor over
/// every run's retained journal — both are also hard-required by
/// [`validate_json`], so an emitted report that failed either cannot
/// pass the CI smoke gate.
pub fn run(population: u32, seed: u64, runs: u32, mut progress: impl FnMut(&str)) -> Report {
    assert!(runs >= 1, "need at least one run");
    let cfg = ChurnConfig::sized(population, seed);
    let t0 = Instant::now();
    let mut reports = Vec::new();
    let mut safety_ok = true;
    for r in 0..runs {
        let rep = run_churn(&cfg);
        let audit = check_epoch_safety(&rep.events);
        if !audit.is_safe() {
            progress(&format!("run {r}: epoch-safety VIOLATION: {audit}"));
            safety_ok = false;
        }
        progress(&format!(
            "run {r}: pop={} steps={} virtual={}ms hash={:#018x} admitted={} evicted={} deferred={} epochs={} peak={}",
            rep.population, rep.steps, rep.virtual_ms, rep.journal_hash,
            rep.admitted, rep.evicted, rep.deferred, rep.epochs_trained, rep.peak_members
        ));
        reports.push(rep);
    }
    let wall_ms = t0.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
    let deterministic = reports
        .iter()
        .all(|r| r.journal_hash == reports[0].journal_hash);
    let first = &reports[0];
    Report {
        population,
        seed,
        steps: first.steps,
        virtual_ms: first.virtual_ms,
        runs,
        wall_ms,
        deterministic,
        journal_hash: first.journal_hash,
        epoch_safety_ok: safety_ok,
        epochs_trained: first.epochs_trained,
        admitted: first.admitted,
        evicted: first.evicted,
        deferred: first.deferred,
        partitioned: first.partitioned,
        leaves: first.leaves,
        crashes: first.crashes,
        peak_members: first.peak_members,
    }
}

impl Report {
    /// Serializes the report as pretty-printed JSON (schema version 1).
    ///
    /// `journal_hash` is emitted as a hex *string*: the validator's JSON
    /// numbers are `f64`, which cannot hold a full 64-bit hash.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema_version\": 1,\n");
        s.push_str(&format!("  \"population\": {},\n", self.population));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"steps\": {},\n", self.steps));
        s.push_str(&format!("  \"virtual_ms\": {},\n", self.virtual_ms));
        s.push_str(&format!("  \"runs\": {},\n", self.runs));
        s.push_str(&format!("  \"wall_ms\": {},\n", self.wall_ms));
        s.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        s.push_str(&format!(
            "  \"journal_hash\": \"{:#018x}\",\n",
            self.journal_hash
        ));
        s.push_str(&format!(
            "  \"epoch_safety\": \"{}\",\n",
            if self.epoch_safety_ok {
                "ok"
            } else {
                "violated"
            }
        ));
        s.push_str(&format!("  \"epochs_trained\": {},\n", self.epochs_trained));
        s.push_str(&format!("  \"admitted\": {},\n", self.admitted));
        s.push_str(&format!("  \"evicted\": {},\n", self.evicted));
        s.push_str(&format!("  \"deferred\": {},\n", self.deferred));
        s.push_str(&format!("  \"partitioned\": {},\n", self.partitioned));
        s.push_str(&format!("  \"leaves\": {},\n", self.leaves));
        s.push_str(&format!("  \"crashes\": {},\n", self.crashes));
        s.push_str(&format!("  \"peak_members\": {}\n", self.peak_members));
        s.push_str("}\n");
        s
    }
}

/// Validates a `BENCH_churn.json` document: schema keys present and
/// well-typed, the storm non-trivial (members joined *and* trained),
/// `deterministic` true, `epoch_safety` `"ok"`, and the wall time
/// within [`WALL_BUDGET_MS`].
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let num = |key: &str| -> Result<f64, String> {
        let v = doc
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric key {key:?}"))?;
        if v.is_finite() && v >= 0.0 {
            Ok(v)
        } else {
            Err(format!(
                "key {key:?} must be non-negative and finite, got {v}"
            ))
        }
    };
    let schema = num("schema_version")?;
    if schema != 1.0 {
        return Err(format!("bad schema_version {schema} (need 1)"));
    }
    for key in ["population", "steps", "virtual_ms", "runs"] {
        if num(key)? < 1.0 {
            return Err(format!("key {key:?} must be >= 1"));
        }
    }
    num("seed")?;
    for key in [
        "admitted",
        "evicted",
        "deferred",
        "partitioned",
        "leaves",
        "crashes",
    ] {
        num(key)?;
    }
    // A storm where nobody was admitted or no epoch trained measured
    // nothing — reject rather than let a dead harness look green.
    if num("admitted")? < 1.0 {
        return Err("storm admitted nobody".into());
    }
    if num("epochs_trained")? < 1.0 {
        return Err("storm never entered Train".into());
    }
    if num("peak_members")? < 1.0 {
        return Err("membership never grew".into());
    }
    let wall = num("wall_ms")?;
    if wall > WALL_BUDGET_MS as f64 {
        return Err(format!(
            "wall_ms {wall} exceeds the {WALL_BUDGET_MS} ms budget"
        ));
    }
    match doc.get("deterministic") {
        Some(Json::Bool(true)) => {}
        other => return Err(format!("deterministic must be true, got {other:?}")),
    }
    match doc.get("epoch_safety") {
        Some(Json::Str(s)) if s == "ok" => {}
        other => return Err(format!("epoch_safety must be \"ok\", got {other:?}")),
    }
    match doc.get("journal_hash") {
        Some(Json::Str(h)) if h.starts_with("0x") && h.len() == 18 => {}
        other => return Err(format!("bad journal_hash: {other:?}")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_storm_emits_valid_json() {
        let report = run(200, 11, 2, |_| {});
        assert!(report.deterministic, "same config, different journals");
        assert!(report.epoch_safety_ok);
        validate_json(&report.to_json()).expect("emitted JSON validates");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("not json").is_err());
        let good = run(200, 12, 1, |_| {}).to_json();
        validate_json(&good).expect("fixture validates");
        // A non-deterministic run must not validate.
        let bad = good.replace("\"deterministic\": true", "\"deterministic\": false");
        assert!(validate_json(&bad).unwrap_err().contains("deterministic"));
        // A safety violation must not validate.
        let bad = good.replace("\"epoch_safety\": \"ok\"", "\"epoch_safety\": \"violated\"");
        assert!(validate_json(&bad).unwrap_err().contains("epoch_safety"));
        // Blowing the wall budget must not validate.
        let wall = format!("\"wall_ms\": {}", WALL_BUDGET_MS + 1);
        let bad = regex_free_wall_replace(&good, &wall);
        assert!(validate_json(&bad).unwrap_err().contains("budget"));
        // An inert storm must not validate.
        let bad = regex_free_admitted_replace(&good, "\"admitted\": 0");
        assert!(validate_json(&bad).unwrap_err().contains("admitted nobody"));
    }

    /// Replaces the `wall_ms` line whatever its measured value was.
    fn regex_free_wall_replace(doc: &str, with: &str) -> String {
        splice_line(doc, "\"wall_ms\":", with)
    }

    /// Replaces the `admitted` line whatever its measured value was.
    fn regex_free_admitted_replace(doc: &str, with: &str) -> String {
        splice_line(doc, "\"admitted\":", with)
    }

    fn splice_line(doc: &str, key: &str, with: &str) -> String {
        doc.lines()
            .map(|l| {
                if l.trim_start().starts_with(key) {
                    let comma = if l.trim_end().ends_with(',') { "," } else { "" };
                    format!("  {with}{comma}")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn same_seed_same_hash_across_processes_worth_of_runs() {
        let a = run(150, 77, 1, |_| {});
        let b = run(150, 77, 1, |_| {});
        assert_eq!(a.journal_hash, b.journal_hash);
        assert_eq!(a.admitted, b.admitted);
    }
}
