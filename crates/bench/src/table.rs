//! Minimal aligned-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use bench::Table;
///
/// let mut t = Table::new(vec!["model", "params"]);
/// t.row(vec!["ResNet-50".into(), "25.6M".into()]);
/// let s = t.render();
/// assert!(s.contains("ResNet-50"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        emit(&sep, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a       long-header"));
        assert!(lines[1].starts_with("------  -----------"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
    }
}
