//! The benchmark harness regenerating every table and figure of the Elan
//! paper's evaluation (§III and §VI).
//!
//! Each experiment is a pure function returning both printable output and
//! structured data, so the `repro` binary renders the paper's artifacts
//! and the integration tests assert their qualitative shapes. See
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record.

pub mod churn;
pub mod dataplane;
pub mod experiments;
pub mod table;

pub use table::Table;

/// Every experiment id, in paper order, plus the ablations.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig1",
    "tab1",
    "tab2",
    "fig3",
    "fig4",
    "fig5",
    "fig8",
    "fig9",
    "fig11",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "tab4",
    "fig20",
    "fig21",
    "fig22",
    "ablation-replication",
    "ablation-interval",
    "ablation-scaling",
    "spot",
    "straggler",
];

/// Runs one experiment by id and returns its rendered report.
///
/// # Errors
///
/// Returns an error naming the unknown id.
pub fn run_experiment(id: &str) -> Result<String, String> {
    match id {
        "fig1" => Ok(experiments::sched::fig1_weekly_utilization()),
        "tab1" => Ok(experiments::zoo::tab1_model_zoo()),
        "tab2" => Ok(experiments::zoo::tab2_state_characteristics()),
        "fig3" => Ok(experiments::scaling::fig3_strong_scaling()),
        "fig4" => Ok(experiments::scaling::fig4_weak_scaling()),
        "fig5" => Ok(experiments::accuracy::fig5_batch_size_accuracy()),
        "fig8" => Ok(experiments::replication::fig8_bandwidth()),
        "fig9" => Ok(experiments::replication::fig9_planner_example()),
        "fig11" => Ok(experiments::replication::fig11_snr_breakdown()),
        "fig14" => Ok(experiments::adjustment::fig14_runtime_overhead()),
        "fig15" => Ok(experiments::adjustment::fig15_adjustment_performance()),
        "fig16" => Ok(experiments::adjustment::fig16_litz_throughput()),
        "fig17" => Ok(experiments::scaling::fig17_resnet_strong_scaling()),
        "fig18" => Ok(experiments::accuracy::fig18_elastic_accuracy()),
        "tab4" | "fig19" => Ok(experiments::accuracy::tab4_time_to_solution()),
        "fig20" => Ok(experiments::sched::fig20_policy_comparison()),
        "fig21" => Ok(experiments::sched::fig21_utilization_timeline()),
        "fig22" => Ok(experiments::sched::fig22_system_comparison()),
        "ablation-replication" => Ok(experiments::ablations::ablation_replication()),
        "ablation-interval" => Ok(experiments::ablations::ablation_coordination_interval()),
        "ablation-scaling" => Ok(experiments::ablations::ablation_scaling_strategy()),
        "spot" => Ok(experiments::sched::spot_capacity()),
        "straggler" => Ok(experiments::adjustment::straggler_mitigation()),
        other => Err(format!(
            "unknown experiment '{other}'; known: {}",
            ALL_EXPERIMENTS.join(", ")
        )),
    }
}
