//! Data-plane benchmarks: allreduce throughput and state-replication
//! makespan, chunked vs. the naive pre-overhaul baselines.
//!
//! This is the measurement side of the data-plane performance overhaul:
//! the live runtime's chunked cooperative [`CommGroup`] and chunked,
//! `Arc`-shared state replication are raced against the exact code they
//! replaced — the flat lock-held [`NaiveCommGroup`] and the
//! clone-both-buffers-per-destination monolithic transfer — on the same
//! inputs. Results serialize to `BENCH_dataplane.json` (see
//! [`Report::to_json`]) so CI and the README can track the trajectory.
//!
//! Everything here is free of external dependencies: the JSON emitter is
//! a few `format!`s, and [`validate_json`] carries a small recursive-
//! descent parser so the CI smoke job can check the schema offline.

use std::sync::Barrier;
use std::thread;
use std::time::Instant;

use elan_core::obs::AdjustmentPhase;
use elan_core::state::WorkerId;
use elan_rt::comm::{naive::NaiveCommGroup, AllreduceOutcome, CommGroup};
use elan_rt::worker::{build_state_chunks, SnapshotAssembly};
use elan_rt::{ElasticRuntime, RuntimeConfig};

/// Warm-up rounds excluded from every allreduce timing (they also fill
/// the chunked group's buffer pool, so the timed region is the
/// zero-allocation steady state).
const WARMUP_ROUNDS: u64 = 2;

/// One allreduce measurement: both implementations on identical inputs.
#[derive(Debug, Clone, Copy)]
pub struct AllreducePoint {
    /// Workers in the group.
    pub world: u32,
    /// Elements per gradient vector.
    pub len: usize,
    /// Timed rounds (after warm-up).
    pub rounds: u64,
    /// Naive flat allreduce throughput, in contributed elements/second
    /// (`world × len × rounds / elapsed`).
    pub naive_elems_per_s: f64,
    /// Chunked cooperative allreduce throughput, same metric.
    pub chunked_elems_per_s: f64,
}

impl AllreducePoint {
    /// Chunked over naive.
    pub fn speedup(&self) -> f64 {
        self.chunked_elems_per_s / self.naive_elems_per_s
    }
}

/// One replication measurement: monolithic vs. chunked makespan, with the
/// chunked path split into its two phases.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationPoint {
    /// Elements per state buffer (params and momentum each).
    pub param_elems: usize,
    /// Destinations served at the boundary.
    pub destinations: usize,
    /// Elements per chunk in the chunked path.
    pub chunk_elems: usize,
    /// Monolithic makespan (clone both buffers per destination), ms.
    pub monolithic_ms: f64,
    /// Chunked makespan (one chunking pass, `Arc`-shared), ms.
    pub chunked_ms: f64,
    /// Chunked phase ①: the once-per-boundary chunking pass, ms.
    pub chunked_prepare_ms: f64,
    /// Chunked phase ②: per-destination chunk assembly/apply, ms.
    pub chunked_apply_ms: f64,
}

impl ReplicationPoint {
    /// Monolithic over chunked (≥ 1 means chunked wins).
    pub fn speedup(&self) -> f64 {
        self.monolithic_ms / self.chunked_ms
    }
}

/// One live adjustment's per-phase latency, read back from the runtime's
/// event journal (the observability layer's `AdjustmentTrace`).
#[derive(Debug, Clone)]
pub struct AdjustmentPoint {
    /// `"scale-out"`, `"scale-in"`, `"migrate"`, or `"failure-scale-in"`.
    pub kind: String,
    /// World size after the adjustment completed.
    pub world_after: u32,
    /// Step ① (request) ms.
    pub request_ms: f64,
    /// Step ② (report) ms.
    pub report_ms: f64,
    /// Step ③ (coordinate) ms.
    pub coordinate_ms: f64,
    /// Step ④ (replicate) ms.
    pub replicate_ms: f64,
    /// Step ⑤ (adjust) ms.
    pub adjust_ms: f64,
    /// First phase start to last phase end, ms.
    pub total_ms: f64,
    /// Replication waves the planner scheduled.
    pub waves: u32,
    /// Point-to-point transfers planned.
    pub transfers: u32,
}

/// A full harness run, serializable to `BENCH_dataplane.json`.
#[derive(Debug, Clone)]
pub struct Report {
    /// `"full"` or `"quick"`.
    pub mode: String,
    /// Allreduce sweep.
    pub allreduce: Vec<AllreducePoint>,
    /// Replication sweep.
    pub replication: Vec<ReplicationPoint>,
    /// Live-runtime adjustment latency breakdown (per pipeline phase).
    pub adjustment: Vec<AdjustmentPoint>,
}

/// Deterministic mixed-magnitude input buffer.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s & 0xFFFF) as f32 / 65536.0) - 0.5
        })
        .collect()
}

/// Times `rounds` collective rounds of `run` across `world` threads and
/// returns throughput in contributed elements/second. The timer starts at
/// a barrier *after* the warm-up rounds, so thread spawn and pool
/// warm-up are excluded.
fn time_rounds<F>(world: u32, len: usize, rounds: u64, run: F) -> f64
where
    F: Fn(WorkerId, &[f32]) -> AllreduceOutcome + Sync,
{
    let inputs: Vec<Vec<f32>> = (0..world).map(|w| fill(w as u64 + 1, len)).collect();
    let barrier = Barrier::new(world as usize + 1);
    let secs = thread::scope(|s| {
        let handles: Vec<_> = (0..world as usize)
            .map(|w| {
                let run = &run;
                let input = &inputs[w];
                let barrier = &barrier;
                s.spawn(move || {
                    let id = WorkerId(w as u32);
                    for _ in 0..WARMUP_ROUNDS {
                        let _ = std::hint::black_box(run(id, input));
                    }
                    barrier.wait();
                    for _ in 0..rounds {
                        match run(id, input) {
                            AllreduceOutcome::Sum { sum, .. } => {
                                std::hint::black_box(sum[0]);
                            }
                            other => panic!("allreduce failed: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        for h in handles {
            h.join().expect("bench worker");
        }
        t0.elapsed().as_secs_f64()
    });
    (world as f64) * (len as f64) * (rounds as f64) / secs
}

/// Benchmarks both allreduce implementations at one `(world, len)` point.
pub fn bench_allreduce(world: u32, len: usize, rounds: u64) -> AllreducePoint {
    let members: Vec<WorkerId> = (0..world).map(WorkerId).collect();
    let naive_group = NaiveCommGroup::new(members.iter().copied(), len);
    let naive = time_rounds(world, len, rounds, |w, d| naive_group.allreduce(w, d));
    let chunked_group = CommGroup::new(members.iter().copied(), len);
    let chunked = time_rounds(world, len, rounds, |w, d| chunked_group.allreduce(w, d));
    AllreducePoint {
        world,
        len,
        rounds,
        naive_elems_per_s: naive,
        chunked_elems_per_s: chunked,
    }
}

/// Benchmarks boundary state replication to `destinations` receivers.
///
/// *Monolithic* reproduces the pre-overhaul worker: it clones both full
/// buffers once **per destination** (the `Arc::new(params.clone())` the
/// old `StateTransfer` arm performed) before each receiver copies them
/// in. *Chunked* performs one chunking pass per boundary and serves
/// every destination `Arc`-shared chunks, which receivers assemble with
/// [`SnapshotAssembly`] — the live runtime's actual replication path.
pub fn bench_replication(
    param_elems: usize,
    destinations: usize,
    chunk_elems: usize,
    iters: u32,
) -> ReplicationPoint {
    let params = fill(7, param_elems);
    let momentum = fill(9, param_elems);
    let mut dst_p: Vec<Vec<f32>> = (0..destinations).map(|_| vec![0.0; param_elems]).collect();
    let mut dst_m: Vec<Vec<f32>> = (0..destinations).map(|_| vec![0.0; param_elems]).collect();

    // Monolithic: clone both buffers per destination, then copy in.
    let t0 = Instant::now();
    for _ in 0..iters {
        for d in 0..destinations {
            let p = std::hint::black_box(params.clone());
            let m = std::hint::black_box(momentum.clone());
            dst_p[d].copy_from_slice(&p);
            dst_m[d].copy_from_slice(&m);
        }
    }
    let monolithic_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters);

    // Chunked: one chunking pass per boundary, Arc-shared across
    // destinations, receivers assemble. The two phases are timed
    // separately so the report can attribute the makespan.
    let mut prepare_s = 0.0f64;
    let mut apply_s = 0.0f64;
    let t0 = Instant::now();
    for _ in 0..iters {
        let tp = Instant::now();
        let chunks = build_state_chunks(&params, &momentum, chunk_elems);
        prepare_s += tp.elapsed().as_secs_f64();
        let ta = Instant::now();
        for d in 0..destinations {
            let mut asm = SnapshotAssembly::new();
            let mut finished = false;
            for &(kind, index, total, offset, ref data) in &chunks {
                if asm
                    .offer(
                        kind,
                        1,
                        0,
                        index,
                        total,
                        offset,
                        data,
                        &mut dst_p[d],
                        &mut dst_m[d],
                    )
                    .is_some()
                {
                    finished = true;
                }
            }
            assert!(finished, "chunked snapshot did not complete");
        }
        apply_s += ta.elapsed().as_secs_f64();
    }
    let chunked_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
    let chunked_prepare_ms = prepare_s * 1e3 / f64::from(iters);
    let chunked_apply_ms = apply_s * 1e3 / f64::from(iters);

    for d in 0..destinations {
        assert_eq!(dst_p[d], params, "replication corrupted params");
        assert_eq!(dst_m[d], momentum, "replication corrupted momentum");
    }
    ReplicationPoint {
        param_elems,
        destinations,
        chunk_elems,
        monolithic_ms,
        chunked_ms,
        chunked_prepare_ms,
        chunked_apply_ms,
    }
}

/// Runs a short live elastic job and reads each adjustment's per-phase
/// latency back from the runtime's event journal ([`AdjustmentTrace`]s
/// exposed through the shutdown report) — the observability layer is the
/// measurement instrument, not a separate stopwatch.
///
/// [`AdjustmentTrace`]: elan_rt::AdjustmentTrace
pub fn bench_adjustment(quick: bool) -> Vec<AdjustmentPoint> {
    let mut cfg = RuntimeConfig::small(2);
    cfg.param_elems = if quick { 4_096 } else { 65_536 };
    cfg.replication_chunk_elems = cfg.param_elems / 8;
    let mut rt = ElasticRuntime::builder()
        .config(cfg)
        .start()
        .expect("valid bench configuration");
    rt.run_until_iteration(10);
    rt.scale_out(2);
    rt.run_until_iteration(20);
    rt.scale_in(1);
    rt.run_until_iteration(30);
    let report = rt.shutdown();
    report
        .traces
        .iter()
        .filter(|t| t.completed)
        .map(|t| AdjustmentPoint {
            kind: t.kind.name().to_string(),
            world_after: t.final_world,
            request_ms: t.phase_us(AdjustmentPhase::Request) as f64 / 1e3,
            report_ms: t.phase_us(AdjustmentPhase::Report) as f64 / 1e3,
            coordinate_ms: t.phase_us(AdjustmentPhase::Coordinate) as f64 / 1e3,
            replicate_ms: t.phase_us(AdjustmentPhase::Replicate) as f64 / 1e3,
            adjust_ms: t.phase_us(AdjustmentPhase::Adjust) as f64 / 1e3,
            total_ms: t.total_us() as f64 / 1e3,
            waves: t.waves,
            transfers: t.transfers,
        })
        .collect()
}

/// Timed rounds per vector length — long vectors need few rounds for a
/// stable mean, short ones need many to rise above timer noise.
pub fn rounds_for(len: usize, quick: bool) -> u64 {
    let full = match len {
        0..=4_096 => 256,
        4_097..=131_072 => 48,
        131_073..=1_048_576 => 10,
        _ => 4,
    };
    if quick {
        (full / 8).max(2)
    } else {
        full
    }
}

/// Runs the whole sweep. `quick` shrinks the grid for CI smoke runs.
pub fn run(quick: bool, mut progress: impl FnMut(&str)) -> Report {
    let (worlds, lens): (Vec<u32>, Vec<usize>) = if quick {
        (vec![2, 4], vec![1_024, 65_536])
    } else {
        (vec![2, 4, 8, 16], vec![1_024, 65_536, 1_048_576, 4_194_304])
    };
    let mut allreduce = Vec::new();
    for &len in &lens {
        for &world in &worlds {
            let rounds = rounds_for(len, quick);
            let p = bench_allreduce(world, len, rounds);
            progress(&format!(
                "allreduce world={:2} len={:>9} rounds={:>3}  naive={:>12.0} elems/s  chunked={:>12.0} elems/s  speedup={:.2}x",
                p.world, p.len, p.rounds, p.naive_elems_per_s, p.chunked_elems_per_s, p.speedup()
            ));
            allreduce.push(p);
        }
    }
    let repl_cfgs: Vec<(usize, usize, usize, u32)> = if quick {
        vec![(65_536, 2, 8_192, 3)]
    } else {
        vec![(1_048_576, 4, 65_536, 6), (4_194_304, 4, 65_536, 3)]
    };
    let mut replication = Vec::new();
    for (elems, dests, chunk, iters) in repl_cfgs {
        let p = bench_replication(elems, dests, chunk, iters);
        progress(&format!(
            "replication elems={:>9} dests={} chunk={:>6}  monolithic={:>8.2} ms  chunked={:>8.2} ms (prepare={:.2} apply={:.2})  speedup={:.2}x",
            p.param_elems, p.destinations, p.chunk_elems, p.monolithic_ms, p.chunked_ms,
            p.chunked_prepare_ms, p.chunked_apply_ms, p.speedup()
        ));
        replication.push(p);
    }
    let adjustment = bench_adjustment(quick);
    for a in &adjustment {
        progress(&format!(
            "adjustment {:<10} ->{}  request={:.2} report={:.2} coordinate={:.2} replicate={:.2} adjust={:.2}  total={:.2} ms",
            a.kind, a.world_after, a.request_ms, a.report_ms, a.coordinate_ms,
            a.replicate_ms, a.adjust_ms, a.total_ms
        ));
    }
    Report {
        mode: if quick { "quick" } else { "full" }.into(),
        allreduce,
        replication,
        adjustment,
    }
}

impl Report {
    /// Serializes the report as pretty-printed JSON (schema version 2).
    ///
    /// Schema 2 adds the chunked replication phase split
    /// (`chunked_prepare_ms` / `chunked_apply_ms`) and the `adjustment`
    /// array carrying the live runtime's per-phase latency breakdown.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema_version\": 2,\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"allreduce\": [\n");
        for (i, p) in self.allreduce.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"world\": {}, \"len\": {}, \"rounds\": {}, \"naive_elems_per_s\": {:.1}, \"chunked_elems_per_s\": {:.1}, \"speedup\": {:.4}}}{}\n",
                p.world,
                p.len,
                p.rounds,
                p.naive_elems_per_s,
                p.chunked_elems_per_s,
                p.speedup(),
                if i + 1 < self.allreduce.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"replication\": [\n");
        for (i, p) in self.replication.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"param_elems\": {}, \"destinations\": {}, \"chunk_elems\": {}, \"monolithic_ms\": {:.4}, \"chunked_ms\": {:.4}, \"chunked_prepare_ms\": {:.4}, \"chunked_apply_ms\": {:.4}, \"speedup\": {:.4}}}{}\n",
                p.param_elems,
                p.destinations,
                p.chunk_elems,
                p.monolithic_ms,
                p.chunked_ms,
                p.chunked_prepare_ms,
                p.chunked_apply_ms,
                p.speedup(),
                if i + 1 < self.replication.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"adjustment\": [\n");
        for (i, a) in self.adjustment.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kind\": \"{}\", \"world_after\": {}, \"request_ms\": {:.4}, \"report_ms\": {:.4}, \"coordinate_ms\": {:.4}, \"replicate_ms\": {:.4}, \"adjust_ms\": {:.4}, \"total_ms\": {:.4}, \"waves\": {}, \"transfers\": {}}}{}\n",
                a.kind,
                a.world_after,
                a.request_ms,
                a.report_ms,
                a.coordinate_ms,
                a.replicate_ms,
                a.adjust_ms,
                a.total_ms,
                a.waves,
                a.transfers,
                if i + 1 < self.adjustment.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// A minimal JSON value for schema validation.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded naively).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document (recursive descent, no external deps).
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut at = 0usize;
    let v = parse_value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing garbage at byte {at}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(b: &[u8], at: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, at);
    if *at < b.len() && b[*at] == c {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, at))
    }
}

fn parse_value(b: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(b, at);
    match b.get(*at) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *at += 1;
            let mut members = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, at);
                let key = match parse_value(b, at)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                expect(b, at, b':')?;
                let val = parse_value(b, at)?;
                members.push((key, val));
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {at}")),
                }
            }
        }
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, at)?);
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {at}")),
                }
            }
        }
        Some(b'"') => {
            *at += 1;
            let mut s = String::new();
            while *at < b.len() {
                match b[*at] {
                    b'"' => {
                        *at += 1;
                        return Ok(Json::Str(s));
                    }
                    b'\\' => {
                        *at += 1;
                        let esc = *b.get(*at).ok_or("unterminated escape")?;
                        s.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            other => other as char,
                        });
                        *at += 1;
                    }
                    c => {
                        s.push(c as char);
                        *at += 1;
                    }
                }
            }
            Err("unterminated string".into())
        }
        Some(b't') if b[*at..].starts_with(b"true") => {
            *at += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*at..].starts_with(b"false") => {
            *at += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*at..].starts_with(b"null") => {
            *at += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *at;
            while *at < b.len() && matches!(b[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *at += 1;
            }
            std::str::from_utf8(&b[start..*at])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

/// Validates a `BENCH_dataplane.json` document: schema keys present,
/// every throughput/makespan strictly positive, per-phase adjustment
/// latencies non-negative, arrays non-empty.
///
/// Requires schema version ≥ 2 (the phase-split replication timings and
/// the `adjustment` latency section are mandatory).
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let schema = doc
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or("missing schema_version")?;
    if schema < 2.0 {
        return Err(format!("bad schema_version {schema} (need >= 2)"));
    }
    match doc.get("mode") {
        Some(Json::Str(m)) if m == "full" || m == "quick" => {}
        other => return Err(format!("bad mode: {other:?}")),
    }
    let require_pos = |obj: &Json, key: &str| -> Result<f64, String> {
        let v = obj
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric key {key:?}"))?;
        if v > 0.0 && v.is_finite() {
            Ok(v)
        } else {
            Err(format!("key {key:?} must be positive and finite, got {v}"))
        }
    };
    let Some(Json::Arr(points)) = doc.get("allreduce") else {
        return Err("missing allreduce array".into());
    };
    if points.is_empty() {
        return Err("allreduce array is empty".into());
    }
    for p in points {
        for key in [
            "world",
            "len",
            "rounds",
            "naive_elems_per_s",
            "chunked_elems_per_s",
            "speedup",
        ] {
            require_pos(p, key)?;
        }
    }
    let Some(Json::Arr(points)) = doc.get("replication") else {
        return Err("missing replication array".into());
    };
    if points.is_empty() {
        return Err("replication array is empty".into());
    }
    for p in points {
        for key in [
            "param_elems",
            "destinations",
            "chunk_elems",
            "monolithic_ms",
            "chunked_ms",
            "chunked_prepare_ms",
            "chunked_apply_ms",
            "speedup",
        ] {
            require_pos(p, key)?;
        }
    }
    let require_nonneg = |obj: &Json, key: &str| -> Result<f64, String> {
        let v = obj
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric key {key:?}"))?;
        if v >= 0.0 && v.is_finite() {
            Ok(v)
        } else {
            Err(format!(
                "key {key:?} must be non-negative and finite, got {v}"
            ))
        }
    };
    let Some(Json::Arr(points)) = doc.get("adjustment") else {
        return Err("missing adjustment array".into());
    };
    if points.is_empty() {
        return Err("adjustment array is empty".into());
    }
    for p in points {
        match p.get("kind") {
            Some(Json::Str(k)) if !k.is_empty() => {}
            other => return Err(format!("bad adjustment kind: {other:?}")),
        }
        require_pos(p, "world_after")?;
        require_pos(p, "total_ms")?;
        for key in [
            "request_ms",
            "report_ms",
            "coordinate_ms",
            "replicate_ms",
            "adjust_ms",
            "waves",
            "transfers",
        ] {
            require_nonneg(p, key)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plausible synthetic adjustment point for schema tests (running
    /// the live runtime in every unit test would be slow on CI).
    fn synthetic_adjustment() -> AdjustmentPoint {
        AdjustmentPoint {
            kind: "scale-out".into(),
            world_after: 4,
            request_ms: 0.0,
            report_ms: 1.5,
            coordinate_ms: 0.2,
            replicate_ms: 3.0,
            adjust_ms: 0.8,
            total_ms: 5.5,
            waves: 1,
            transfers: 2,
        }
    }

    #[test]
    fn quickest_sweep_emits_valid_json() {
        // The smallest possible measurement exercises the whole pipeline.
        let report = Report {
            mode: "quick".into(),
            allreduce: vec![bench_allreduce(2, 256, 3)],
            replication: vec![bench_replication(1_024, 2, 256, 2)],
            adjustment: vec![synthetic_adjustment()],
        };
        validate_json(&report.to_json()).expect("emitted JSON validates");
    }

    #[test]
    fn live_adjustment_bench_round_trips_through_the_schema() {
        let adjustment = bench_adjustment(true);
        assert!(
            adjustment.len() >= 2,
            "expected scale-out + scale-in traces, got {adjustment:?}"
        );
        assert!(adjustment.iter().any(|a| a.kind == "scale-out"));
        assert!(adjustment.iter().any(|a| a.kind == "scale-in"));
        let report = Report {
            mode: "quick".into(),
            allreduce: vec![bench_allreduce(2, 256, 2)],
            replication: vec![bench_replication(1_024, 2, 256, 1)],
            adjustment,
        };
        validate_json(&report.to_json()).expect("live adjustment JSON validates");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("not json").is_err());
        assert!(validate_json(r#"{"schema_version": 2, "mode": "full"}"#).is_err());
        // Pre-overhaul documents (schema 1) are rejected outright.
        assert!(validate_json(r#"{"schema_version": 1, "mode": "full"}"#)
            .unwrap_err()
            .contains("schema_version"));
        // Zero throughput is a schema violation, not a shrug.
        let bad = r#"{"schema_version": 2, "mode": "quick",
            "allreduce": [{"world": 2, "len": 4, "rounds": 1,
                "naive_elems_per_s": 0.0, "chunked_elems_per_s": 1.0, "speedup": 1.0}],
            "replication": [{"param_elems": 1, "destinations": 1, "chunk_elems": 1,
                "monolithic_ms": 1.0, "chunked_ms": 1.0,
                "chunked_prepare_ms": 0.5, "chunked_apply_ms": 0.5, "speedup": 1.0}],
            "adjustment": [{"kind": "scale-out", "world_after": 4,
                "request_ms": 0.0, "report_ms": 1.0, "coordinate_ms": 0.1,
                "replicate_ms": 2.0, "adjust_ms": 0.5, "total_ms": 3.6,
                "waves": 1, "transfers": 2}]}"#;
        assert!(validate_json(bad)
            .unwrap_err()
            .contains("naive_elems_per_s"));
        // A missing adjustment section is a schema violation too.
        let no_adj = bad
            .replace("\"naive_elems_per_s\": 0.0", "\"naive_elems_per_s\": 1.0")
            .replace("\"adjustment\": [", "\"ignored\": [");
        assert!(validate_json(&no_adj).unwrap_err().contains("adjustment"));
        // Negative phase latency is impossible and rejected.
        let neg = bad
            .replace("\"naive_elems_per_s\": 0.0", "\"naive_elems_per_s\": 1.0")
            .replace("\"replicate_ms\": 2.0", "\"replicate_ms\": -2.0");
        assert!(validate_json(&neg).unwrap_err().contains("replicate_ms"));
    }

    #[test]
    fn json_parser_handles_the_grammar() {
        let v =
            parse_json(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Str("x".into())));
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\": 1} extra").is_err());
    }

    #[test]
    fn replication_bench_is_bit_exact() {
        let p = bench_replication(2_000, 3, 333, 1);
        assert!(p.monolithic_ms > 0.0 && p.chunked_ms > 0.0);
    }
}
