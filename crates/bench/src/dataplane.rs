//! Data-plane benchmarks: allreduce throughput and state-replication
//! makespan, the adaptive engine vs. the naive pre-overhaul baselines.
//!
//! This is the measurement side of the data-plane performance work: the
//! live runtime's adaptive [`CommGroup`] (flat / chunked / hierarchical,
//! dispatched per round) and chunked, `Arc`-shared state replication are
//! raced against the exact code they replaced — the flat lock-held
//! [`NaiveCommGroup`] and the clone-both-buffers-per-destination
//! monolithic transfer — on the same inputs. Results serialize to
//! `BENCH_dataplane.json` (see [`Report::to_json`]) so CI and the README
//! can track the trajectory, and [`assert_thresholds`] turns a committed
//! report into a regression gate: a fresh run must not fall more than
//! [`REGRESSION_TOLERANCE`] below the baseline on any matching cell, and
//! every allreduce cell must beat naive outright unless it is on the
//! [`SPEEDUP_FLOOR_ALLOWLIST`].
//!
//! Everything here is free of external dependencies: the JSON emitter is
//! a few `format!`s, and [`validate_json`] carries a small recursive-
//! descent parser so the CI smoke job can check the schema offline.

use std::sync::Barrier;
use std::thread;
use std::time::Instant;

use elan_core::obs::AdjustmentPhase;
use elan_core::state::WorkerId;
use elan_rt::comm::{naive::NaiveCommGroup, AllreduceOutcome, CommGroup, CommTopology, ReducePath};
use elan_rt::time::TimeSource;
use elan_rt::worker::{build_state_chunks, SnapshotAssembly};
use elan_rt::{ElasticRuntime, RuntimeConfig, TuningProfile};

/// Warm-up rounds excluded from every allreduce timing (they also fill
/// the chunked group's buffer pool, so the timed region is the
/// zero-allocation steady state).
const WARMUP_ROUNDS: u64 = 2;

/// Independent timing repetitions per allreduce measurement; the
/// reported throughput is the **median** rep. A single rep samples
/// whatever the host scheduler was doing during that window — on small
/// or shared machines the same binary swings tens of percent between
/// runs, and a speedup cell divides two such draws. The median discards
/// one-off interference spikes while keeping costs that recur in every
/// rep — deliberately *not* best-of-k, which would let the allocator
/// warm up across reps and erase the naive baseline's intrinsic
/// fresh-allocation churn. Both engines get the identical treatment.
const TIMING_REPS: usize = 3;

/// One allreduce measurement: both implementations on identical inputs.
#[derive(Debug, Clone, Copy)]
pub struct AllreducePoint {
    /// Workers in the group.
    pub world: u32,
    /// Elements per gradient vector.
    pub len: usize,
    /// Timed rounds (after warm-up).
    pub rounds: u64,
    /// The engine the adaptive dispatcher selected for this cell.
    pub path: ReducePath,
    /// Naive flat allreduce throughput, in contributed elements/second
    /// (`world × len × rounds / elapsed`).
    pub naive_elems_per_s: f64,
    /// Adaptive allreduce throughput (whichever engine the dispatcher
    /// picked for this `(world, len)`), same metric.
    pub adaptive_elems_per_s: f64,
}

impl AllreducePoint {
    /// Adaptive over naive.
    pub fn speedup(&self) -> f64 {
        self.adaptive_elems_per_s / self.naive_elems_per_s
    }
}

/// One replication measurement: monolithic vs. chunked makespan, with the
/// chunked path split into its two phases.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationPoint {
    /// Elements per state buffer (params and momentum each).
    pub param_elems: usize,
    /// Destinations served at the boundary.
    pub destinations: usize,
    /// Elements per chunk in the chunked path.
    pub chunk_elems: usize,
    /// Monolithic makespan (clone both buffers per destination), ms.
    pub monolithic_ms: f64,
    /// Chunked makespan (one chunking pass, `Arc`-shared), ms.
    pub chunked_ms: f64,
    /// Chunked phase ①: the once-per-boundary chunking pass, ms.
    pub chunked_prepare_ms: f64,
    /// Chunked phase ②: per-destination chunk assembly/apply, ms.
    pub chunked_apply_ms: f64,
}

impl ReplicationPoint {
    /// Monolithic over chunked (≥ 1 means chunked wins).
    pub fn speedup(&self) -> f64 {
        self.monolithic_ms / self.chunked_ms
    }
}

/// One live adjustment's per-phase latency, read back from the runtime's
/// event journal (the observability layer's `AdjustmentTrace`).
#[derive(Debug, Clone)]
pub struct AdjustmentPoint {
    /// `"scale-out"`, `"scale-in"`, `"migrate"`, or `"failure-scale-in"`.
    pub kind: String,
    /// World size after the adjustment completed.
    pub world_after: u32,
    /// Step ① (request) ms.
    pub request_ms: f64,
    /// Step ② (report) ms.
    pub report_ms: f64,
    /// Step ③ (coordinate) ms.
    pub coordinate_ms: f64,
    /// Step ④ (replicate) ms.
    pub replicate_ms: f64,
    /// Step ⑤ (adjust) ms.
    pub adjust_ms: f64,
    /// First phase start to last phase end, ms.
    pub total_ms: f64,
    /// Replication waves the planner scheduled.
    pub waves: u32,
    /// Point-to-point transfers planned.
    pub transfers: u32,
}

/// A full harness run, serializable to `BENCH_dataplane.json`.
#[derive(Debug, Clone)]
pub struct Report {
    /// `"full"` or `"quick"`.
    pub mode: String,
    /// Allreduce sweep.
    pub allreduce: Vec<AllreducePoint>,
    /// Replication sweep.
    pub replication: Vec<ReplicationPoint>,
    /// Live-runtime adjustment latency breakdown (per pipeline phase).
    pub adjustment: Vec<AdjustmentPoint>,
}

/// Deterministic mixed-magnitude input buffer.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s & 0xFFFF) as f32 / 65536.0) - 0.5
        })
        .collect()
}

/// Times `rounds` collective rounds of `run` across `world` threads and
/// returns throughput in contributed elements/second. The timer starts at
/// a barrier *after* the warm-up rounds, so thread spawn and pool
/// warm-up are excluded.
fn time_rounds<F>(world: u32, len: usize, rounds: u64, run: F) -> f64
where
    F: Fn(WorkerId, &[f32]) -> AllreduceOutcome + Sync,
{
    let mut reps: Vec<f64> = (0..TIMING_REPS)
        .map(|_| time_rounds_once(world, len, rounds, &run))
        .collect();
    reps.sort_by(|a, b| a.total_cmp(b));
    reps[reps.len() / 2]
}

/// One timing repetition of [`time_rounds`].
fn time_rounds_once<F>(world: u32, len: usize, rounds: u64, run: F) -> f64
where
    F: Fn(WorkerId, &[f32]) -> AllreduceOutcome + Sync,
{
    let inputs: Vec<Vec<f32>> = (0..world).map(|w| fill(w as u64 + 1, len)).collect();
    let barrier = Barrier::new(world as usize + 1);
    let secs = thread::scope(|s| {
        let handles: Vec<_> = (0..world as usize)
            .map(|w| {
                let run = &run;
                let input = &inputs[w];
                let barrier = &barrier;
                s.spawn(move || {
                    let id = WorkerId(w as u32);
                    for _ in 0..WARMUP_ROUNDS {
                        let _ = std::hint::black_box(run(id, input));
                    }
                    barrier.wait();
                    for _ in 0..rounds {
                        match run(id, input) {
                            AllreduceOutcome::Sum { sum, .. } => {
                                std::hint::black_box(sum[0]);
                            }
                            other => panic!("allreduce failed: {other:?}"),
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        for h in handles {
            h.join().expect("bench worker");
        }
        t0.elapsed().as_secs_f64()
    });
    (world as f64) * (len as f64) * (rounds as f64) / secs
}

/// Benchmarks both allreduce implementations at one `(world, len)` point.
///
/// The adaptive group is built the way the runtime builds it: probed
/// crossovers (cached process-wide after the first call) and the default
/// planning topology, so the dispatcher picks the same engine the live
/// runtime would for this `(world, len)` — recorded in the point's
/// `path` column.
pub fn bench_allreduce(world: u32, len: usize, rounds: u64) -> AllreducePoint {
    let members: Vec<WorkerId> = (0..world).map(WorkerId).collect();
    let naive_group = NaiveCommGroup::new(members.iter().copied(), len);
    let naive = time_rounds(world, len, rounds, |w, d| naive_group.allreduce(w, d));
    let profile = TuningProfile::for_time(&TimeSource::real());
    let adaptive_group = CommGroup::with_tuning(
        members.iter().copied(),
        len,
        profile,
        Some(CommTopology::default()),
    );
    let path = adaptive_group.planned_path();
    let adaptive = time_rounds(world, len, rounds, |w, d| adaptive_group.allreduce(w, d));
    AllreducePoint {
        world,
        len,
        rounds,
        path,
        naive_elems_per_s: naive,
        adaptive_elems_per_s: adaptive,
    }
}

/// Benchmarks boundary state replication to `destinations` receivers.
///
/// *Monolithic* reproduces the pre-overhaul worker: it clones both full
/// buffers once **per destination** (the `Arc::new(params.clone())` the
/// old `StateTransfer` arm performed) before each receiver copies them
/// in. *Chunked* performs one chunking pass per boundary and serves
/// every destination `Arc`-shared chunks, which receivers assemble with
/// [`SnapshotAssembly`] — the live runtime's actual replication path.
pub fn bench_replication(
    param_elems: usize,
    destinations: usize,
    chunk_elems: usize,
    iters: u32,
) -> ReplicationPoint {
    let params = fill(7, param_elems);
    let momentum = fill(9, param_elems);
    let mut dst_p: Vec<Vec<f32>> = (0..destinations).map(|_| vec![0.0; param_elems]).collect();
    let mut dst_m: Vec<Vec<f32>> = (0..destinations).map(|_| vec![0.0; param_elems]).collect();

    // Monolithic: clone both buffers per destination, then copy in.
    let t0 = Instant::now();
    for _ in 0..iters {
        for d in 0..destinations {
            let p = std::hint::black_box(params.clone());
            let m = std::hint::black_box(momentum.clone());
            dst_p[d].copy_from_slice(&p);
            dst_m[d].copy_from_slice(&m);
        }
    }
    let monolithic_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters);

    // Chunked: one chunking pass per boundary, Arc-shared across
    // destinations, receivers assemble. The two phases are timed
    // separately so the report can attribute the makespan.
    let mut prepare_s = 0.0f64;
    let mut apply_s = 0.0f64;
    let t0 = Instant::now();
    for _ in 0..iters {
        let tp = Instant::now();
        let chunks = build_state_chunks(&params, &momentum, chunk_elems);
        prepare_s += tp.elapsed().as_secs_f64();
        let ta = Instant::now();
        for d in 0..destinations {
            let mut asm = SnapshotAssembly::new();
            let mut finished = false;
            for &(kind, index, total, offset, ref data) in &chunks {
                if asm
                    .offer(
                        kind,
                        1,
                        0,
                        index,
                        total,
                        offset,
                        data,
                        &mut dst_p[d],
                        &mut dst_m[d],
                    )
                    .is_some()
                {
                    finished = true;
                }
            }
            assert!(finished, "chunked snapshot did not complete");
        }
        apply_s += ta.elapsed().as_secs_f64();
    }
    let chunked_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
    let chunked_prepare_ms = prepare_s * 1e3 / f64::from(iters);
    let chunked_apply_ms = apply_s * 1e3 / f64::from(iters);

    for d in 0..destinations {
        assert_eq!(dst_p[d], params, "replication corrupted params");
        assert_eq!(dst_m[d], momentum, "replication corrupted momentum");
    }
    ReplicationPoint {
        param_elems,
        destinations,
        chunk_elems,
        monolithic_ms,
        chunked_ms,
        chunked_prepare_ms,
        chunked_apply_ms,
    }
}

/// Runs a short live elastic job and reads each adjustment's per-phase
/// latency back from the runtime's event journal ([`AdjustmentTrace`]s
/// exposed through the shutdown report) — the observability layer is the
/// measurement instrument, not a separate stopwatch.
///
/// [`AdjustmentTrace`]: elan_rt::AdjustmentTrace
pub fn bench_adjustment(quick: bool) -> Vec<AdjustmentPoint> {
    let mut cfg = RuntimeConfig::small(2);
    cfg.param_elems = if quick { 4_096 } else { 65_536 };
    cfg.replication_chunk_elems = cfg.param_elems / 8;
    let mut rt = ElasticRuntime::builder()
        .config(cfg)
        .start()
        .expect("valid bench configuration");
    rt.run_until_iteration(10);
    rt.scale_out(2);
    rt.run_until_iteration(20);
    rt.scale_in(1);
    rt.run_until_iteration(30);
    let report = rt.shutdown();
    report
        .traces
        .iter()
        .filter(|t| t.completed)
        .map(|t| AdjustmentPoint {
            kind: t.kind.name().to_string(),
            world_after: t.final_world,
            request_ms: t.phase_us(AdjustmentPhase::Request) as f64 / 1e3,
            report_ms: t.phase_us(AdjustmentPhase::Report) as f64 / 1e3,
            coordinate_ms: t.phase_us(AdjustmentPhase::Coordinate) as f64 / 1e3,
            replicate_ms: t.phase_us(AdjustmentPhase::Replicate) as f64 / 1e3,
            adjust_ms: t.phase_us(AdjustmentPhase::Adjust) as f64 / 1e3,
            total_ms: t.total_us() as f64 / 1e3,
            waves: t.waves,
            transfers: t.transfers,
        })
        .collect()
}

/// Timed rounds per vector length — long vectors need few rounds for a
/// stable mean, short ones need many to rise above timer noise. Quick
/// mode halves the rounds rather than slashing them: allreduce rounds
/// are the cheap part of the sweep, and a too-short timing window makes
/// the speedup ratio (which the CI gate floors at 1.0) a coin flip on
/// the near-tied small-vector cells.
pub fn rounds_for(len: usize, quick: bool) -> u64 {
    let full = match len {
        0..=4_096 => 256,
        4_097..=131_072 => 48,
        131_073..=1_048_576 => 10,
        _ => 4,
    };
    if quick {
        (full / 2).max(2)
    } else {
        full
    }
}

/// Runs the whole sweep. `quick` shrinks the grid for CI smoke runs.
pub fn run(quick: bool, mut progress: impl FnMut(&str)) -> Report {
    let (worlds, lens): (Vec<u32>, Vec<usize>) = if quick {
        (vec![2, 4], vec![1_024, 65_536])
    } else {
        (vec![2, 4, 8, 16], vec![1_024, 65_536, 1_048_576, 4_194_304])
    };
    let mut allreduce = Vec::new();
    for &len in &lens {
        for &world in &worlds {
            let rounds = rounds_for(len, quick);
            let p = bench_allreduce(world, len, rounds);
            progress(&format!(
                "allreduce world={:2} len={:>9} rounds={:>3} path={:<7}  naive={:>12.0} elems/s  adaptive={:>12.0} elems/s  speedup={:.2}x",
                p.world, p.len, p.rounds, p.path.name(), p.naive_elems_per_s, p.adaptive_elems_per_s, p.speedup()
            ));
            allreduce.push(p);
        }
    }
    let repl_cfgs: Vec<(usize, usize, usize, u32)> = if quick {
        vec![(65_536, 2, 8_192, 3)]
    } else {
        vec![(1_048_576, 4, 65_536, 6), (4_194_304, 4, 65_536, 3)]
    };
    let mut replication = Vec::new();
    for (elems, dests, chunk, iters) in repl_cfgs {
        let p = bench_replication(elems, dests, chunk, iters);
        progress(&format!(
            "replication elems={:>9} dests={} chunk={:>6}  monolithic={:>8.2} ms  chunked={:>8.2} ms (prepare={:.2} apply={:.2})  speedup={:.2}x",
            p.param_elems, p.destinations, p.chunk_elems, p.monolithic_ms, p.chunked_ms,
            p.chunked_prepare_ms, p.chunked_apply_ms, p.speedup()
        ));
        replication.push(p);
    }
    let adjustment = bench_adjustment(quick);
    for a in &adjustment {
        progress(&format!(
            "adjustment {:<10} ->{}  request={:.2} report={:.2} coordinate={:.2} replicate={:.2} adjust={:.2}  total={:.2} ms",
            a.kind, a.world_after, a.request_ms, a.report_ms, a.coordinate_ms,
            a.replicate_ms, a.adjust_ms, a.total_ms
        ));
    }
    Report {
        mode: if quick { "quick" } else { "full" }.into(),
        allreduce,
        replication,
        adjustment,
    }
}

impl Report {
    /// Serializes the report as pretty-printed JSON (schema version 3).
    ///
    /// Schema 3 renames the allreduce throughput column to
    /// `adaptive_elems_per_s` (the measured side is now the adaptive
    /// dispatcher, not a fixed chunked engine) and adds the `path`
    /// column recording which engine (`flat` / `chunked` / `hier`) the
    /// dispatcher selected per cell. Schema 2 added the chunked
    /// replication phase split (`chunked_prepare_ms` /
    /// `chunked_apply_ms`) and the `adjustment` array carrying the live
    /// runtime's per-phase latency breakdown.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema_version\": 3,\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str("  \"allreduce\": [\n");
        for (i, p) in self.allreduce.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"world\": {}, \"len\": {}, \"rounds\": {}, \"path\": \"{}\", \"naive_elems_per_s\": {:.1}, \"adaptive_elems_per_s\": {:.1}, \"speedup\": {:.4}}}{}\n",
                p.world,
                p.len,
                p.rounds,
                p.path.name(),
                p.naive_elems_per_s,
                p.adaptive_elems_per_s,
                p.speedup(),
                if i + 1 < self.allreduce.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"replication\": [\n");
        for (i, p) in self.replication.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"param_elems\": {}, \"destinations\": {}, \"chunk_elems\": {}, \"monolithic_ms\": {:.4}, \"chunked_ms\": {:.4}, \"chunked_prepare_ms\": {:.4}, \"chunked_apply_ms\": {:.4}, \"speedup\": {:.4}}}{}\n",
                p.param_elems,
                p.destinations,
                p.chunk_elems,
                p.monolithic_ms,
                p.chunked_ms,
                p.chunked_prepare_ms,
                p.chunked_apply_ms,
                p.speedup(),
                if i + 1 < self.replication.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"adjustment\": [\n");
        for (i, a) in self.adjustment.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kind\": \"{}\", \"world_after\": {}, \"request_ms\": {:.4}, \"report_ms\": {:.4}, \"coordinate_ms\": {:.4}, \"replicate_ms\": {:.4}, \"adjust_ms\": {:.4}, \"total_ms\": {:.4}, \"waves\": {}, \"transfers\": {}}}{}\n",
                a.kind,
                a.world_after,
                a.request_ms,
                a.report_ms,
                a.coordinate_ms,
                a.replicate_ms,
                a.adjust_ms,
                a.total_ms,
                a.waves,
                a.transfers,
                if i + 1 < self.adjustment.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// A minimal JSON value for schema validation.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded naively).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document (recursive descent, no external deps).
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut at = 0usize;
    let v = parse_value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing garbage at byte {at}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(b: &[u8], at: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, at);
    if *at < b.len() && b[*at] == c {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, at))
    }
}

fn parse_value(b: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(b, at);
    match b.get(*at) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *at += 1;
            let mut members = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, at);
                let key = match parse_value(b, at)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                expect(b, at, b':')?;
                let val = parse_value(b, at)?;
                members.push((key, val));
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {at}")),
                }
            }
        }
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, at)?);
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {at}")),
                }
            }
        }
        Some(b'"') => {
            *at += 1;
            let mut s = String::new();
            while *at < b.len() {
                match b[*at] {
                    b'"' => {
                        *at += 1;
                        return Ok(Json::Str(s));
                    }
                    b'\\' => {
                        *at += 1;
                        let esc = *b.get(*at).ok_or("unterminated escape")?;
                        s.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            other => other as char,
                        });
                        *at += 1;
                    }
                    c => {
                        s.push(c as char);
                        *at += 1;
                    }
                }
            }
            Err("unterminated string".into())
        }
        Some(b't') if b[*at..].starts_with(b"true") => {
            *at += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*at..].starts_with(b"false") => {
            *at += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*at..].starts_with(b"null") => {
            *at += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *at;
            while *at < b.len() && matches!(b[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *at += 1;
            }
            std::str::from_utf8(&b[start..*at])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

/// Validates a `BENCH_dataplane.json` document: schema keys present,
/// every throughput/makespan strictly positive, per-phase adjustment
/// latencies non-negative, every allreduce `path` a known engine name,
/// arrays non-empty.
///
/// Requires schema version ≥ 3 (the `path` column and the
/// `adaptive_elems_per_s` throughput are mandatory).
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let schema = doc
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or("missing schema_version")?;
    if schema < 3.0 {
        return Err(format!("bad schema_version {schema} (need >= 3)"));
    }
    match doc.get("mode") {
        Some(Json::Str(m)) if m == "full" || m == "quick" => {}
        other => return Err(format!("bad mode: {other:?}")),
    }
    let require_pos = |obj: &Json, key: &str| -> Result<f64, String> {
        let v = obj
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric key {key:?}"))?;
        if v > 0.0 && v.is_finite() {
            Ok(v)
        } else {
            Err(format!("key {key:?} must be positive and finite, got {v}"))
        }
    };
    let Some(Json::Arr(points)) = doc.get("allreduce") else {
        return Err("missing allreduce array".into());
    };
    if points.is_empty() {
        return Err("allreduce array is empty".into());
    }
    for p in points {
        match p.get("path") {
            Some(Json::Str(s)) if s == "flat" || s == "chunked" || s == "hier" => {}
            other => return Err(format!("bad allreduce path: {other:?}")),
        }
        for key in [
            "world",
            "len",
            "rounds",
            "naive_elems_per_s",
            "adaptive_elems_per_s",
            "speedup",
        ] {
            require_pos(p, key)?;
        }
    }
    let Some(Json::Arr(points)) = doc.get("replication") else {
        return Err("missing replication array".into());
    };
    if points.is_empty() {
        return Err("replication array is empty".into());
    }
    for p in points {
        for key in [
            "param_elems",
            "destinations",
            "chunk_elems",
            "monolithic_ms",
            "chunked_ms",
            "chunked_prepare_ms",
            "chunked_apply_ms",
            "speedup",
        ] {
            require_pos(p, key)?;
        }
    }
    let require_nonneg = |obj: &Json, key: &str| -> Result<f64, String> {
        let v = obj
            .get(key)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric key {key:?}"))?;
        if v >= 0.0 && v.is_finite() {
            Ok(v)
        } else {
            Err(format!(
                "key {key:?} must be non-negative and finite, got {v}"
            ))
        }
    };
    let Some(Json::Arr(points)) = doc.get("adjustment") else {
        return Err("missing adjustment array".into());
    };
    if points.is_empty() {
        return Err("adjustment array is empty".into());
    }
    for p in points {
        match p.get("kind") {
            Some(Json::Str(k)) if !k.is_empty() => {}
            other => return Err(format!("bad adjustment kind: {other:?}")),
        }
        require_pos(p, "world_after")?;
        require_pos(p, "total_ms")?;
        for key in [
            "request_ms",
            "report_ms",
            "coordinate_ms",
            "replicate_ms",
            "adjust_ms",
            "waves",
            "transfers",
        ] {
            require_nonneg(p, key)?;
        }
    }
    Ok(())
}

/// Fractional throughput loss a fresh run may show against the committed
/// baseline before the regression gate trips: CI runners are shared and
/// noisy, so single-digit swings are weather, but a >15% drop on a cell
/// that both runs measured is a code change someone needs to look at.
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// `(world, len)` allreduce cells allowed to run slower than naive
/// (`speedup < 1.0`). Empty on purpose: since the flat fast path landed,
/// no cell of the sweep loses to naive, and any new loss should trip the
/// gate until it is either fixed or consciously allowlisted here.
pub const SPEEDUP_FLOOR_ALLOWLIST: &[(u32, usize)] = &[];

/// The perf regression gate: checks a fresh [`Report`] against a
/// committed baseline document (`BENCH_dataplane.json`).
///
/// Three classes of violation are collected (all of them, not just the
/// first):
///
/// 1. an allreduce cell whose `speedup` fell below 1.0 and is not on the
///    [`SPEEDUP_FLOOR_ALLOWLIST`],
/// 2. an allreduce cell whose `adaptive_elems_per_s` dropped more than
///    [`REGRESSION_TOLERANCE`] below the baseline cell with the same
///    `(world, len)`,
/// 3. a replication cell whose `speedup` dropped more than
///    [`REGRESSION_TOLERANCE`] below the baseline cell with the same
///    `(param_elems, destinations, chunk_elems)`.
///
/// Cells without a matching baseline entry are skipped (a quick-mode run
/// gates against the subset of the committed full-mode grid it shares),
/// as are absolute-throughput comparisons across different `rounds`
/// counts: a quick run times far fewer rounds per window, so fixed
/// per-window costs weigh differently and the numbers are not
/// like-for-like — the speedup floor (check 1) still applies to every
/// fresh cell, because both engines share whatever window the cell used.
///
/// # Errors
///
/// Returns a newline-separated list of every violation.
pub fn assert_thresholds(fresh: &Report, baseline_text: &str) -> Result<(), String> {
    validate_json(baseline_text).map_err(|e| format!("baseline invalid: {e}"))?;
    let baseline = parse_json(baseline_text).map_err(|e| format!("baseline unparsable: {e}"))?;
    let mut violations = Vec::new();

    for p in &fresh.allreduce {
        let cell = format!("allreduce world={} len={}", p.world, p.len);
        if p.speedup() < 1.0 && !SPEEDUP_FLOOR_ALLOWLIST.contains(&(p.world, p.len)) {
            violations.push(format!(
                "{cell}: speedup {:.3} < 1.0 (path={}, not allowlisted)",
                p.speedup(),
                p.path.name()
            ));
        }
        let base = match baseline.get("allreduce") {
            Some(Json::Arr(points)) => points.iter().find(|b| {
                b.get("world").and_then(Json::as_num) == Some(f64::from(p.world))
                    && b.get("len").and_then(Json::as_num) == Some(p.len as f64)
            }),
            _ => None,
        };
        let like_for_like = base
            .and_then(|b| b.get("rounds")?.as_num())
            .is_some_and(|r| r == p.rounds as f64);
        if let Some(base_tp) = base
            .filter(|_| like_for_like)
            .and_then(|b| b.get("adaptive_elems_per_s")?.as_num())
        {
            let floor = base_tp * (1.0 - REGRESSION_TOLERANCE);
            if p.adaptive_elems_per_s < floor {
                violations.push(format!(
                    "{cell}: adaptive {:.0} elems/s regressed >{:.0}% below baseline {:.0}",
                    p.adaptive_elems_per_s,
                    REGRESSION_TOLERANCE * 100.0,
                    base_tp
                ));
            }
        }
    }

    for p in &fresh.replication {
        let base = match baseline.get("replication") {
            Some(Json::Arr(points)) => points.iter().find(|b| {
                b.get("param_elems").and_then(Json::as_num) == Some(p.param_elems as f64)
                    && b.get("destinations").and_then(Json::as_num) == Some(p.destinations as f64)
                    && b.get("chunk_elems").and_then(Json::as_num) == Some(p.chunk_elems as f64)
            }),
            _ => None,
        };
        if let Some(base_speedup) = base.and_then(|b| b.get("speedup")?.as_num()) {
            let floor = base_speedup * (1.0 - REGRESSION_TOLERANCE);
            if p.speedup() < floor {
                violations.push(format!(
                    "replication elems={} dests={} chunk={}: speedup {:.3} regressed >{:.0}% below baseline {:.3}",
                    p.param_elems,
                    p.destinations,
                    p.chunk_elems,
                    p.speedup(),
                    REGRESSION_TOLERANCE * 100.0,
                    base_speedup
                ));
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plausible synthetic adjustment point for schema tests (running
    /// the live runtime in every unit test would be slow on CI).
    fn synthetic_adjustment() -> AdjustmentPoint {
        AdjustmentPoint {
            kind: "scale-out".into(),
            world_after: 4,
            request_ms: 0.0,
            report_ms: 1.5,
            coordinate_ms: 0.2,
            replicate_ms: 3.0,
            adjust_ms: 0.8,
            total_ms: 5.5,
            waves: 1,
            transfers: 2,
        }
    }

    #[test]
    fn quickest_sweep_emits_valid_json() {
        // The smallest possible measurement exercises the whole pipeline.
        let report = Report {
            mode: "quick".into(),
            allreduce: vec![bench_allreduce(2, 256, 3)],
            replication: vec![bench_replication(1_024, 2, 256, 2)],
            adjustment: vec![synthetic_adjustment()],
        };
        validate_json(&report.to_json()).expect("emitted JSON validates");
    }

    #[test]
    fn live_adjustment_bench_round_trips_through_the_schema() {
        let adjustment = bench_adjustment(true);
        assert!(
            adjustment.len() >= 2,
            "expected scale-out + scale-in traces, got {adjustment:?}"
        );
        assert!(adjustment.iter().any(|a| a.kind == "scale-out"));
        assert!(adjustment.iter().any(|a| a.kind == "scale-in"));
        let report = Report {
            mode: "quick".into(),
            allreduce: vec![bench_allreduce(2, 256, 2)],
            replication: vec![bench_replication(1_024, 2, 256, 1)],
            adjustment,
        };
        validate_json(&report.to_json()).expect("live adjustment JSON validates");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("not json").is_err());
        assert!(validate_json(r#"{"schema_version": 3, "mode": "full"}"#).is_err());
        // Pre-adaptive documents (schema ≤ 2, no path column) are
        // rejected outright.
        assert!(validate_json(r#"{"schema_version": 2, "mode": "full"}"#)
            .unwrap_err()
            .contains("schema_version"));
        // Zero throughput is a schema violation, not a shrug.
        let bad = r#"{"schema_version": 3, "mode": "quick",
            "allreduce": [{"world": 2, "len": 4, "rounds": 1, "path": "flat",
                "naive_elems_per_s": 0.0, "adaptive_elems_per_s": 1.0, "speedup": 1.0}],
            "replication": [{"param_elems": 1, "destinations": 1, "chunk_elems": 1,
                "monolithic_ms": 1.0, "chunked_ms": 1.0,
                "chunked_prepare_ms": 0.5, "chunked_apply_ms": 0.5, "speedup": 1.0}],
            "adjustment": [{"kind": "scale-out", "world_after": 4,
                "request_ms": 0.0, "report_ms": 1.0, "coordinate_ms": 0.1,
                "replicate_ms": 2.0, "adjust_ms": 0.5, "total_ms": 3.6,
                "waves": 1, "transfers": 2}]}"#;
        assert!(validate_json(bad)
            .unwrap_err()
            .contains("naive_elems_per_s"));
        // An unknown dispatch path name is a schema violation.
        let bad_path = bad
            .replace("\"naive_elems_per_s\": 0.0", "\"naive_elems_per_s\": 1.0")
            .replace("\"path\": \"flat\"", "\"path\": \"warp\"");
        assert!(validate_json(&bad_path).unwrap_err().contains("path"));
        // A missing adjustment section is a schema violation too.
        let no_adj = bad
            .replace("\"naive_elems_per_s\": 0.0", "\"naive_elems_per_s\": 1.0")
            .replace("\"adjustment\": [", "\"ignored\": [");
        assert!(validate_json(&no_adj).unwrap_err().contains("adjustment"));
        // Negative phase latency is impossible and rejected.
        let neg = bad
            .replace("\"naive_elems_per_s\": 0.0", "\"naive_elems_per_s\": 1.0")
            .replace("\"replicate_ms\": 2.0", "\"replicate_ms\": -2.0");
        assert!(validate_json(&neg).unwrap_err().contains("replicate_ms"));
    }

    /// A synthetic report + matching baseline for gate tests.
    fn gate_fixture() -> (Report, String) {
        let point = AllreducePoint {
            world: 2,
            len: 1_024,
            rounds: 4,
            path: ReducePath::Flat,
            naive_elems_per_s: 1_000.0,
            adaptive_elems_per_s: 2_000.0,
        };
        let repl = ReplicationPoint {
            param_elems: 4_096,
            destinations: 2,
            chunk_elems: 512,
            monolithic_ms: 4.0,
            chunked_ms: 2.0,
            chunked_prepare_ms: 0.5,
            chunked_apply_ms: 1.5,
        };
        let report = Report {
            mode: "quick".into(),
            allreduce: vec![point],
            replication: vec![repl],
            adjustment: vec![synthetic_adjustment()],
        };
        let baseline = report.to_json();
        (report, baseline)
    }

    #[test]
    fn threshold_gate_passes_on_a_self_baseline() {
        let (report, baseline) = gate_fixture();
        assert_thresholds(&report, &baseline).expect("a run cannot regress against itself");
    }

    #[test]
    fn threshold_gate_trips_on_speedup_below_one() {
        let (mut report, baseline) = gate_fixture();
        report.allreduce[0].adaptive_elems_per_s = 900.0; // now slower than naive
        let err = assert_thresholds(&report, &baseline).unwrap_err();
        assert!(err.contains("speedup"), "{err}");
        assert!(err.contains("world=2 len=1024"), "{err}");
    }

    #[test]
    fn threshold_gate_trips_on_throughput_regression() {
        let (mut report, baseline) = gate_fixture();
        // Still faster than naive, but >15% below the baseline cell.
        report.allreduce[0].adaptive_elems_per_s = 1_500.0;
        let err = assert_thresholds(&report, &baseline).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn threshold_gate_trips_on_replication_regression() {
        let (mut report, baseline) = gate_fixture();
        report.replication[0].chunked_ms = 3.5; // speedup 2.0 -> 1.14
        let err = assert_thresholds(&report, &baseline).unwrap_err();
        assert!(err.contains("replication"), "{err}");
    }

    #[test]
    fn threshold_gate_skips_cells_missing_from_the_baseline() {
        let (mut report, baseline) = gate_fixture();
        // A new grid cell with no baseline counterpart only has to beat
        // naive; there is nothing to diff against.
        report.allreduce.push(AllreducePoint {
            world: 4,
            len: 65_536,
            rounds: 2,
            path: ReducePath::Chunked,
            naive_elems_per_s: 1_000.0,
            adaptive_elems_per_s: 1_001.0,
        });
        assert_thresholds(&report, &baseline).expect("unmatched cells are not gated");
    }

    #[test]
    fn threshold_gate_skips_throughput_across_rounds_counts() {
        let (mut report, baseline) = gate_fixture();
        // A quick run times fewer rounds per window than the committed
        // full-mode baseline; absolute throughput is not like-for-like,
        // so only the speedup floor applies.
        report.allreduce[0].rounds = 2;
        report.allreduce[0].adaptive_elems_per_s = 1_100.0; // >60% below baseline
        assert_thresholds(&report, &baseline).expect("cross-rounds throughput must not be gated");
        report.allreduce[0].adaptive_elems_per_s = 900.0; // but losing to naive still trips
        assert_thresholds(&report, &baseline).unwrap_err();
    }

    #[test]
    fn threshold_gate_rejects_invalid_baselines() {
        let (report, _) = gate_fixture();
        let err = assert_thresholds(&report, "not json").unwrap_err();
        assert!(err.contains("baseline"), "{err}");
    }

    #[test]
    fn json_parser_handles_the_grammar() {
        let v =
            parse_json(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Str("x".into())));
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\": 1} extra").is_err());
    }

    #[test]
    fn replication_bench_is_bit_exact() {
        let p = bench_replication(2_000, 3, 333, 1);
        assert!(p.monolithic_ms > 0.0 && p.chunked_ms > 0.0);
    }
}
