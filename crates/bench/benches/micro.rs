//! Criterion micro-benchmarks of Elan's hot paths: replication planning,
//! the event queue, the cost models, the hybrid scaling decision, the
//! data samplers, and one end-to-end coordination-protocol round trip.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use elan_core::coordination::{run_coordination, CoordinationConfig};
use elan_core::data::{ChunkSampler, SerialSampler};
use elan_core::elasticity::{AdjustmentRequest, ElasticitySystem};
use elan_core::scaling::hybrid_scale;
use elan_core::ElanSystem;
use elan_models::{zoo, PerfModel};
use elan_sim::{Bytes, Scheduler, SimDuration};
use elan_topology::{BandwidthModel, ClusterSpec, GpuId, ReplicationPlanner};

fn bench_replication_planning(c: &mut Criterion) {
    let topo = ClusterSpec::paper_testbed().build();
    let existing: Vec<GpuId> = (0..32).map(GpuId).collect();
    let joining: Vec<GpuId> = (32..64).map(GpuId).collect();
    c.bench_function("planner/plan_32_to_64", |b| {
        b.iter(|| {
            ReplicationPlanner::new(&topo)
                .plan(black_box(&existing), black_box(&joining))
                .unwrap()
        })
    });
    let plan = ReplicationPlanner::new(&topo)
        .plan(&existing, &joining)
        .unwrap();
    let bw = BandwidthModel::paper_default();
    c.bench_function("planner/price_plan", |b| {
        b.iter(|| plan.duration(&bw, black_box(Bytes::from_mib(200)), Bytes::from_kib(64)))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/schedule_pop_1k", |b| {
        b.iter(|| {
            let mut s: Scheduler<u32> = Scheduler::new();
            for i in 0..1000u32 {
                s.schedule_after(SimDuration::from_nanos((i as u64 * 7919) % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = s.pop() {
                acc += e as u64;
            }
            acc
        })
    });
}

fn bench_models(c: &mut Criterion) {
    let perf = PerfModel::paper_default();
    let model = zoo::resnet50();
    c.bench_function("perf/iteration_time", |b| {
        b.iter(|| perf.iteration_time(&model, black_box(32), black_box(1024)))
    });
    c.bench_function("perf/optimal_workers", |b| {
        b.iter(|| perf.optimal_workers(&model, black_box(1024), 128))
    });
    c.bench_function("scaling/hybrid_decision", |b| {
        b.iter(|| {
            hybrid_scale(black_box(512), 16, 32, |tbs| {
                perf.optimal_workers(&model, tbs, 256)
            })
        })
    });
}

fn bench_adjustment_pricing(c: &mut Criterion) {
    let topo = ClusterSpec::paper_testbed().build();
    let bw = BandwidthModel::paper_default();
    let perf = PerfModel::paper_default();
    let model = zoo::resnet50();
    let ctx = elan_core::elasticity::AdjustmentContext {
        topology: &topo,
        bandwidth: &bw,
        perf: &perf,
        model: &model,
        total_batch: 512,
        coordination_interval: 10,
        seed: 42,
    };
    let sys = ElanSystem::new();
    let req = AdjustmentRequest::contiguous(16, 32);
    c.bench_function("elan/adjust_cost", |b| {
        b.iter(|| sys.adjust(black_box(&req), &ctx))
    });
}

fn bench_data_samplers(c: &mut Criterion) {
    c.bench_function("data/serial_epoch", |b| {
        b.iter(|| {
            let mut s = SerialSampler::new(50_000);
            let mut n = 0u64;
            while s.epoch() == 0 {
                n += s.next_batch(512).len() as u64;
            }
            n
        })
    });
    c.bench_function("data/chunk_repartition", |b| {
        b.iter(|| {
            let mut cs = ChunkSampler::new(50_000, 64, 16);
            for w in 0..16 {
                cs.next_for_worker(w, 100);
            }
            cs.repartition(black_box(24))
        })
    });
}

fn bench_coordination_protocol(c: &mut Criterion) {
    c.bench_function("protocol/scale_out_4_to_8", |b| {
        b.iter(|| {
            // Enough rounds that the ~25s init window completes within the
            // job (rounds are 2s each).
            let mut cfg = CoordinationConfig::baseline(4, 30);
            cfg.request = Some(AdjustmentRequest::contiguous(4, 8));
            run_coordination(black_box(&cfg))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_replication_planning,
        bench_event_queue,
        bench_models,
        bench_adjustment_pricing,
        bench_data_samplers,
        bench_coordination_protocol
);
criterion_main!(benches);
