//! Criterion micro-benchmarks for the data-plane hot paths: the chunked
//! cooperative allreduce (against the naive copy-everything baseline) and
//! the chunked snapshot build/assemble round trip used by pipelined state
//! replication.
//!
//! These complement the `dataplane` binary: the binary measures the
//! multi-threaded end-to-end numbers that land in `BENCH_dataplane.json`;
//! these isolate the single-thread per-call costs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use elan_core::state::WorkerId;
use elan_rt::comm::{naive::NaiveCommGroup, AllreduceOutcome, CommGroup};
use elan_rt::worker::{build_state_chunks, SnapshotAssembly};

const LEN: usize = 1 << 20;

fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn bench_allreduce_single(c: &mut Criterion) {
    let input = fill(7, LEN);

    // World of one isolates the per-call overhead (copy vs zero-copy +
    // pooled buffers) without thread scheduling noise.
    let naive = NaiveCommGroup::new([WorkerId(0)], LEN);
    c.bench_function("allreduce/naive_world1_1m", |b| {
        b.iter(|| match naive.allreduce(WorkerId(0), black_box(&input)) {
            AllreduceOutcome::Sum { sum, .. } => sum.len(),
            other => panic!("unexpected {other:?}"),
        })
    });

    let chunked = CommGroup::new([WorkerId(0)], LEN);
    c.bench_function("allreduce/chunked_world1_1m", |b| {
        b.iter(|| match chunked.allreduce(WorkerId(0), black_box(&input)) {
            AllreduceOutcome::Sum { sum, .. } => sum.len(),
            other => panic!("unexpected {other:?}"),
        })
    });
}

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let params = fill(11, LEN);
    let momentum = fill(13, LEN);

    c.bench_function("replication/build_chunks_1m", |b| {
        b.iter(|| build_state_chunks(black_box(&params), black_box(&momentum), 65_536).len())
    });

    let chunks = build_state_chunks(&params, &momentum, 65_536);
    let mut dst_params = vec![0.0f32; LEN];
    let mut dst_momentum = vec![0.0f32; LEN];
    c.bench_function("replication/assemble_chunks_1m", |b| {
        b.iter(|| {
            let mut asm = SnapshotAssembly::new();
            let mut done = None;
            for (kind, index, total, offset, data) in &chunks {
                if let Some(fin) = asm.offer(
                    *kind,
                    1,
                    0,
                    *index,
                    *total,
                    *offset,
                    data,
                    &mut dst_params,
                    &mut dst_momentum,
                ) {
                    done = Some(fin);
                }
            }
            done.expect("assembly completes")
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_allreduce_single, bench_snapshot_roundtrip
);
criterion_main!(benches);
