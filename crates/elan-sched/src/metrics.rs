//! Scheduling metrics: JPT, JCT, makespan, utilization (Figs. 1, 20–22).

use elan_sim::{Series, SimDuration, Summary};

use crate::job::JobOutcome;

/// Aggregate metrics over one simulation run.
#[derive(Debug, Clone)]
pub struct TraceMetrics {
    /// Per-job pending times, seconds.
    pub pending: Summary,
    /// Per-job completion times, seconds.
    pub completion: Summary,
    /// First submission → last finish.
    pub makespan: SimDuration,
    /// Time-weighted mean GPU allocation fraction.
    pub mean_utilization: f64,
}

impl TraceMetrics {
    /// Computes metrics from per-job outcomes and the utilization series.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty.
    pub fn from_run(outcomes: &[JobOutcome], utilization: &Series) -> Self {
        assert!(!outcomes.is_empty(), "no jobs finished");
        let pending: Vec<f64> = outcomes
            .iter()
            .map(|o| o.pending_time().as_secs_f64())
            .collect();
        let completion: Vec<f64> = outcomes
            .iter()
            .map(|o| o.completion_time().as_secs_f64())
            .collect();
        let first_submit = outcomes
            .iter()
            .map(|o| o.submit_at)
            .min()
            .expect("non-empty");
        let last_finish = outcomes
            .iter()
            .map(|o| o.finished_at)
            .max()
            .expect("non-empty");
        TraceMetrics {
            pending: Summary::from_values(&pending),
            completion: Summary::from_values(&completion),
            makespan: last_finish.duration_since(first_submit),
            mean_utilization: utilization.time_weighted_mean(),
        }
    }

    /// Average job pending time in seconds (Fig. 20's JPT).
    pub fn avg_jpt(&self) -> f64 {
        self.pending.mean()
    }

    /// Average job completion time in seconds (Fig. 20's JCT).
    pub fn avg_jct(&self) -> f64 {
        self.completion.mean()
    }

    /// Tail (p90) completion time in seconds — elasticity helps the tail
    /// even more than the mean, since stuck big jobs start at `min_res`.
    pub fn p90_jct(&self) -> f64 {
        self.completion.percentile(90.0)
    }

    /// Median completion time in seconds.
    pub fn median_jct(&self) -> f64 {
        self.completion.median()
    }
}

/// Relative improvement of `new` over `old` in percent (positive = lower).
pub fn reduction_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (old - new) / old * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elan_sim::SimTime;

    fn outcome(id: u32, submit: u64, start: u64, finish: u64) -> JobOutcome {
        JobOutcome {
            id,
            submit_at: SimTime::from_secs(submit),
            started_at: SimTime::from_secs(start),
            finished_at: SimTime::from_secs(finish),
            adjustments: 0,
        }
    }

    #[test]
    fn aggregates_are_correct() {
        let outcomes = vec![outcome(0, 0, 10, 110), outcome(1, 50, 90, 250)];
        let mut util = Series::new("u");
        util.record(SimTime::ZERO, 0.5);
        util.record(SimTime::from_secs(250), 0.5);
        let m = TraceMetrics::from_run(&outcomes, &util);
        assert_eq!(m.avg_jpt(), 25.0);
        assert_eq!(m.avg_jct(), 155.0);
        assert_eq!(m.median_jct(), 155.0);
        assert!(m.p90_jct() > m.median_jct());
        assert_eq!(m.makespan, SimDuration::from_secs(250));
        assert!((m.mean_utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reduction_percentage() {
        assert_eq!(reduction_pct(100.0, 57.0), 43.0);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "no jobs finished")]
    fn empty_outcomes_panic() {
        let _ = TraceMetrics::from_run(&[], &Series::new("u"));
    }
}
