//! Scheduling policies: FIFO, EASY Backfill, and their elastic variants.
//!
//! The elastic policy is the paper's §VI-C proposal:
//!
//! 1. **Admission** — a pending job may start once its `min_res` fits the
//!    free GPUs (E-FIFO admits strictly in order; E-BF also considers
//!    later jobs, like backfilling).
//! 2. **Allocation** — every participating job is granted `min_res`, then
//!    one worker at a time goes to the job with the largest marginal gain
//!    (estimated JCT reduction), until GPUs run out, every job hits its
//!    `max_res`, or no gain remains.

use std::collections::BTreeMap;

/// The four policies of Fig. 20.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// First-in-first-out with exact requested allocations.
    Fifo,
    /// EASY backfilling over FIFO (Slurm's default).
    Backfill,
    /// The elastic policy over FIFO ordering.
    ElasticFifo,
    /// The elastic policy with backfill-style admission.
    ElasticBackfill,
}

impl PolicyKind {
    /// True for the elastic variants.
    pub fn is_elastic(self) -> bool {
        matches!(self, PolicyKind::ElasticFifo | PolicyKind::ElasticBackfill)
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Backfill => "BF",
            PolicyKind::ElasticFifo => "E-FIFO",
            PolicyKind::ElasticBackfill => "E-BF",
        }
    }
}

/// A pending job, as the policy sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingView {
    /// Job id.
    pub id: u32,
    /// Requested workers (static allocation).
    pub req_res: u32,
    /// Minimum workers (elastic admission).
    pub min_res: u32,
    /// Maximum useful workers.
    pub max_res: u32,
    /// Estimated runtime at `req_res`, in seconds (for backfill).
    pub est_duration: f64,
}

/// A running job, as the policy sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningView {
    /// Job id.
    pub id: u32,
    /// Current workers.
    pub allocation: u32,
    /// Minimum workers.
    pub min_res: u32,
    /// Maximum useful workers.
    pub max_res: u32,
    /// Estimated remaining runtime at the current allocation, seconds.
    pub est_remaining: f64,
    /// True while a resource adjustment is still executing — the job is
    /// skipped by reallocation until it settles.
    pub in_transition: bool,
}

/// Throughput/work oracle implemented by the simulator: the policy asks
/// "what would job `id` deliver on `workers` workers" with the hybrid
/// scaling mechanism already applied to the batch size.
pub trait GainOracle {
    /// Steady-state throughput of `job` on `workers` workers (samples/s).
    fn throughput(&self, job: u32, workers: u32) -> f64;
    /// Remaining work of `job` in samples.
    fn remaining(&self, job: u32) -> f64;
}

/// A scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Start a pending job with the given workers.
    Admit {
        /// The job to start.
        job: u32,
        /// Its initial allocation.
        workers: u32,
    },
    /// Change a running job's allocation.
    Reallocate {
        /// The job to adjust.
        job: u32,
        /// Its new allocation.
        workers: u32,
    },
}

/// Computes scheduling actions for the current cluster state.
///
/// `pending` must be in submission order. Returns actions that never
/// exceed `total_gpus` when applied.
pub fn schedule(
    kind: PolicyKind,
    total_gpus: u32,
    pending: &[PendingView],
    running: &[RunningView],
    oracle: &dyn GainOracle,
) -> Vec<Action> {
    match kind {
        PolicyKind::Fifo => fifo(total_gpus, pending, running),
        PolicyKind::Backfill => backfill(total_gpus, pending, running),
        PolicyKind::ElasticFifo => elastic(total_gpus, pending, running, oracle, false),
        PolicyKind::ElasticBackfill => elastic(total_gpus, pending, running, oracle, true),
    }
}

fn used_gpus(running: &[RunningView]) -> u32 {
    running.iter().map(|r| r.allocation).sum()
}

fn fifo(total_gpus: u32, pending: &[PendingView], running: &[RunningView]) -> Vec<Action> {
    let mut free = total_gpus.saturating_sub(used_gpus(running));
    let mut actions = Vec::new();
    for p in pending {
        if p.req_res <= free {
            actions.push(Action::Admit {
                job: p.id,
                workers: p.req_res,
            });
            free -= p.req_res;
        } else {
            break; // strict FIFO: the head blocks everyone behind it
        }
    }
    actions
}

fn backfill(total_gpus: u32, pending: &[PendingView], running: &[RunningView]) -> Vec<Action> {
    let mut free = total_gpus.saturating_sub(used_gpus(running));
    let mut actions = Vec::new();
    let mut queue = pending.iter();

    // Admit the FIFO prefix.
    let mut head = None;
    for p in queue.by_ref() {
        if p.req_res <= free {
            actions.push(Action::Admit {
                job: p.id,
                workers: p.req_res,
            });
            free -= p.req_res;
        } else {
            head = Some(*p);
            break;
        }
    }
    let Some(head) = head else {
        return actions; // everything fit
    };

    // Reservation for the head: walk running jobs' estimated releases
    // until enough GPUs accumulate.
    let mut releases: Vec<(f64, u32)> = running
        .iter()
        .map(|r| (r.est_remaining, r.allocation))
        .collect();
    releases.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite estimates"));
    let mut avail = free;
    let mut reservation = f64::INFINITY;
    let mut released_by_reservation = 0u32;
    for (at, gpus) in &releases {
        if avail >= head.req_res {
            break;
        }
        avail += gpus;
        released_by_reservation += gpus;
        reservation = *at;
    }
    if avail < head.req_res {
        // The head can never fit (bigger than the cluster after all
        // running jobs end) — only its prefix admissions apply.
        return actions;
    }

    // Backfill later jobs: they must fit now AND not delay the head.
    for p in queue {
        if p.req_res > free {
            continue;
        }
        let finishes_before_reservation = p.est_duration <= reservation;
        let leaves_room = free + released_by_reservation >= head.req_res + p.req_res;
        if finishes_before_reservation || leaves_room {
            actions.push(Action::Admit {
                job: p.id,
                workers: p.req_res,
            });
            free -= p.req_res;
        }
    }
    actions
}

fn elastic(
    total_gpus: u32,
    pending: &[PendingView],
    running: &[RunningView],
    oracle: &dyn GainOracle,
    backfill_admission: bool,
) -> Vec<Action> {
    // GPUs pinned by jobs mid-transition are untouchable this round.
    let pinned: u32 = running
        .iter()
        .filter(|r| r.in_transition)
        .map(|r| r.allocation)
        .sum();
    let mut budget = total_gpus.saturating_sub(pinned);

    // Participants: settled running jobs keep at least min_res.
    let mut participants: Vec<(u32, u32, u32)> = Vec::new(); // (id, min, max)
    for r in running.iter().filter(|r| !r.in_transition) {
        participants.push((r.id, r.min_res, r.max_res));
    }
    let mut min_sum: u32 = participants.iter().map(|&(_, min, _)| min).sum();

    // Admission on min_res: strictly in order (E-FIFO) or scanning past
    // blocked jobs (E-BF).
    let mut admitted = Vec::new();
    for p in pending {
        if min_sum + p.min_res <= budget {
            participants.push((p.id, p.min_res, p.max_res));
            admitted.push(p.id);
            min_sum += p.min_res;
        } else if !backfill_admission {
            break;
        }
    }

    // Allocation: min_res for everyone, then greedy marginal gain.
    let mut alloc: BTreeMap<u32, u32> =
        participants.iter().map(|&(id, min, _)| (id, min)).collect();
    let max_res: BTreeMap<u32, u32> = participants.iter().map(|&(id, _, max)| (id, max)).collect();
    budget -= min_sum;
    while budget > 0 {
        let mut best: Option<(u32, f64)> = None;
        for &(id, _, _) in &participants {
            let cur = alloc[&id];
            if cur >= max_res[&id] {
                continue;
            }
            let rem = oracle.remaining(id);
            let t_now = rem / oracle.throughput(id, cur);
            let t_next = rem / oracle.throughput(id, cur + 1);
            let gain = t_now - t_next;
            if gain > 0.0 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((id, gain));
            }
        }
        let Some((id, _)) = best else { break };
        *alloc.get_mut(&id).expect("participant") += 1;
        budget -= 1;
    }

    // Emit actions with hysteresis on grows (avoid 1-GPU thrash).
    let mut actions = Vec::new();
    for &(id, _, _) in &participants {
        let workers = alloc[&id];
        if admitted.contains(&id) {
            actions.push(Action::Admit { job: id, workers });
        } else {
            let current = running
                .iter()
                .find(|r| r.id == id)
                .expect("running participant")
                .allocation;
            if workers < current || (workers > current && workers - current >= (current / 4).max(1))
            {
                actions.push(Action::Reallocate { job: id, workers });
            }
        }
    }
    actions
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlatOracle;
    impl GainOracle for FlatOracle {
        fn throughput(&self, _job: u32, workers: u32) -> f64 {
            // Linear scaling with slight saturation.
            workers as f64 / (1.0 + 0.01 * workers as f64)
        }
        fn remaining(&self, _job: u32) -> f64 {
            1000.0
        }
    }

    fn pend(id: u32, req: u32, min: u32, max: u32, dur: f64) -> PendingView {
        PendingView {
            id,
            req_res: req,
            min_res: min,
            max_res: max,
            est_duration: dur,
        }
    }

    fn run(id: u32, alloc: u32, min: u32, max: u32, rem: f64) -> RunningView {
        RunningView {
            id,
            allocation: alloc,
            min_res: min,
            max_res: max,
            est_remaining: rem,
            in_transition: false,
        }
    }

    #[test]
    fn fifo_blocks_behind_head() {
        let pending = [pend(1, 16, 4, 32, 100.0), pend(2, 2, 1, 8, 50.0)];
        let running = [run(0, 120, 4, 128, 500.0)];
        let actions = schedule(PolicyKind::Fifo, 128, &pending, &running, &FlatOracle);
        // Head needs 16, only 8 free: nothing starts, not even job 2.
        assert!(actions.is_empty());
    }

    #[test]
    fn fifo_admits_in_order() {
        let pending = [pend(1, 4, 2, 8, 100.0), pend(2, 2, 1, 8, 50.0)];
        let actions = schedule(PolicyKind::Fifo, 8, &pending, &[], &FlatOracle);
        assert_eq!(
            actions,
            vec![
                Action::Admit { job: 1, workers: 4 },
                Action::Admit { job: 2, workers: 2 }
            ]
        );
    }

    #[test]
    fn backfill_lets_short_jobs_jump() {
        // Head (16 GPUs) blocked; a short 2-GPU job can run meanwhile.
        let pending = [pend(1, 16, 4, 32, 1000.0), pend(2, 2, 1, 8, 50.0)];
        let running = [run(0, 120, 4, 128, 500.0)];
        let actions = schedule(PolicyKind::Backfill, 128, &pending, &running, &FlatOracle);
        assert_eq!(actions, vec![Action::Admit { job: 2, workers: 2 }]);
    }

    #[test]
    fn backfill_rejects_head_delaying_jobs() {
        // 24 GPUs: running job holds 16 (free 8). The head needs 20, so it
        // waits for the release at t=500. A long candidate (est 9999)
        // using all 8 free GPUs would leave only 24-8=16 < 20 at the
        // reservation — it must be rejected.
        let pending = [pend(1, 20, 4, 32, 1000.0), pend(2, 8, 1, 8, 9999.0)];
        let running = [run(0, 16, 4, 24, 500.0)];
        let actions = schedule(PolicyKind::Backfill, 24, &pending, &running, &FlatOracle);
        assert!(actions.is_empty(), "got {actions:?}");
    }

    #[test]
    fn backfill_admits_non_delaying_long_jobs() {
        // Same cluster, but the candidate leaves enough room at the
        // reservation (head needs 16, 24-8=16 remains): EASY admits it.
        let pending = [pend(1, 16, 4, 32, 1000.0), pend(2, 8, 1, 8, 9999.0)];
        let running = [run(0, 16, 4, 24, 500.0)];
        let actions = schedule(PolicyKind::Backfill, 24, &pending, &running, &FlatOracle);
        assert_eq!(actions, vec![Action::Admit { job: 2, workers: 8 }]);
    }

    #[test]
    fn elastic_admits_on_min_res() {
        // FIFO would block (req 16 > 8 free); elastic starts at min 4.
        let pending = [pend(1, 16, 4, 32, 100.0)];
        let running = [run(0, 120, 4, 120, 500.0)];
        let actions = schedule(
            PolicyKind::ElasticFifo,
            128,
            &pending,
            &running,
            &FlatOracle,
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Admit { job: 1, workers } if *workers >= 4)));
    }

    #[test]
    fn elastic_fifo_blocks_scan_elastic_bf_continues() {
        // The running job is mid-transition, so its 120 GPUs are pinned:
        // only 8 are up for grabs. Job 1's min 12 does not fit; job 2's
        // min 2 does.
        let pending = [
            pend(1, 16, 12, 32, 100.0), // min 12 doesn't fit in 8 free
            pend(2, 4, 2, 8, 50.0),     // min 2 does
        ];
        let mut pinned = run(0, 120, 4, 120, 500.0);
        pinned.in_transition = true;
        let running = [pinned];
        let f = schedule(
            PolicyKind::ElasticFifo,
            128,
            &pending,
            &running,
            &FlatOracle,
        );
        assert!(!f.iter().any(|a| matches!(a, Action::Admit { job: 2, .. })));
        let b = schedule(
            PolicyKind::ElasticBackfill,
            128,
            &pending,
            &running,
            &FlatOracle,
        );
        assert!(b.iter().any(|a| matches!(a, Action::Admit { job: 2, .. })));
    }

    #[test]
    fn elastic_spreads_free_gpus_by_marginal_gain() {
        // One running job well below max: free GPUs flow to it.
        let running = [run(0, 4, 2, 64, 1000.0)];
        let actions = schedule(PolicyKind::ElasticFifo, 32, &[], &running, &FlatOracle);
        assert_eq!(
            actions,
            vec![Action::Reallocate {
                job: 0,
                workers: 32
            }]
        );
    }

    #[test]
    fn elastic_respects_max_res() {
        let running = [run(0, 4, 2, 8, 1000.0)];
        let actions = schedule(PolicyKind::ElasticFifo, 128, &[], &running, &FlatOracle);
        assert_eq!(actions, vec![Action::Reallocate { job: 0, workers: 8 }]);
    }

    #[test]
    fn transitioning_jobs_are_left_alone() {
        let mut r = run(0, 16, 2, 64, 1000.0);
        r.in_transition = true;
        let actions = schedule(PolicyKind::ElasticFifo, 128, &[], &[r], &FlatOracle);
        assert!(actions.is_empty());
    }

    #[test]
    fn allocations_never_exceed_total() {
        let pending = [
            pend(1, 8, 2, 64, 100.0),
            pend(2, 8, 2, 64, 100.0),
            pend(3, 8, 2, 64, 100.0),
        ];
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::Backfill,
            PolicyKind::ElasticFifo,
            PolicyKind::ElasticBackfill,
        ] {
            let actions = schedule(kind, 16, &pending, &[], &FlatOracle);
            let total: u32 = actions
                .iter()
                .map(|a| match a {
                    Action::Admit { workers, .. } | Action::Reallocate { workers, .. } => *workers,
                })
                .sum();
            assert!(total <= 16, "{kind:?} oversubscribed: {total}");
        }
    }

    #[test]
    fn small_grows_are_suppressed() {
        // 16 -> 17 is within hysteresis; no action.
        let running = [run(0, 16, 2, 17, 1000.0)];
        let actions = schedule(PolicyKind::ElasticFifo, 17, &[], &running, &FlatOracle);
        assert!(actions.is_empty());
    }
}
