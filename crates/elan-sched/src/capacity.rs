//! Time-varying cluster capacity — transient/spot resources (§VI-C's
//! cloud scenario: "elasticity can be leveraged to utilize transient
//! resources such as spot instances").
//!
//! A [`CapacitySchedule`] is a piecewise-constant GPU count over time.
//! When capacity drops below the current allocation, elastic policies
//! shrink running jobs gracefully; static policies must evict whole jobs
//! (checkpoint-and-requeue), losing the restart time and queueing again.

use elan_sim::SimTime;

/// A piecewise-constant capacity timeline.
///
/// # Examples
///
/// ```
/// use elan_sched::capacity::CapacitySchedule;
/// use elan_sim::SimTime;
///
/// let s = CapacitySchedule::new(vec![(SimTime::ZERO, 128), (SimTime::from_secs(3600), 64)]);
/// assert_eq!(s.at(SimTime::from_secs(10)), 128);
/// assert_eq!(s.at(SimTime::from_secs(7200)), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacitySchedule {
    points: Vec<(SimTime, u32)>,
}

impl CapacitySchedule {
    /// Builds a schedule from `(start, capacity)` change points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, the first point is not at time zero,
    /// times are not strictly increasing, or any capacity is zero.
    pub fn new(points: Vec<(SimTime, u32)>) -> Self {
        assert!(!points.is_empty(), "schedule needs at least one point");
        assert_eq!(points[0].0, SimTime::ZERO, "first point must be at t=0");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "points must strictly increase in time");
        }
        assert!(
            points.iter().all(|&(_, c)| c > 0),
            "capacity must stay positive"
        );
        CapacitySchedule { points }
    }

    /// A constant capacity.
    pub fn constant(gpus: u32) -> Self {
        CapacitySchedule::new(vec![(SimTime::ZERO, gpus)])
    }

    /// A spot-market pattern: `base` GPUs with dips to `dip` for
    /// `dip_hours` starting every `period_hours`, over `total_hours`.
    ///
    /// # Panics
    ///
    /// Panics if the dip is longer than the period or any count is zero.
    pub fn spot_pattern(
        base: u32,
        dip: u32,
        period_hours: u64,
        dip_hours: u64,
        total_hours: u64,
    ) -> Self {
        assert!(dip_hours < period_hours, "dip must fit within the period");
        assert!(base > 0 && dip > 0);
        let mut points = vec![(SimTime::ZERO, base)];
        let mut h = period_hours;
        while h + dip_hours <= total_hours {
            points.push((SimTime::from_secs(h * 3600), dip));
            points.push((SimTime::from_secs((h + dip_hours) * 3600), base));
            h += period_hours;
        }
        CapacitySchedule::new(points)
    }

    /// Capacity in effect at `t`.
    pub fn at(&self, t: SimTime) -> u32 {
        self.points
            .iter()
            .rev()
            .find(|&&(start, _)| start <= t)
            .map(|&(_, c)| c)
            .expect("point 0 covers all times")
    }

    /// The next change strictly after `t`, if any.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        self.points.iter().map(|&(at, _)| at).find(|&at| at > t)
    }

    /// The largest capacity the schedule ever offers.
    pub fn peak(&self) -> u32 {
        self.points
            .iter()
            .map(|&(_, c)| c)
            .max()
            .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piecewise_lookup() {
        let s = CapacitySchedule::new(vec![
            (SimTime::ZERO, 100),
            (SimTime::from_secs(10), 50),
            (SimTime::from_secs(20), 75),
        ]);
        assert_eq!(s.at(SimTime::ZERO), 100);
        assert_eq!(s.at(SimTime::from_secs(9)), 100);
        assert_eq!(s.at(SimTime::from_secs(10)), 50);
        assert_eq!(s.at(SimTime::from_secs(100)), 75);
        assert_eq!(s.peak(), 100);
    }

    #[test]
    fn next_change_walks_points() {
        let s = CapacitySchedule::new(vec![(SimTime::ZERO, 10), (SimTime::from_secs(5), 6)]);
        assert_eq!(
            s.next_change_after(SimTime::ZERO),
            Some(SimTime::from_secs(5))
        );
        assert_eq!(s.next_change_after(SimTime::from_secs(5)), None);
    }

    #[test]
    fn spot_pattern_alternates() {
        let s = CapacitySchedule::spot_pattern(128, 64, 12, 4, 48);
        assert_eq!(s.at(SimTime::from_secs(1)), 128);
        assert_eq!(s.at(SimTime::from_secs(13 * 3600)), 64);
        assert_eq!(s.at(SimTime::from_secs(17 * 3600)), 128);
        assert_eq!(s.at(SimTime::from_secs(25 * 3600)), 64);
    }

    #[test]
    #[should_panic(expected = "first point must be at t=0")]
    fn requires_time_zero() {
        let _ = CapacitySchedule::new(vec![(SimTime::from_secs(1), 10)]);
    }

    #[test]
    #[should_panic(expected = "capacity must stay positive")]
    fn rejects_zero_capacity() {
        let _ = CapacitySchedule::new(vec![(SimTime::ZERO, 0)]);
    }
}
