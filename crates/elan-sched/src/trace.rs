//! Synthetic job-trace generation.
//!
//! The paper replays a down-sampled two-day trace from a SenseTime
//! production cluster (128 GPUs after downscaling); the trace itself is
//! proprietary, so we generate a statistically similar one: job arrivals
//! follow an inhomogeneous Poisson process with a diurnal (24 h) intensity
//! fluctuation, each job randomly draws one of the Table I model
//! configurations, and resource requests skew small with a heavy tail —
//! the shape that produces Fig. 1's utilization swings.

use elan_models::{zoo, ModelSpec, PerfModel};
use elan_sim::{SeedStream, SimDuration, SimTime};
use rand::Rng;

use crate::job::JobSpec;

/// Trace-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Span covered by job submissions.
    pub duration: SimDuration,
    /// Expected number of jobs over the span.
    pub expected_jobs: u32,
    /// Cluster size (bounds `max_res`).
    pub total_gpus: u32,
    /// Mean job runtime at the requested allocation.
    pub mean_runtime: SimDuration,
    /// Root seed.
    pub seed: u64,
}

impl TraceConfig {
    /// The paper's §VI-C setup: a two-day trace, 128 GPUs, loaded heavily
    /// enough that queues form at the diurnal peaks (as in the paper's
    /// production cluster).
    pub fn paper_two_day(seed: u64) -> Self {
        TraceConfig {
            duration: SimDuration::from_secs(2 * 24 * 3600),
            expected_jobs: 180,
            total_gpus: 128,
            mean_runtime: SimDuration::from_secs(9000),
            seed,
        }
    }

    /// The Fig. 1 setup: one week of submissions.
    pub fn one_week(seed: u64) -> Self {
        TraceConfig {
            duration: SimDuration::from_secs(7 * 24 * 3600),
            expected_jobs: 630,
            total_gpus: 128,
            mean_runtime: SimDuration::from_secs(9000),
            seed,
        }
    }
}

/// The diurnal arrival-intensity multiplier at time `t` (peaks mid-day,
/// troughs at night; period 24 h).
pub fn diurnal_intensity(t: SimTime) -> f64 {
    let day_frac = (t.as_secs_f64() % 86_400.0) / 86_400.0;
    1.0 + 0.8 * (2.0 * std::f64::consts::PI * (day_frac - 0.25)).sin()
}

/// Generates a trace deterministically from the config.
///
/// Jobs are sorted by submission time and validated.
pub fn generate_trace(cfg: &TraceConfig) -> Vec<JobSpec> {
    let seeds = SeedStream::new(cfg.seed);
    let mut arr_rng = seeds.rng("arrivals");
    let mut job_rng = seeds.rng("jobs");
    let perf = PerfModel::paper_default();

    // Inhomogeneous Poisson via thinning: peak rate = 1.8x the mean rate.
    let span = cfg.duration.as_secs_f64();
    let mean_rate = cfg.expected_jobs as f64 / span;
    let peak_rate = mean_rate * 1.8;

    let mut jobs = Vec::new();
    let mut t = 0.0f64;
    let mut id = 0u32;
    loop {
        // Exponential inter-arrival at the peak rate.
        let u: f64 = arr_rng.gen_range(1e-12..1.0);
        t += -u.ln() / peak_rate;
        if t >= span {
            break;
        }
        let submit = SimTime::from_nanos((t * 1e9) as u64);
        // Thinning: accept with probability intensity/1.8.
        if arr_rng.gen_range(0.0..1.0) > diurnal_intensity(submit) / 1.8 {
            continue;
        }
        jobs.push(make_job(id, submit, cfg, &perf, &mut job_rng));
        id += 1;
    }
    for j in &jobs {
        j.validate();
    }
    jobs
}

fn make_job(
    id: u32,
    submit_at: SimTime,
    cfg: &TraceConfig,
    perf: &PerfModel,
    rng: &mut impl Rng,
) -> JobSpec {
    let model = pick_model(rng);
    // Requested workers skew small with a heavy tail (powers of two); the
    // occasional 64-GPU job creates the head-of-line blocking that
    // motivates backfilling and elasticity.
    let pool = [2u32, 4, 4, 8, 8, 8, 16, 16, 16, 32, 32, 64];
    // A draw can exceed a small test cluster; requests are capped at the
    // cluster size (a real scheduler would reject them at submission).
    let req_res = pool[rng.gen_range(0..pool.len())].min(cfg.total_gpus.max(1));
    let per_worker = (model.max_batch_per_worker / 2).clamp(8, 64);
    let initial_tbs = req_res * per_worker;

    // min_res: the fewest workers that fit the batch in GPU memory.
    let min_res = initial_tbs
        .div_ceil(model.max_batch_per_worker)
        .clamp(1, req_res);
    // max_res: weak scaling must stay within the convergence-safe batch.
    let safe_factor = (2048 / initial_tbs).max(1);
    let max_res = (req_res * safe_factor.min(4))
        .min(cfg.total_gpus)
        .max(req_res);

    // Work: log-uniform runtime around the configured mean.
    let mean = cfg.mean_runtime.as_secs_f64();
    let factor = (rng.gen_range(0.0..1.0f64) * 2.0 - 1.0) * 1.2; // +-1.2 decades/e
    let runtime = (mean * factor.exp()).clamp(300.0, 6.0 * mean);
    let thr = perf.throughput(&model, req_res, initial_tbs);
    JobSpec {
        id,
        submit_at,
        model,
        total_samples: thr * runtime,
        initial_tbs,
        req_res,
        min_res,
        max_res,
    }
}

fn pick_model(rng: &mut impl Rng) -> ModelSpec {
    let models = zoo::evaluation_models();
    let weights = [30u32, 10, 25, 15, 20]; // ResNet-heavy, as in CV clusters
    let total: u32 = weights.iter().sum();
    let mut draw = rng.gen_range(0..total);
    for (m, &w) in models.iter().zip(&weights) {
        if draw < w {
            return m.clone();
        }
        draw -= w;
    }
    models[0].clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let cfg = TraceConfig::paper_two_day(7);
        let a = generate_trace(&cfg);
        let b = generate_trace(&cfg);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }

    #[test]
    fn job_count_near_expectation() {
        let cfg = TraceConfig::paper_two_day(11);
        let jobs = generate_trace(&cfg);
        let n = jobs.len() as f64;
        let expect = cfg.expected_jobs as f64;
        assert!(
            (0.6 * expect..1.4 * expect).contains(&n),
            "generated {n} vs expected {expect}"
        );
    }

    #[test]
    fn submissions_are_ordered_and_in_span() {
        let cfg = TraceConfig::paper_two_day(3);
        let jobs = generate_trace(&cfg);
        for w in jobs.windows(2) {
            assert!(w[0].submit_at <= w[1].submit_at);
        }
        let end = SimTime::ZERO + cfg.duration;
        assert!(jobs.iter().all(|j| j.submit_at < end));
    }

    #[test]
    fn resources_are_consistent() {
        for job in generate_trace(&TraceConfig::paper_two_day(5)) {
            assert!(job.min_res <= job.req_res && job.req_res <= job.max_res);
            assert!(job.max_res <= 128);
            // The batch must fit on min_res workers.
            assert!(job.initial_tbs <= job.min_res * job.model.max_batch_per_worker);
        }
    }

    #[test]
    fn diurnal_intensity_fluctuates() {
        // Peak mid-day, trough at midnight (phase -0.25 in the sinusoid).
        let noon = diurnal_intensity(SimTime::from_secs(12 * 3600));
        let night = diurnal_intensity(SimTime::from_secs(0));
        assert!(noon > 1.5);
        assert!(night < 0.5);
        // Period is 24h.
        let again = diurnal_intensity(SimTime::from_secs(36 * 3600));
        assert!((noon - again).abs() < 1e-9);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_trace(&TraceConfig::paper_two_day(1));
        let b = generate_trace(&TraceConfig::paper_two_day(2));
        assert_ne!(a.len(), 0);
        assert!(a.len() != b.len() || a.iter().zip(&b).any(|(x, y)| x != y));
    }
}
