//! The event-driven cluster simulator executing job traces (§VI-C).
//!
//! Time advances from event to event (job arrivals and completions);
//! between events every running job progresses at a piecewise-constant
//! throughput. Resource adjustments — priced by the plugged-in
//! [`ElasticitySystem`] — materialize as throughput transitions: the old
//! rate holds while new workers start asynchronously, a pause stalls the
//! job, and the new rate applies afterwards. This makes the elasticity
//! cost comparison of Fig. 22 (Elan vs. S&R vs. Ideal) a one-line swap.

use std::collections::BTreeMap;

use elan_core::elasticity::{AdjustmentContext, AdjustmentRequest, ElasticitySystem};
use elan_core::scaling::hybrid_scale;
use elan_models::PerfModel;
use elan_sim::{Series, SimDuration, SimTime};
use elan_topology::{BandwidthModel, ClusterSpec, GpuId, Topology};

use crate::capacity::CapacitySchedule;
use crate::job::{JobOutcome, JobSpec};
use crate::metrics::TraceMetrics;
use crate::policy::{self, Action, GainOracle, PendingView, PolicyKind, RunningView};

/// Simulation parameters.
#[derive(Clone, Copy)]
pub struct SimConfig<'a> {
    /// GPUs in the cluster (the ceiling; see [`SimConfig::capacity`]).
    pub total_gpus: u32,
    /// The scheduling policy.
    pub policy: PolicyKind,
    /// The elasticity system charging adjustments (elastic policies).
    pub system: &'a dyn ElasticitySystem,
    /// Workers coordinate every this many iterations.
    pub coordination_interval: u32,
    /// Start+init cost charged when a job first launches.
    pub startup: SimDuration,
    /// Root seed (adjustment draws).
    pub seed: u64,
    /// Optional time-varying capacity (spot/transient resources). When a
    /// dip strands allocations above capacity, elastic policies shrink
    /// jobs; static policies evict whole jobs back to the queue.
    pub capacity: Option<&'a CapacitySchedule>,
}

impl std::fmt::Debug for SimConfig<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("total_gpus", &self.total_gpus)
            .field("policy", &self.policy)
            .field("system", &self.system.name())
            .finish()
    }
}

/// The result of one simulated run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-job outcomes, by job id order.
    pub outcomes: Vec<JobOutcome>,
    /// Allocated-GPU fraction over time (of the configured ceiling).
    pub utilization: Series,
    /// Total resource adjustments performed.
    pub total_adjustments: u64,
    /// Whole-job evictions forced by capacity dips (static policies
    /// cannot shrink; elastic ones rarely need to evict).
    pub evictions: u64,
}

impl SimResult {
    /// Aggregates the run into Fig. 20-style metrics.
    pub fn metrics(&self) -> TraceMetrics {
        TraceMetrics::from_run(&self.outcomes, &self.utilization)
    }
}

#[derive(Debug, Clone, Copy)]
struct Transition {
    /// Old throughput holds until here (hidden async start).
    old_until: SimTime,
    /// Zero throughput (the pause) until here; new rate afterwards.
    resume_at: SimTime,
    thr_old: f64,
}

#[derive(Debug, Clone)]
struct Running {
    spec: JobSpec,
    allocation: u32,
    tbs: u32,
    /// Steady throughput at the current allocation (after transition).
    thr: f64,
    remaining: f64,
    started_at: SimTime,
    adjustments: u32,
    transition: Option<Transition>,
}

impl Running {
    /// Advances progress across `[from, to)`.
    fn advance(&mut self, from: SimTime, to: SimTime) {
        let mut t = from;
        while t < to {
            let (rate, seg_end) = match self.transition {
                Some(tr) if t < tr.old_until => (tr.thr_old, tr.old_until.min(to)),
                Some(tr) if t < tr.resume_at => (0.0, tr.resume_at.min(to)),
                _ => (self.thr, to),
            };
            self.remaining -= rate * seg_end.duration_since(t).as_secs_f64();
            t = seg_end;
        }
        if let Some(tr) = self.transition {
            if to >= tr.resume_at {
                self.transition = None;
            }
        }
        self.remaining = self.remaining.max(0.0);
    }

    /// Exact completion instant from `now`, accounting for transitions.
    fn finish_estimate(&self, now: SimTime) -> SimTime {
        let mut rem = self.remaining;
        let mut t = now;
        if let Some(tr) = self.transition {
            if t < tr.old_until {
                let span = tr.old_until.duration_since(t).as_secs_f64();
                if tr.thr_old > 0.0 && rem <= tr.thr_old * span {
                    return t + SimDuration::from_secs_f64(rem / tr.thr_old);
                }
                rem -= tr.thr_old * span;
                t = tr.old_until;
            }
            if t < tr.resume_at {
                t = tr.resume_at;
            }
        }
        debug_assert!(self.thr > 0.0, "running job with zero steady rate");
        t + SimDuration::from_secs_f64(rem.max(0.0) / self.thr)
    }

    /// Remaining seconds at the current steady rate (policy view).
    fn est_remaining_secs(&self, now: SimTime) -> f64 {
        self.finish_estimate(now).duration_since(now).as_secs_f64()
    }
}

/// The batch size job `spec` trains with on `n` workers, per the hybrid
/// scaling mechanism anchored at the job's tuned configuration.
fn tbs_for(spec: &JobSpec, perf: &PerfModel, n: u32) -> u32 {
    if n <= spec.req_res {
        spec.initial_tbs
    } else {
        let model = spec.model.clone();
        hybrid_scale(spec.initial_tbs, spec.req_res, n, |tbs| {
            perf.optimal_workers(&model, tbs, 256)
        })
        .new_total_batch
    }
}

struct Oracle<'a> {
    perf: &'a PerfModel,
    jobs: &'a BTreeMap<u32, Running>,
    pending: &'a [JobSpec],
}

impl GainOracle for Oracle<'_> {
    fn throughput(&self, job: u32, workers: u32) -> f64 {
        let spec = self
            .jobs
            .get(&job)
            .map(|r| &r.spec)
            .or_else(|| self.pending.iter().find(|p| p.id == job))
            .expect("oracle asked about unknown job");
        let tbs = tbs_for(spec, self.perf, workers);
        self.perf.throughput(&spec.model, workers, tbs)
    }

    fn remaining(&self, job: u32) -> f64 {
        self.jobs
            .get(&job)
            .map(|r| r.remaining)
            .or_else(|| {
                self.pending
                    .iter()
                    .find(|p| p.id == job)
                    .map(|p| p.total_samples)
            })
            .expect("oracle asked about unknown job")
    }
}

/// Runs the trace under the configured policy; returns per-job outcomes
/// and the utilization timeline.
///
/// # Panics
///
/// Panics if any job is invalid or larger than the cluster.
pub fn run_trace(cfg: &SimConfig<'_>, jobs: &[JobSpec]) -> SimResult {
    for j in jobs {
        j.validate();
        assert!(
            j.req_res <= cfg.total_gpus,
            "job {} requests more than the cluster",
            j.id
        );
    }
    let perf = PerfModel::paper_default();
    let bandwidth = BandwidthModel::paper_default();
    let nodes = cfg.total_gpus.div_ceil(8).max(1);
    let topology: Topology = ClusterSpec::new(nodes, 2, 2, 2).build();

    let mut arrivals: Vec<&JobSpec> = jobs.iter().collect();
    arrivals.sort_by_key(|j| (j.submit_at, j.id));
    let mut next_arrival = 0usize;

    let mut pending: Vec<JobSpec> = Vec::new();
    let mut running: BTreeMap<u32, Running> = BTreeMap::new();
    let mut outcomes: Vec<JobOutcome> = Vec::new();
    let mut utilization = Series::new(format!("util-{}", cfg.policy.name()));
    let mut total_adjustments = 0u64;
    let mut evictions = 0u64;
    // Survives evictions: (first start, adjustments so far) per job.
    let mut carry: BTreeMap<u32, (SimTime, u32)> = BTreeMap::new();

    let mut now = SimTime::ZERO;
    utilization.record(now, 0.0);

    loop {
        // Next event: earliest arrival, finish, transition completion, or
        // capacity change. Transition completions re-run the policy once
        // start/init or an adjustment settles, so freed or newly
        // productive GPUs are reallocated.
        let arrival_at = arrivals.get(next_arrival).map(|j| j.submit_at);
        let finish_at = running.values().map(|r| r.finish_estimate(now)).min();
        let settle_at = running
            .values()
            .filter_map(|r| r.transition.map(|t| t.resume_at))
            .min();
        let capacity_at = cfg
            .capacity
            .and_then(|c| c.next_change_after(now))
            // Capacity changes only matter while work remains.
            .filter(|_| {
                !running.is_empty() || !pending.is_empty() || next_arrival < arrivals.len()
            });
        let Some(event_at) = [arrival_at, finish_at, settle_at, capacity_at]
            .into_iter()
            .flatten()
            .min()
        else {
            break;
        };

        // Advance everyone to the event.
        for r in running.values_mut() {
            r.advance(now, event_at);
        }
        now = event_at;

        // Collect finished jobs. The criterion must match the estimate
        // exactly, or an event could land at `now` without completing any
        // job and the loop would spin at one instant forever.
        let finished: Vec<u32> = running
            .iter()
            .filter(|(_, r)| r.remaining <= 1e-6 || r.finish_estimate(now) <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in finished {
            let r = running.remove(&id).expect("finished job exists");
            let (first_started, prior_adjustments) = carry.remove(&id).unwrap_or((r.started_at, 0));
            outcomes.push(JobOutcome {
                id,
                submit_at: r.spec.submit_at,
                started_at: first_started,
                finished_at: now,
                adjustments: prior_adjustments + r.adjustments,
            });
        }

        // Accept arrivals.
        while arrivals
            .get(next_arrival)
            .is_some_and(|j| j.submit_at <= now)
        {
            pending.push(arrivals[next_arrival].clone());
            next_arrival += 1;
        }

        // Capacity enforcement. Elastic policies shrink gracefully: jobs
        // caught mid-transition are force-shrunk to min_res (another
        // ~1s Elan adjustment), and whole-job eviction happens only when
        // even the min_res floors cannot fit. Static policies cannot
        // shrink, so a dip evicts the newest-started jobs (checkpoint-
        // and-requeue, keeping their progress).
        let total = cfg
            .capacity
            .map_or(cfg.total_gpus, |c| c.at(now).min(cfg.total_gpus));
        let floor = |r: &Running| -> u32 {
            if cfg.policy.is_elastic() {
                r.spec.min_res
            } else {
                r.allocation
            }
        };
        loop {
            let floor_sum: u32 = running.values().map(floor).sum();
            if floor_sum <= total {
                break;
            }
            let &victim = running
                .iter()
                .max_by_key(|(id, r)| (r.started_at, **id))
                .map(|(id, _)| id)
                .expect("floor_sum > 0 implies a running job");
            let mut r = running.remove(&victim).expect("victim exists");
            let entry = carry.entry(victim).or_insert((r.started_at, 0));
            entry.1 += r.adjustments;
            // The job keeps its progress (checkpoint semantics) and waits
            // in queue order again.
            r.spec.total_samples = r.remaining.max(0.0);
            pending.push(r.spec);
            pending.sort_by_key(|p| (p.submit_at, p.id));
            evictions += 1;
        }
        if cfg.policy.is_elastic() {
            // The policy leaves transitioning jobs alone, but a capacity
            // dip cannot wait for them: force-shrink the largest ones to
            // min_res until pinned allocations plus settled floors fit.
            loop {
                let pinned_plus_floor: u32 = running
                    .values()
                    .map(|r| {
                        if r.transition.is_some() {
                            r.allocation
                        } else {
                            r.spec.min_res
                        }
                    })
                    .sum();
                if pinned_plus_floor <= total {
                    break;
                }
                let Some((&victim, _)) = running
                    .iter()
                    .filter(|(_, r)| r.transition.is_some() && r.allocation > r.spec.min_res)
                    .max_by_key(|(id, r)| (r.allocation - r.spec.min_res, **id))
                else {
                    break; // nothing shrinkable; min floors already fit
                };
                let r = running.get_mut(&victim).expect("victim exists");
                let workers = r.spec.min_res;
                let request = AdjustmentRequest::new(
                    (0..r.allocation).map(GpuId).collect(),
                    (0..workers).map(GpuId).collect(),
                )
                .expect("shrink is a valid request");
                let ctx = AdjustmentContext {
                    topology: &topology,
                    bandwidth: &bandwidth,
                    perf: &perf,
                    model: &r.spec.model,
                    total_batch: r.tbs,
                    coordination_interval: cfg.coordination_interval,
                    seed: cfg.seed.wrapping_add(victim as u64).wrapping_add(7777),
                };
                let cost = cfg.system.adjust(&request, &ctx);
                r.allocation = workers;
                r.tbs = tbs_for(&r.spec, &perf, workers);
                r.thr = perf.throughput(&r.spec.model, workers, r.tbs);
                r.transition = Some(Transition {
                    old_until: now,
                    resume_at: now + cost.pause,
                    thr_old: 0.0,
                });
                r.adjustments += 1;
                total_adjustments += 1;
            }
        }

        // Run the policy.
        let pending_views: Vec<PendingView> = pending
            .iter()
            .map(|p| PendingView {
                id: p.id,
                req_res: p.req_res,
                min_res: p.min_res,
                max_res: p.max_res,
                est_duration: p.total_samples / perf.throughput(&p.model, p.req_res, p.initial_tbs),
            })
            .collect();
        let running_views: Vec<RunningView> = running
            .values()
            .map(|r| RunningView {
                id: r.spec.id,
                allocation: r.allocation,
                min_res: r.spec.min_res,
                max_res: r.spec.max_res,
                est_remaining: r.est_remaining_secs(now),
                in_transition: r.transition.is_some(),
            })
            .collect();
        let actions = {
            let oracle = Oracle {
                perf: &perf,
                jobs: &running,
                pending: &pending,
            };
            policy::schedule(cfg.policy, total, &pending_views, &running_views, &oracle)
        };

        for action in actions {
            match action {
                Action::Admit { job, workers } => {
                    let idx = pending
                        .iter()
                        .position(|p| p.id == job)
                        .expect("admitted job is pending");
                    let spec = pending.remove(idx);
                    let tbs = tbs_for(&spec, &perf, workers);
                    let thr = perf.throughput(&spec.model, workers, tbs);
                    running.insert(
                        job,
                        Running {
                            remaining: spec.total_samples,
                            allocation: workers,
                            tbs,
                            thr,
                            started_at: now,
                            adjustments: 0,
                            transition: Some(Transition {
                                old_until: now,
                                resume_at: now + cfg.startup,
                                thr_old: 0.0,
                            }),
                            spec,
                        },
                    );
                }
                Action::Reallocate { job, workers } => {
                    let r = running.get_mut(&job).expect("reallocated job runs");
                    if workers == r.allocation {
                        continue;
                    }
                    let request = AdjustmentRequest::new(
                        (0..r.allocation).map(GpuId).collect(),
                        (0..workers).map(GpuId).collect(),
                    )
                    .expect("allocation change is a valid request");
                    let ctx = AdjustmentContext {
                        topology: &topology,
                        bandwidth: &bandwidth,
                        perf: &perf,
                        model: &r.spec.model,
                        total_batch: r.tbs,
                        coordination_interval: cfg.coordination_interval,
                        seed: cfg
                            .seed
                            .wrapping_add(job as u64)
                            .wrapping_add(r.adjustments as u64),
                    };
                    let cost = cfg.system.adjust(&request, &ctx);
                    let thr_old = r.thr;
                    let tbs = tbs_for(&r.spec, &perf, workers);
                    r.tbs = tbs;
                    r.allocation = workers;
                    r.thr = perf.throughput(&r.spec.model, workers, tbs);
                    r.transition = Some(Transition {
                        old_until: now + cost.completion.saturating_sub(cost.pause),
                        resume_at: now + cost.completion,
                        thr_old,
                    });
                    r.adjustments += 1;
                    total_adjustments += 1;
                }
            }
        }

        let allocated: u32 = running.values().map(|r| r.allocation).sum();
        assert!(
            allocated <= cfg.total_gpus,
            "policy oversubscribed the cluster: {allocated}/{} at {now}",
            cfg.total_gpus
        );
        utilization.record(now, allocated as f64 / cfg.total_gpus as f64);
    }

    outcomes.sort_by_key(|o| o.id);
    SimResult {
        outcomes,
        utilization,
        total_adjustments,
        evictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate_trace, TraceConfig};
    use elan_core::elasticity::IdealSystem;
    use elan_core::ElanSystem;
    use elan_models::zoo;

    fn quick_jobs() -> Vec<JobSpec> {
        // Three small jobs contending on a small cluster.
        let model = zoo::resnet50();
        (0..3)
            .map(|i| JobSpec {
                id: i,
                submit_at: SimTime::from_secs(i as u64 * 10),
                model: model.clone(),
                total_samples: 2e5,
                initial_tbs: 256,
                req_res: 8,
                min_res: 2,
                max_res: 16,
            })
            .collect()
    }

    fn cfg<'a>(policy: PolicyKind, system: &'a dyn ElasticitySystem) -> SimConfig<'a> {
        SimConfig {
            total_gpus: 16,
            policy,
            system,
            coordination_interval: 10,
            startup: SimDuration::from_secs(30),
            seed: 5,
            capacity: None,
        }
    }

    #[test]
    fn all_jobs_finish_under_every_policy() {
        let jobs = quick_jobs();
        let elan = ElanSystem::new();
        for policy in [
            PolicyKind::Fifo,
            PolicyKind::Backfill,
            PolicyKind::ElasticFifo,
            PolicyKind::ElasticBackfill,
        ] {
            let result = run_trace(&cfg(policy, &elan), &jobs);
            assert_eq!(result.outcomes.len(), 3, "{policy:?} lost jobs");
            for o in &result.outcomes {
                assert!(o.finished_at > o.started_at);
                assert!(o.started_at >= o.submit_at);
            }
        }
    }

    #[test]
    fn elastic_reduces_pending_time() {
        // With 16 GPUs and 8-GPU requests, FIFO makes job 2 wait; the
        // elastic policy starts it at min_res immediately.
        let jobs = quick_jobs();
        let elan = ElanSystem::new();
        let fifo = run_trace(&cfg(PolicyKind::Fifo, &elan), &jobs).metrics();
        let efifo = run_trace(&cfg(PolicyKind::ElasticFifo, &elan), &jobs).metrics();
        assert!(
            efifo.avg_jpt() < fifo.avg_jpt(),
            "E-FIFO jpt {} !< FIFO jpt {}",
            efifo.avg_jpt(),
            fifo.avg_jpt()
        );
    }

    #[test]
    fn elastic_uses_idle_gpus() {
        // A single job on an otherwise empty cluster runs at max_res under
        // the elastic policy (granted at admission) but stays at req_res
        // under FIFO — so it finishes sooner.
        let jobs = vec![quick_jobs().remove(0)];
        let elan = ElanSystem::new();
        let fifo = run_trace(&cfg(PolicyKind::Fifo, &elan), &jobs);
        let efifo = run_trace(&cfg(PolicyKind::ElasticFifo, &elan), &jobs);
        let tf = fifo.outcomes[0].completion_time();
        let te = efifo.outcomes[0].completion_time();
        assert!(te < tf, "elastic {te} !< static {tf}");
    }

    #[test]
    fn elastic_rebalances_when_capacity_frees() {
        // Two jobs share the cluster; when the first finishes, the second
        // scales out onto the freed GPUs (an actual adjustment).
        let mut jobs = quick_jobs();
        jobs.truncate(2);
        jobs[0].total_samples = 1e5; // finishes first
        let elan = ElanSystem::new();
        let out = run_trace(&cfg(PolicyKind::ElasticFifo, &elan), &jobs);
        assert_eq!(out.outcomes.len(), 2);
        assert!(out.total_adjustments > 0, "no rebalancing happened");
    }

    #[test]
    fn ideal_system_is_no_slower_than_elan_and_snr() {
        let trace_cfg = TraceConfig {
            duration: SimDuration::from_secs(4 * 3600),
            expected_jobs: 24,
            total_gpus: 32,
            mean_runtime: SimDuration::from_secs(1200),
            seed: 9,
        };
        let jobs = generate_trace(&trace_cfg);
        let elan = ElanSystem::new();
        let ideal = IdealSystem;
        let snr = elan_baselines::ShutdownRestart::new();
        fn mk<'a>(sys: &'a dyn ElasticitySystem) -> SimConfig<'a> {
            SimConfig {
                total_gpus: 32,
                policy: PolicyKind::ElasticBackfill,
                system: sys,
                coordination_interval: 10,
                startup: SimDuration::from_secs(30),
                seed: 5,
                capacity: None,
            }
        }
        let jct_ideal = run_trace(&mk(&ideal), &jobs).metrics().avg_jct();
        let jct_elan = run_trace(&mk(&elan), &jobs).metrics().avg_jct();
        let jct_snr = run_trace(&mk(&snr), &jobs).metrics().avg_jct();
        assert!(jct_ideal <= jct_elan * 1.001);
        assert!(jct_elan < jct_snr, "elan {jct_elan} !< snr {jct_snr}");
    }

    #[test]
    fn utilization_stays_in_unit_range() {
        let jobs = quick_jobs();
        let elan = ElanSystem::new();
        let result = run_trace(&cfg(PolicyKind::ElasticBackfill, &elan), &jobs);
        for &(_, u) in result.utilization.points() {
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
    }

    #[test]
    fn deterministic_runs() {
        let jobs = quick_jobs();
        let elan = ElanSystem::new();
        let a = run_trace(&cfg(PolicyKind::ElasticBackfill, &elan), &jobs);
        let b = run_trace(&cfg(PolicyKind::ElasticBackfill, &elan), &jobs);
        assert_eq!(a.outcomes, b.outcomes);
    }
}
