//! Elastic DL training job scheduling (§VI-C).
//!
//! A deterministic, event-driven cluster simulator executes job traces
//! under four policies:
//!
//! - **FIFO** — strict arrival order, jobs get exactly their requested
//!   workers,
//! - **Backfill (BF)** — EASY backfilling: later jobs may start early if
//!   they do not delay the head job's reservation (Slurm's default),
//! - **Elastic-FIFO (E-FIFO)** and **Elastic-Backfill (E-BF)** — the
//!   paper's elastic policy layered on each: jobs are admitted once their
//!   `min_res` fits, then all resources are re-divided by repeatedly
//!   granting one worker to the job with the largest marginal gain,
//!   bounded by `max_res`, with the hybrid scaling mechanism adjusting
//!   each job's batch size (and the elasticity system charging each
//!   adjustment).
//!
//! [`trace`] generates the down-sampled two-day trace with diurnal load
//! fluctuation standing in for the proprietary SenseTime trace; metrics
//! (JPT, JCT, makespan, utilization) reproduce Figs. 20–22 and Fig. 1.

pub mod capacity;
pub mod job;
pub mod metrics;
pub mod policy;
pub mod sim;
pub mod trace;

pub use job::{JobOutcome, JobSpec};
pub use metrics::TraceMetrics;
pub use policy::PolicyKind;
pub use sim::{run_trace, SimConfig, SimResult};
pub use trace::{generate_trace, TraceConfig};
