//! Job descriptions and outcomes.

use elan_models::ModelSpec;
use elan_sim::{SimDuration, SimTime};

/// A training job submitted to the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job id (trace order).
    pub id: u32,
    /// Submission time.
    pub submit_at: SimTime,
    /// The model the job trains (one of the Table I configurations).
    pub model: ModelSpec,
    /// Total training work, in samples.
    pub total_samples: f64,
    /// Total batch size the job was tuned for.
    pub initial_tbs: u32,
    /// Workers the user requested (static policies allocate exactly this).
    pub req_res: u32,
    /// Fewest workers the job can run on (model must fit in GPU memory).
    pub min_res: u32,
    /// Most workers the job can use and still converge (§VI-C).
    pub max_res: u32,
}

impl JobSpec {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the resource bounds are inconsistent or work is
    /// non-positive.
    pub fn validate(&self) {
        assert!(self.total_samples > 0.0, "job {} has no work", self.id);
        assert!(
            0 < self.min_res && self.min_res <= self.req_res && self.req_res <= self.max_res,
            "job {}: inconsistent resources {}/{}/{}",
            self.id,
            self.min_res,
            self.req_res,
            self.max_res
        );
        assert!(self.initial_tbs > 0, "job {} has no batch", self.id);
    }
}

/// What happened to one job in a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOutcome {
    /// The job id.
    pub id: u32,
    /// Submission time.
    pub submit_at: SimTime,
    /// First time the job got workers.
    pub started_at: SimTime,
    /// Completion time.
    pub finished_at: SimTime,
    /// Resource adjustments the job went through.
    pub adjustments: u32,
}

impl JobOutcome {
    /// Job pending time: submission → first allocation.
    pub fn pending_time(&self) -> SimDuration {
        self.started_at.duration_since(self.submit_at)
    }

    /// Job completion time: submission → finish.
    pub fn completion_time(&self) -> SimDuration {
        self.finished_at.duration_since(self.submit_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elan_models::zoo;

    fn spec() -> JobSpec {
        JobSpec {
            id: 1,
            submit_at: SimTime::from_secs(100),
            model: zoo::resnet50(),
            total_samples: 1e6,
            initial_tbs: 256,
            req_res: 8,
            min_res: 2,
            max_res: 32,
        }
    }

    #[test]
    fn valid_spec_passes() {
        spec().validate();
    }

    #[test]
    #[should_panic(expected = "inconsistent resources")]
    fn bad_bounds_fail() {
        let mut s = spec();
        s.min_res = 16;
        s.validate();
    }

    #[test]
    fn outcome_times() {
        let o = JobOutcome {
            id: 1,
            submit_at: SimTime::from_secs(100),
            started_at: SimTime::from_secs(160),
            finished_at: SimTime::from_secs(1000),
            adjustments: 2,
        };
        assert_eq!(o.pending_time(), SimDuration::from_secs(60));
        assert_eq!(o.completion_time(), SimDuration::from_secs(900));
    }
}
