//! Accuracy as a function of batch size and learning-rate rule.
//!
//! The paper's §III-2 observation: with all other hyperparameters fixed,
//! final accuracy degrades as the total batch size grows; the *progressive
//! linear scaling rule* recovers it up to a point (Fig. 5), beyond which
//! (TBS ≈ 2¹²) accuracy drops anyway because large-batch convergence is an
//! open problem. This module encodes that relationship as an empirical
//! model calibrated to Fig. 5 and the §VI-B results, plus an epoch-wise
//! accuracy-curve model for Figs. 18/19 and time-to-solution.

use elan_sim::SimDuration;

use crate::schedule::BatchSchedule;

/// The learning-rate adjustment rule applied when the batch size changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalingRule {
    /// Keep the learning rate unchanged — Fig. 5's "Default".
    None,
    /// Scale the learning rate linearly with the batch size, ramped over a
    /// number of iterations (Equations 2–3) — Fig. 5's "Hybrid".
    ProgressiveLinear {
        /// Iterations over which the ramp completes (100 in §VI-B).
        ramp_iters: u32,
    },
}

/// An empirical accuracy model for one (model, dataset) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyModel {
    /// Top-1 accuracy at the reference batch size.
    pub base_accuracy: f64,
    /// Batch size the recipe was tuned for.
    pub ref_tbs: u32,
    /// Accuracy lost per batch doubling without any LR adjustment.
    pub default_penalty_per_doubling: f64,
    /// Largest batch the progressive-linear rule fully compensates.
    pub hybrid_free_limit: u32,
    /// Accuracy lost per doubling beyond the free limit, even with the rule.
    pub hybrid_penalty_per_doubling: f64,
}

impl AccuracyModel {
    /// ResNet-50 on ImageNet, calibrated to §VI-B: 75.89% at TBS 512;
    /// hybrid scaling holds accuracy through TBS 2048 (75.87% elastic).
    pub fn resnet50_imagenet() -> Self {
        AccuracyModel {
            base_accuracy: 0.7589,
            ref_tbs: 512,
            default_penalty_per_doubling: 0.010,
            hybrid_free_limit: 2048,
            hybrid_penalty_per_doubling: 0.012,
        }
    }

    /// MobileNet-v2 on Cifar100, calibrated to Fig. 5: visible degradation
    /// per doubling by default; flat under the hybrid rule until 2¹¹, with
    /// a drop at 2¹².
    pub fn mobilenet_v2_cifar100() -> Self {
        AccuracyModel {
            base_accuracy: 0.750,
            ref_tbs: 128,
            default_penalty_per_doubling: 0.010,
            hybrid_free_limit: 2048,
            hybrid_penalty_per_doubling: 0.015,
        }
    }

    /// Final top-1 accuracy when training entirely at `tbs` under `rule`.
    ///
    /// Batch sizes at or below the reference train at base accuracy.
    pub fn final_accuracy(&self, tbs: u32, rule: ScalingRule) -> f64 {
        assert!(tbs > 0, "batch size must be positive");
        match rule {
            ScalingRule::None => {
                let doublings = doublings_beyond(tbs, self.ref_tbs);
                (self.base_accuracy - self.default_penalty_per_doubling * doublings).max(0.0)
            }
            ScalingRule::ProgressiveLinear { .. } => {
                let doublings = doublings_beyond(tbs, self.hybrid_free_limit);
                (self.base_accuracy - self.hybrid_penalty_per_doubling * doublings).max(0.0)
            }
        }
    }

    /// Final accuracy for a dynamic batch schedule: governed by the largest
    /// batch used, with a small deterministic variance for dynamic
    /// schedules (the paper's elastic run lands 0.02 pt under the static
    /// baseline).
    pub fn final_accuracy_schedule(&self, schedule: &BatchSchedule, rule: ScalingRule) -> f64 {
        let acc = self.final_accuracy(schedule.max_tbs(), rule);
        if schedule.is_dynamic() {
            (acc - 0.0002).max(0.0)
        } else {
            acc
        }
    }
}

/// Fractional doublings of `tbs` beyond `threshold` (0 if at/below it).
fn doublings_beyond(tbs: u32, threshold: u32) -> f64 {
    if tbs <= threshold {
        0.0
    } else {
        (tbs as f64 / threshold as f64).log2()
    }
}

/// An epoch-wise top-1 accuracy curve for step-decay training.
///
/// Accuracy approaches a per-phase target exponentially within each
/// learning-rate phase; each decay unlocks a higher target — producing the
/// familiar staircase-like ImageNet training curves of Figs. 18/19.
///
/// # Examples
///
/// ```
/// use elan_models::convergence::AccuracyCurve;
///
/// let curve = AccuracyCurve::resnet50(0.7589);
/// let early = curve.accuracy_at(10.0);
/// let late = curve.accuracy_at(89.0);
/// assert!(early < late);
/// assert!((late - 0.7589).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyCurve {
    final_accuracy: f64,
    /// Phase boundaries in epochs (LR decay points), ending with the total.
    boundaries: Vec<u32>,
    /// Fraction of the final accuracy each phase converges toward.
    phase_targets: Vec<f64>,
    /// Exponential time constant within a phase, in epochs.
    tau: f64,
}

impl AccuracyCurve {
    /// Builds a curve with explicit phase structure.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent (one target per phase,
    /// strictly increasing boundaries) or values are out of range.
    pub fn new(
        final_accuracy: f64,
        boundaries: Vec<u32>,
        phase_targets: Vec<f64>,
        tau: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&final_accuracy));
        assert!(!boundaries.is_empty(), "need at least one phase");
        assert_eq!(
            boundaries.len(),
            phase_targets.len(),
            "one target per phase"
        );
        for w in boundaries.windows(2) {
            assert!(w[0] < w[1], "boundaries must strictly increase");
        }
        assert!(tau > 0.0, "tau must be positive");
        assert!(
            phase_targets.windows(2).all(|w| w[0] <= w[1]),
            "phase targets must be non-decreasing"
        );
        AccuracyCurve {
            final_accuracy,
            boundaries,
            phase_targets,
            tau,
        }
    }

    /// The standard ResNet-50 90-epoch recipe: decays at 30 and 60, phase
    /// targets 80%/93%/100% of final accuracy.
    pub fn resnet50(final_accuracy: f64) -> Self {
        AccuracyCurve::new(
            final_accuracy,
            vec![30, 60, 90],
            vec![0.80, 0.93, 1.00],
            6.0,
        )
    }

    /// The ResNet-50 recipe shape stretched/shrunk to `total_epochs`
    /// (decays at 1/3 and 2/3 of the schedule).
    ///
    /// # Panics
    ///
    /// Panics if `total_epochs < 3`.
    pub fn resnet50_like(final_accuracy: f64, total_epochs: u32) -> Self {
        assert!(total_epochs >= 3, "schedule too short for three phases");
        AccuracyCurve::new(
            final_accuracy,
            vec![total_epochs / 3, 2 * total_epochs / 3, total_epochs],
            vec![0.80, 0.93, 1.00],
            6.0 * total_epochs as f64 / 90.0,
        )
    }

    /// Top-1 accuracy after `epochs` (fractional epochs interpolate).
    pub fn accuracy_at(&self, epochs: f64) -> f64 {
        if epochs <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut phase_start = 0.0;
        for (i, &end) in self.boundaries.iter().enumerate() {
            let target = self.phase_targets[i] * self.final_accuracy;
            let end = end as f64;
            let t = (epochs.min(end) - phase_start).max(0.0);
            acc = target - (target - acc) * (-t / self.tau).exp();
            if epochs <= end {
                return acc;
            }
            phase_start = end;
        }
        acc
    }

    /// Total scheduled epochs.
    pub fn total_epochs(&self) -> u32 {
        *self.boundaries.last().expect("non-empty")
    }

    /// The final accuracy the curve converges to.
    pub fn final_accuracy(&self) -> f64 {
        self.final_accuracy
    }

    /// The first (fractional) epoch at which the curve reaches `target`,
    /// or `None` if it never does within the schedule.
    pub fn epochs_to_accuracy(&self, target: f64) -> Option<f64> {
        let total = self.total_epochs() as f64;
        if self.accuracy_at(total) < target {
            return None;
        }
        // Bisection: accuracy_at is monotone non-decreasing in epochs.
        let (mut lo, mut hi) = (0.0, total);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.accuracy_at(mid) >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

/// Computes time-to-solution: walks fractional epochs against a per-epoch
/// duration function until the accuracy curve crosses `target`.
///
/// `epoch_time(e)` gives the wall time of epoch `e` (durations may vary
/// across epochs under dynamic batch sizes / elastic resources).
///
/// Returns `None` if the target is never reached within the schedule.
pub fn time_to_accuracy(
    curve: &AccuracyCurve,
    target: f64,
    mut epoch_time: impl FnMut(u32) -> SimDuration,
) -> Option<SimDuration> {
    let epochs = curve.epochs_to_accuracy(target)?;
    let whole = epochs.floor() as u32;
    let mut total = SimDuration::ZERO;
    for e in 0..whole {
        total += epoch_time(e);
    }
    let frac = epochs - whole as f64;
    if frac > 0.0 && whole < curve.total_epochs() {
        total += epoch_time(whole).mul_f64(frac);
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_default_degrades_with_batch() {
        let m = AccuracyModel::mobilenet_v2_cifar100();
        let accs: Vec<f64> = [128u32, 256, 512, 1024, 2048, 4096]
            .iter()
            .map(|&b| m.final_accuracy(b, ScalingRule::None))
            .collect();
        for w in accs.windows(2) {
            assert!(w[1] < w[0], "default accuracy must fall per doubling");
        }
        // ~5 doublings x 1 pt: about 5 points lost at 2^12.
        assert!((accs[0] - accs[5] - 0.05).abs() < 1e-9);
    }

    #[test]
    fn fig5_hybrid_holds_until_2k() {
        let m = AccuracyModel::mobilenet_v2_cifar100();
        let rule = ScalingRule::ProgressiveLinear { ramp_iters: 100 };
        for b in [128u32, 256, 512, 1024, 2048] {
            assert_eq!(m.final_accuracy(b, rule), m.base_accuracy);
        }
        // 2^12 still drops even with the rule.
        assert!(m.final_accuracy(4096, rule) < m.base_accuracy);
        // ...but by less than default would at the same batch? No: hybrid
        // at 4096 loses 1.5 pt vs default's 5 pt.
        assert!(m.final_accuracy(4096, rule) > m.final_accuracy(4096, ScalingRule::None));
    }

    #[test]
    fn resnet_elastic_accuracy_matches_paper() {
        // §VI-B: static 512 -> 75.89%, elastic 512-2048 -> 75.87%.
        let m = AccuracyModel::resnet50_imagenet();
        let rule = ScalingRule::ProgressiveLinear { ramp_iters: 100 };
        let static_acc = m.final_accuracy_schedule(&BatchSchedule::constant(512), rule);
        let elastic_acc = m.final_accuracy_schedule(&BatchSchedule::adabatch_resnet50(), rule);
        assert!((static_acc - 0.7589).abs() < 1e-9);
        assert!((elastic_acc - 0.7587).abs() < 1e-4);
    }

    #[test]
    fn small_batches_never_exceed_base() {
        let m = AccuracyModel::resnet50_imagenet();
        assert_eq!(m.final_accuracy(64, ScalingRule::None), m.base_accuracy);
    }

    #[test]
    fn curve_is_monotone_and_converges() {
        let c = AccuracyCurve::resnet50(0.7589);
        let mut prev = 0.0;
        for e in 0..=90 {
            let a = c.accuracy_at(e as f64);
            assert!(a >= prev - 1e-12, "curve dipped at epoch {e}");
            prev = a;
        }
        assert!((c.accuracy_at(90.0) - 0.7589).abs() < 0.008);
    }

    #[test]
    fn curve_steps_at_lr_decays() {
        // The slope right after a decay exceeds the slope right before it.
        let c = AccuracyCurve::resnet50(0.7589);
        let before = c.accuracy_at(30.0) - c.accuracy_at(29.0);
        let after = c.accuracy_at(31.0) - c.accuracy_at(30.0);
        assert!(after > before);
    }

    #[test]
    fn epochs_to_accuracy_bisects_correctly() {
        let c = AccuracyCurve::resnet50(0.7589);
        let e = c.epochs_to_accuracy(0.745).unwrap();
        assert!(c.accuracy_at(e) >= 0.745);
        assert!(c.accuracy_at(e - 0.1) < 0.745);
        assert!(c.epochs_to_accuracy(0.99).is_none());
    }

    #[test]
    fn time_to_accuracy_sums_epoch_times() {
        let c = AccuracyCurve::resnet50(0.7589);
        let t = time_to_accuracy(&c, 0.745, |_| SimDuration::from_secs(100)).unwrap();
        let e = c.epochs_to_accuracy(0.745).unwrap();
        assert!((t.as_secs_f64() - e * 100.0).abs() < 1.0);
    }

    #[test]
    fn higher_target_takes_longer() {
        let c = AccuracyCurve::resnet50(0.7589);
        let t1 = time_to_accuracy(&c, 0.745, |_| SimDuration::from_secs(100)).unwrap();
        let t2 = time_to_accuracy(&c, 0.755, |_| SimDuration::from_secs(100)).unwrap();
        assert!(t2 > t1);
    }
}
