//! Batch-size and learning-rate schedules.
//!
//! [`BatchSchedule`] expresses elastic-training algorithms like AdaBatch
//! (train with a small batch first, double it at intervals); [`LrSchedule`]
//! is the usual step-decay learning-rate schedule. The *progressive linear
//! scaling* ramp that accompanies a batch change lives in `elan-core` with
//! the rest of the hybrid scaling mechanism.

use std::fmt;

/// A piecewise-constant total-batch-size schedule over epochs.
///
/// # Examples
///
/// ```
/// use elan_models::BatchSchedule;
///
/// let s = BatchSchedule::adabatch_resnet50();
/// assert_eq!(s.tbs_at(0), 512);
/// assert_eq!(s.tbs_at(30), 1024);
/// assert_eq!(s.tbs_at(89), 2048);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSchedule {
    phases: Vec<(u32, u32)>, // (start_epoch, total_batch)
}

impl BatchSchedule {
    /// Builds a schedule from `(start_epoch, total_batch)` phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, the first phase does not start at
    /// epoch 0, start epochs are not strictly increasing, or any batch
    /// size is zero.
    pub fn new(phases: Vec<(u32, u32)>) -> Self {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        assert_eq!(phases[0].0, 0, "first phase must start at epoch 0");
        for w in phases.windows(2) {
            assert!(w[0].0 < w[1].0, "phase starts must strictly increase");
        }
        assert!(
            phases.iter().all(|&(_, b)| b > 0),
            "batch sizes must be positive"
        );
        BatchSchedule { phases }
    }

    /// A single constant batch size for all epochs.
    pub fn constant(total_batch: u32) -> Self {
        BatchSchedule::new(vec![(0, total_batch)])
    }

    /// The paper's AdaBatch adaptation for ResNet-50 on ImageNet (§VI-B):
    /// start at 512, double every 30 epochs, finish after 90 epochs.
    pub fn adabatch_resnet50() -> Self {
        BatchSchedule::new(vec![(0, 512), (30, 1024), (60, 2048)])
    }

    /// The total batch size in effect at `epoch`.
    pub fn tbs_at(&self, epoch: u32) -> u32 {
        self.phases
            .iter()
            .rev()
            .find(|&&(start, _)| start <= epoch)
            .map(|&(_, b)| b)
            .expect("phase 0 covers every epoch")
    }

    /// The largest batch size the schedule ever uses.
    pub fn max_tbs(&self) -> u32 {
        self.phases
            .iter()
            .map(|&(_, b)| b)
            .max()
            .expect("non-empty")
    }

    /// The phases as `(start_epoch, total_batch)` pairs.
    pub fn phases(&self) -> &[(u32, u32)] {
        &self.phases
    }

    /// True if the batch size ever changes.
    pub fn is_dynamic(&self) -> bool {
        self.phases.len() > 1
    }
}

impl fmt::Display for BatchSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .phases
            .iter()
            .map(|&(e, b)| format!("e{e}:{b}"))
            .collect();
        write!(f, "[{}]", parts.join(", "))
    }
}

/// A step-decay learning-rate schedule.
///
/// # Examples
///
/// ```
/// use elan_models::LrSchedule;
///
/// let lr = LrSchedule::resnet50_default();
/// assert_eq!(lr.lr_at(0), 0.2);
/// assert!((lr.lr_at(30) - 0.02).abs() < 1e-12);
/// assert!((lr.lr_at(60) - 0.002).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LrSchedule {
    base_lr: f64,
    decay_epochs: Vec<u32>,
    decay_factor: f64,
    total_epochs: u32,
}

impl LrSchedule {
    /// Builds a schedule decaying by `decay_factor` at each epoch in
    /// `decay_epochs`.
    ///
    /// # Panics
    ///
    /// Panics if `base_lr` or `decay_factor` is not positive, decay epochs
    /// are not strictly increasing, or `total_epochs` is zero.
    pub fn new(base_lr: f64, decay_epochs: Vec<u32>, decay_factor: f64, total_epochs: u32) -> Self {
        assert!(base_lr > 0.0, "base lr must be positive");
        assert!(decay_factor > 0.0, "decay factor must be positive");
        assert!(total_epochs > 0, "total epochs must be positive");
        for w in decay_epochs.windows(2) {
            assert!(w[0] < w[1], "decay epochs must strictly increase");
        }
        LrSchedule {
            base_lr,
            decay_epochs,
            decay_factor,
            total_epochs,
        }
    }

    /// The PyTorch reference recipe for ResNet-50/ImageNet scaled to a
    /// 512 batch: lr 0.2, ×0.1 at epochs 30 and 60, 90 epochs total.
    pub fn resnet50_default() -> Self {
        LrSchedule::new(0.2, vec![30, 60], 0.1, 90)
    }

    /// Learning rate at `epoch`.
    pub fn lr_at(&self, epoch: u32) -> f64 {
        let decays = self.decay_epochs.iter().filter(|&&e| e <= epoch).count();
        self.base_lr * self.decay_factor.powi(decays as i32)
    }

    /// The base (epoch-0) learning rate.
    pub fn base_lr(&self) -> f64 {
        self.base_lr
    }

    /// The epochs at which the rate decays — also the phase boundaries of
    /// the accuracy curve model.
    pub fn decay_epochs(&self) -> &[u32] {
        &self.decay_epochs
    }

    /// Total scheduled epochs.
    pub fn total_epochs(&self) -> u32 {
        self.total_epochs
    }

    /// A copy with the base LR multiplied by `k` — the linear scaling rule
    /// applied when the batch grows by `k` (Equation 2).
    pub fn scaled(&self, k: f64) -> LrSchedule {
        assert!(k > 0.0, "scale factor must be positive");
        LrSchedule {
            base_lr: self.base_lr * k,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adabatch_doubles_per_30_epochs() {
        let s = BatchSchedule::adabatch_resnet50();
        assert_eq!(s.tbs_at(29), 512);
        assert_eq!(s.tbs_at(30), 1024);
        assert_eq!(s.tbs_at(59), 1024);
        assert_eq!(s.tbs_at(60), 2048);
        assert_eq!(s.max_tbs(), 2048);
        assert!(s.is_dynamic());
    }

    #[test]
    fn constant_schedule_is_static() {
        let s = BatchSchedule::constant(512);
        assert_eq!(s.tbs_at(0), s.tbs_at(1000));
        assert!(!s.is_dynamic());
    }

    #[test]
    #[should_panic(expected = "first phase must start at epoch 0")]
    fn schedule_must_cover_epoch_zero() {
        let _ = BatchSchedule::new(vec![(5, 512)]);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn schedule_rejects_unsorted_phases() {
        let _ = BatchSchedule::new(vec![(0, 512), (30, 1024), (30, 2048)]);
    }

    #[test]
    fn lr_decays_stepwise() {
        let lr = LrSchedule::new(1.0, vec![10, 20], 0.5, 30);
        assert_eq!(lr.lr_at(9), 1.0);
        assert_eq!(lr.lr_at(10), 0.5);
        assert_eq!(lr.lr_at(25), 0.25);
    }

    #[test]
    fn scaled_multiplies_base_only() {
        let lr = LrSchedule::resnet50_default().scaled(2.0);
        assert_eq!(lr.lr_at(0), 0.4);
        assert_eq!(lr.decay_epochs(), &[30, 60]);
    }

    #[test]
    fn display_shows_phases() {
        let s = BatchSchedule::adabatch_resnet50();
        assert_eq!(s.to_string(), "[e0:512, e30:1024, e60:2048]");
    }
}
