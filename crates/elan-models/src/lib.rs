//! Deep-learning workload, performance, and convergence models.
//!
//! The paper's evaluation runs on a production GPU cluster we do not have;
//! this crate substitutes an analytic model calibrated to the paper's
//! testbed (GeForce 1080Ti servers, 56 Gb/s InfiniBand, PyTorch 1.3):
//!
//! - [`zoo`] — the model zoo of Table I plus ResNet-50,
//! - [`gpu`] — GPU specifications with a batch-dependent efficiency curve,
//! - [`interconnect`] — ring-allreduce cost model over the cluster fabric,
//! - [`perf`] — per-iteration time and throughput; strong/weak scaling and
//!   the "optimal number of workers" search used by hybrid scaling (§III),
//! - [`convergence`] — accuracy as a function of total batch size and the
//!   learning-rate rule (Figs. 5 and 18), plus epoch-wise accuracy curves,
//! - [`schedule`] — batch-size schedules (AdaBatch) and LR schedules.
//!
//! # Examples
//!
//! ```
//! use elan_models::{perf::PerfModel, zoo};
//!
//! let perf = PerfModel::paper_default();
//! let resnet = zoo::resnet50();
//! // Strong scaling: the optimum worker count grows with the batch size.
//! let n512 = perf.optimal_workers(&resnet, 512, 128);
//! let n2048 = perf.optimal_workers(&resnet, 2048, 128);
//! assert!(n512 < n2048);
//! ```

pub mod convergence;
pub mod gpu;
pub mod interconnect;
pub mod perf;
pub mod schedule;
pub mod zoo;

pub use convergence::{AccuracyModel, ScalingRule};
pub use gpu::GpuSpec;
pub use interconnect::InterconnectModel;
pub use perf::PerfModel;
pub use schedule::{BatchSchedule, LrSchedule};
pub use zoo::{ModelKind, ModelSpec};
