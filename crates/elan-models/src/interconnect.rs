//! Ring-allreduce cost model over the cluster fabric.
//!
//! Gradient aggregation in data-parallel training with collective
//! communication uses ring allreduce: each of `N` workers sends and
//! receives `2(N-1)/N · bytes`, bottlenecked by the slowest link the ring
//! crosses. The effective bus bandwidth therefore depends on how far the
//! ring spans: within a PCIe switch, within a node, or across nodes.
//!
//! Bandwidths are *effective* values calibrated to reproduce the paper's
//! strong-scaling optima (PyTorch 1.3 over 56 Gb/s InfiniBand achieved far
//! below line rate), not the link's physical peak. A per-worker
//! synchronization cost models stragglers and NCCL launch overheads.

use elan_sim::{Bandwidth, Bytes, SimDuration};

/// Cluster fabric parameters for gradient allreduce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectModel {
    /// Workers per PCIe switch (rings within stay on P2P).
    pub workers_per_switch: u32,
    /// Workers per node (rings within stay on PCIe/QPI).
    pub workers_per_node: u32,
    /// Effective bus bandwidth for rings within one PCIe switch.
    pub switch_busbw: Bandwidth,
    /// Effective bus bandwidth for rings within one node.
    pub node_busbw: Bandwidth,
    /// Effective bus bandwidth for rings spanning nodes.
    pub net_busbw: Bandwidth,
    /// Per-worker synchronization/straggler cost added to every iteration.
    pub sync_per_worker: SimDuration,
}

impl InterconnectModel {
    /// Calibrated to the paper's production testbed: 8 GPUs/node with
    /// 2 GPUs/PCIe switch, 56 Gb/s InfiniBand with PyTorch-1.3-era
    /// collective efficiency.
    pub fn paper_default() -> Self {
        InterconnectModel {
            workers_per_switch: 2,
            workers_per_node: 8,
            switch_busbw: Bandwidth::from_gbytes_per_sec(8.0),
            node_busbw: Bandwidth::from_gbytes_per_sec(3.5),
            net_busbw: Bandwidth::from_gbytes_per_sec(0.8),
            sync_per_worker: SimDuration::from_micros(300),
        }
    }

    /// The effective bus bandwidth for a ring over `n_workers`.
    pub fn bus_bandwidth(&self, n_workers: u32) -> Bandwidth {
        if n_workers <= self.workers_per_switch {
            self.switch_busbw
        } else if n_workers <= self.workers_per_node {
            self.node_busbw
        } else {
            self.net_busbw
        }
    }

    /// Time for one ring allreduce of `payload` bytes across `n_workers`.
    ///
    /// Returns zero for a single worker (no communication needed).
    pub fn allreduce_time(&self, payload: Bytes, n_workers: u32) -> SimDuration {
        if n_workers <= 1 {
            return SimDuration::ZERO;
        }
        let bw = self.bus_bandwidth(n_workers);
        let factor = 2.0 * (n_workers as f64 - 1.0) / n_workers as f64;
        SimDuration::from_secs_f64(payload.as_f64() * factor / bw.as_bytes_per_sec())
    }

    /// Per-iteration synchronization overhead for `n_workers`.
    pub fn sync_time(&self, n_workers: u32) -> SimDuration {
        if n_workers <= 1 {
            return SimDuration::ZERO;
        }
        self.sync_per_worker * n_workers as u64
    }
}

impl Default for InterconnectModel {
    fn default() -> Self {
        InterconnectModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_needs_no_communication() {
        let ic = InterconnectModel::paper_default();
        assert_eq!(
            ic.allreduce_time(Bytes::from_mib(100), 1),
            SimDuration::ZERO
        );
        assert_eq!(ic.sync_time(1), SimDuration::ZERO);
    }

    #[test]
    fn bus_bandwidth_degrades_with_span() {
        let ic = InterconnectModel::paper_default();
        let sw = ic.bus_bandwidth(2).as_bytes_per_sec();
        let node = ic.bus_bandwidth(8).as_bytes_per_sec();
        let net = ic.bus_bandwidth(16).as_bytes_per_sec();
        assert!(sw > node && node > net);
    }

    #[test]
    fn allreduce_saturates_with_workers() {
        // 2(N-1)/N -> 2, so multi-node allreduce time approaches an
        // asymptote instead of growing without bound.
        let ic = InterconnectModel::paper_default();
        let p = Bytes::from_mib(100);
        let t16 = ic.allreduce_time(p, 16).as_secs_f64();
        let t64 = ic.allreduce_time(p, 64).as_secs_f64();
        assert!(t64 > t16);
        assert!(t64 < t16 * 1.1);
    }

    #[test]
    fn resnet50_multinode_allreduce_around_quarter_second() {
        // Calibration anchor: 97.5 MiB gradients over the effective
        // 0.8 GB/s fabric ≈ 0.24–0.26 s for large rings.
        let ic = InterconnectModel::paper_default();
        let t = ic
            .allreduce_time(Bytes::new(25_557_032 * 4), 32)
            .as_secs_f64();
        assert!((0.2..0.3).contains(&t), "got {t:.3}s");
    }

    #[test]
    fn sync_grows_linearly() {
        let ic = InterconnectModel::paper_default();
        assert_eq!(ic.sync_time(32), ic.sync_time(16) * 2);
    }
}
