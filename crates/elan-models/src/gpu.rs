//! GPU specifications and the batch-dependent efficiency curve.
//!
//! Achieved FLOPs on a GPU depend strongly on the per-worker batch size:
//! small batches leave SMs idle. We use a saturating efficiency curve
//! `η(b) = η_max · b / (b + b_half)`, which yields a per-iteration compute
//! time linear in the batch with a fixed launch/efficiency floor — the
//! behaviour behind the paper's observation that "a larger batch size with
//! the same computation resource usually yields a higher training
//! throughput".

use elan_sim::{Bytes, SimDuration};

use crate::zoo::ModelSpec;

/// A GPU's compute characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Peak fp32 throughput in TFLOPs.
    pub peak_tflops: f64,
    /// Maximum achieved fraction of peak in DL training kernels.
    pub max_efficiency: f64,
    /// Device memory capacity.
    pub memory: Bytes,
}

impl GpuSpec {
    /// GeForce GTX 1080 Ti — the paper's production testbed GPU (§VI-A).
    pub fn gtx1080ti() -> Self {
        GpuSpec {
            name: "GeForce GTX 1080 Ti",
            peak_tflops: 11.3,
            max_efficiency: 0.17,
            memory: Bytes::from_gib(11),
        }
    }

    /// Tesla V100 — used for the scaling-strategy analysis (§III).
    pub fn v100() -> Self {
        GpuSpec {
            name: "Tesla V100",
            peak_tflops: 15.7,
            max_efficiency: 0.30,
            memory: Bytes::from_gib(32),
        }
    }

    /// Achieved efficiency (fraction of peak) at per-worker batch `batch`,
    /// for a model whose kernels half-saturate at `half_batch`.
    pub fn efficiency(&self, batch: f64, half_batch: f64) -> f64 {
        if batch <= 0.0 {
            return 0.0;
        }
        self.max_efficiency * batch / (batch + half_batch)
    }

    /// Compute time for one forward+backward pass of `batch` samples of
    /// `model` on this GPU.
    ///
    /// With the saturating efficiency curve this reduces to
    /// `k · (batch + b_half)` where `k = GFLOPs / (peak · η_max)` — linear
    /// in the batch with a fixed floor.
    pub fn compute_time(&self, model: &ModelSpec, batch: f64) -> SimDuration {
        if batch <= 0.0 {
            return SimDuration::ZERO;
        }
        let per_sample_peak_secs = model.gflops_per_sample * 1e9 / (self.peak_tflops * 1e12);
        let eff = self.efficiency(batch, model.half_saturation_batch);
        SimDuration::from_secs_f64(per_sample_peak_secs * batch / eff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn efficiency_saturates() {
        let g = GpuSpec::gtx1080ti();
        let e8 = g.efficiency(8.0, 8.0);
        let e64 = g.efficiency(64.0, 8.0);
        let e1024 = g.efficiency(1024.0, 8.0);
        assert!(e8 < e64 && e64 < e1024);
        assert!(e1024 <= g.max_efficiency);
        assert!((e8 - g.max_efficiency / 2.0).abs() < 1e-12);
    }

    #[test]
    fn compute_time_linear_with_floor() {
        let g = GpuSpec::gtx1080ti();
        let m = zoo::resnet50();
        let t32 = g.compute_time(&m, 32.0).as_secs_f64();
        let t64 = g.compute_time(&m, 64.0).as_secs_f64();
        // t(b) = k (b + b_half): doubling the batch less than doubles time.
        assert!(t64 < 2.0 * t32);
        assert!(t64 > 1.7 * t32);
    }

    #[test]
    fn resnet50_throughput_matches_testbed() {
        // A 1080Ti trains ResNet-50 at roughly 100–170 images/s.
        let g = GpuSpec::gtx1080ti();
        let m = zoo::resnet50();
        let t = g.compute_time(&m, 32.0).as_secs_f64();
        let imgs_per_sec = 32.0 / t;
        assert!(
            (90.0..200.0).contains(&imgs_per_sec),
            "got {imgs_per_sec:.1} img/s"
        );
    }

    #[test]
    fn v100_is_faster_than_1080ti() {
        let m = zoo::resnet50();
        let t_v100 = GpuSpec::v100().compute_time(&m, 32.0);
        let t_1080 = GpuSpec::gtx1080ti().compute_time(&m, 32.0);
        assert!(t_v100 < t_1080);
    }

    #[test]
    fn zero_batch_is_free() {
        let g = GpuSpec::gtx1080ti();
        assert_eq!(g.compute_time(&zoo::resnet50(), 0.0), SimDuration::ZERO);
        assert_eq!(g.efficiency(0.0, 8.0), 0.0);
    }
}
