//! Per-iteration time, training throughput, and scaling analysis (§III-1).
//!
//! One data-parallel iteration computes forward+backward on each worker's
//! shard of the total batch, overlapped with the gradient ring allreduce
//! (modern frameworks overlap communication with the backward pass), plus a
//! synchronization cost growing with the worker count:
//!
//! ```text
//! t_iter(N, TBS) = max(t_compute(TBS/N), t_allreduce(N)) + t_sync(N)
//! ```
//!
//! This shape yields exactly the paper's two key observations:
//!
//! 1. **Strong scaling** (fixed TBS): throughput rises while compute
//!    dominates, peaks near the compute/communication crossover, then falls
//!    as synchronization grows — and the optimum worker count grows
//!    (roughly linearly) with the total batch size.
//! 2. **Weak scaling** (fixed per-worker batch): compute per worker is
//!    constant, so throughput grows near-linearly, with a steeper slope for
//!    larger per-worker batches.

use elan_sim::SimDuration;

use crate::gpu::GpuSpec;
use crate::interconnect::InterconnectModel;
use crate::zoo::ModelSpec;

/// The complete performance model: GPU + fabric.
///
/// # Examples
///
/// ```
/// use elan_models::{perf::PerfModel, zoo};
///
/// let perf = PerfModel::paper_default();
/// let m = zoo::resnet50();
/// // Weak scaling is near-linear: 64 workers deliver >= 85% of 16x the
/// // 4-worker throughput at the same per-worker batch.
/// let t4 = perf.throughput(&m, 4, 4 * 32);
/// let t64 = perf.throughput(&m, 64, 64 * 32);
/// assert!(t64 > t4 * 16.0 * 0.85);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// The GPU every worker runs on.
    pub gpu: GpuSpec,
    /// The cluster fabric.
    pub interconnect: InterconnectModel,
}

impl PerfModel {
    /// The paper's production testbed: GTX 1080 Ti + 56 Gb/s InfiniBand.
    pub fn paper_default() -> Self {
        PerfModel {
            gpu: GpuSpec::gtx1080ti(),
            interconnect: InterconnectModel::paper_default(),
        }
    }

    /// The V100 servers used for the §III scaling-strategy analysis.
    pub fn v100_testbed() -> Self {
        PerfModel {
            gpu: GpuSpec::v100(),
            interconnect: InterconnectModel::paper_default(),
        }
    }

    /// Duration of one training iteration with `n_workers` and total batch
    /// size `total_batch`.
    ///
    /// # Panics
    ///
    /// Panics if `n_workers` is zero or `total_batch` is zero.
    pub fn iteration_time(
        &self,
        model: &ModelSpec,
        n_workers: u32,
        total_batch: u32,
    ) -> SimDuration {
        assert!(n_workers > 0, "need at least one worker");
        assert!(total_batch > 0, "need a positive batch size");
        let per_worker = total_batch as f64 / n_workers as f64;
        let compute = self.gpu.compute_time(model, per_worker);
        let comm = self
            .interconnect
            .allreduce_time(model.param_bytes(), n_workers);
        compute.max(comm) + self.interconnect.sync_time(n_workers)
    }

    /// Training throughput in samples per second.
    pub fn throughput(&self, model: &ModelSpec, n_workers: u32, total_batch: u32) -> f64 {
        let t = self
            .iteration_time(model, n_workers, total_batch)
            .as_secs_f64();
        total_batch as f64 / t
    }

    /// The optimal number of workers under strong scaling with total batch
    /// `total_batch` — the `N_opt` of Algorithm 1 (§III-3).
    ///
    /// Searches `1..=max_workers`, additionally bounded by `total_batch`
    /// (each worker needs at least one sample).
    pub fn optimal_workers(&self, model: &ModelSpec, total_batch: u32, max_workers: u32) -> u32 {
        assert!(total_batch > 0 && max_workers > 0);
        let hi = max_workers.min(total_batch);
        (1..=hi)
            .max_by(|&a, &b| {
                let ta = self.throughput(model, a, total_batch);
                let tb = self.throughput(model, b, total_batch);
                ta.partial_cmp(&tb).expect("finite throughput")
            })
            .expect("non-empty worker range")
    }

    /// Marginal throughput gain of adding one worker to a job currently on
    /// `n_workers` with `total_batch` — used by the elastic scheduler's
    /// allocation rule (§VI-C).
    pub fn marginal_gain(&self, model: &ModelSpec, n_workers: u32, total_batch: u32) -> f64 {
        self.throughput(model, n_workers + 1, total_batch)
            - self.throughput(model, n_workers, total_batch)
    }

    /// Strong-scaling curve: throughput for each worker count with the
    /// total batch fixed (one Fig. 3 / Fig. 17 line).
    pub fn strong_scaling(
        &self,
        model: &ModelSpec,
        total_batch: u32,
        workers: impl IntoIterator<Item = u32>,
    ) -> Vec<(u32, f64)> {
        workers
            .into_iter()
            .filter(|&n| n > 0 && n <= total_batch)
            .map(|n| (n, self.throughput(model, n, total_batch)))
            .collect()
    }

    /// Weak-scaling curve: throughput for each worker count with the
    /// per-worker batch fixed (one Fig. 4 line).
    pub fn weak_scaling(
        &self,
        model: &ModelSpec,
        batch_per_worker: u32,
        workers: impl IntoIterator<Item = u32>,
    ) -> Vec<(u32, f64)> {
        workers
            .into_iter()
            .filter(|&n| n > 0)
            .map(|n| (n, self.throughput(model, n, n * batch_per_worker)))
            .collect()
    }
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn perf() -> PerfModel {
        PerfModel::paper_default()
    }

    #[test]
    fn strong_scaling_rises_then_falls() {
        // Fig. 3's headline shape for ResNet-50 at TBS 512.
        let p = perf();
        let m = zoo::resnet50();
        let curve = p.strong_scaling(&m, 512, [2, 4, 8, 16, 32, 64, 128]);
        let peak_idx = curve
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
            .unwrap()
            .0;
        assert!(peak_idx > 0, "throughput must rise initially");
        assert!(
            peak_idx < curve.len() - 1,
            "throughput must fall eventually: {curve:?}"
        );
    }

    #[test]
    fn optimal_workers_grow_with_batch_size() {
        // Fig. 3 observation 2 / the premise of Algorithm 1: N_opt(TBS)
        // increases with TBS. Calibrated bands make Algorithm 1 reproduce
        // the paper's elastic config (512→16, 1024→32, 2048→64).
        let p = perf();
        let m = zoo::resnet50();
        let n512 = p.optimal_workers(&m, 512, 256);
        let n1024 = p.optimal_workers(&m, 1024, 256);
        let n2048 = p.optimal_workers(&m, 2048, 256);
        assert!(n512 < n1024 && n1024 < n2048);
        assert!((16..32).contains(&n512), "N_opt(512) = {n512}");
        assert!((32..64).contains(&n1024), "N_opt(1024) = {n1024}");
        assert!(n2048 >= 64, "N_opt(2048) = {n2048}");
    }

    #[test]
    fn weak_scaling_is_near_linear() {
        let p = perf();
        let m = zoo::resnet50();
        let curve = p.weak_scaling(&m, 32, [2, 4, 8, 16, 32, 64]);
        let (n0, t0) = curve[0];
        for &(n, t) in &curve[1..] {
            let ideal = t0 * n as f64 / n0 as f64;
            assert!(t > 0.8 * ideal, "efficiency collapsed at {n} workers");
            assert!(t <= 1.05 * ideal);
        }
    }

    #[test]
    fn weak_scaling_slope_grows_with_batch() {
        // Fig. 4 observation: a larger per-worker batch means a steeper
        // weak-scaling line (higher throughput at every worker count).
        let p = perf();
        let m = zoo::resnet50();
        for n in [4u32, 16, 64] {
            let t32 = p.throughput(&m, n, n * 32);
            let t64 = p.throughput(&m, n, n * 64);
            let t128 = p.throughput(&m, n, n * 128);
            assert!(t32 < t64 && t64 < t128);
        }
    }

    #[test]
    fn vgg_scales_worse_than_mobilenet() {
        // VGG-19's 573 MiB gradients make it communication-bound: its
        // strong-scaling optimum sits far below MobileNet-v2's.
        let p = perf();
        let vgg = p.optimal_workers(&zoo::vgg19(), 512, 256);
        let mob = p.optimal_workers(&zoo::mobilenet_v2(), 512, 256);
        assert!(vgg < mob, "vgg {vgg} vs mobilenet {mob}");
    }

    #[test]
    fn marginal_gain_matches_throughput_difference() {
        let p = perf();
        let m = zoo::transformer();
        let g = p.marginal_gain(&m, 8, 256);
        let expect = p.throughput(&m, 9, 256) - p.throughput(&m, 8, 256);
        assert!((g - expect).abs() < 1e-9);
    }

    #[test]
    fn marginal_gain_turns_negative_past_optimum() {
        let p = perf();
        let m = zoo::resnet50();
        let n_opt = p.optimal_workers(&m, 512, 256);
        assert!(p.marginal_gain(&m, n_opt, 512) <= 0.0);
        assert!(p.marginal_gain(&m, 2, 512) > 0.0);
    }

    #[test]
    fn curves_filter_invalid_worker_counts() {
        let p = perf();
        let m = zoo::resnet50();
        // Workers beyond the batch size can't take part in strong scaling.
        let curve = p.strong_scaling(&m, 4, [1, 2, 4, 8]);
        assert_eq!(curve.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = perf().iteration_time(&zoo::resnet50(), 0, 32);
    }

    #[test]
    fn v100_outperforms_1080ti() {
        let m = zoo::resnet50();
        let a = PerfModel::v100_testbed().throughput(&m, 8, 256);
        let b = PerfModel::paper_default().throughput(&m, 8, 256);
        assert!(a > b);
    }
}
