//! The model zoo: Table I of the paper plus ResNet-50.
//!
//! Parameter counts and per-sample FLOPs are public figures for the
//! reference implementations; state sizes follow from fp32 parameters plus
//! optimizer slots (SGD with momentum keeps one extra copy).

use std::fmt;

use elan_sim::Bytes;

/// Network architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Convolutional network (CV).
    Cnn,
    /// Recurrent network (NLP).
    Rnn,
    /// Attention/Transformer network (NLP).
    Transformer,
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelKind::Cnn => "CNN",
            ModelKind::Rnn => "RNN",
            ModelKind::Transformer => "Transformer",
        };
        f.write_str(s)
    }
}

/// A trainable model's workload characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Human-readable name, e.g. `"ResNet-50"`.
    pub name: &'static str,
    /// Architecture family.
    pub kind: ModelKind,
    /// Application domain, e.g. `"CV"`.
    pub domain: &'static str,
    /// Trainable parameter count.
    pub parameters: u64,
    /// Forward+backward GFLOPs per training sample.
    pub gflops_per_sample: f64,
    /// Batch size at which the GPU reaches half of its peak efficiency
    /// (small models need larger batches to saturate).
    pub half_saturation_batch: f64,
    /// Dataset the paper trains this model on.
    pub dataset: &'static str,
    /// Samples per epoch in that dataset.
    pub dataset_size: u64,
    /// Largest per-worker batch that fits an 11 GB GPU.
    pub max_batch_per_worker: u32,
}

impl ModelSpec {
    /// Bytes of fp32 parameters (the gradient/allreduce payload).
    pub fn param_bytes(&self) -> Bytes {
        Bytes::new(self.parameters * 4)
    }

    /// Bytes of GPU-resident training state: parameters + gradients +
    /// SGD-momentum slot (3× parameters in fp32).
    pub fn gpu_state_bytes(&self) -> Bytes {
        Bytes::new(self.parameters * 4 * 3)
    }

    /// Bytes of CPU-resident state (data-loader cursor, RNG, runtime info).
    /// Small by construction (§IV-1, Table II).
    pub fn cpu_state_bytes(&self) -> Bytes {
        Bytes::from_kib(64)
    }
}

/// ResNet-50 on ImageNet — the paper's elastic-training workload (§VI-B).
pub fn resnet50() -> ModelSpec {
    ModelSpec {
        name: "ResNet-50",
        kind: ModelKind::Cnn,
        domain: "CV",
        parameters: 25_557_032,
        gflops_per_sample: 12.4,
        half_saturation_batch: 8.0,
        dataset: "ImageNet",
        dataset_size: 1_281_167,
        max_batch_per_worker: 128,
    }
}

/// VGG-19 on ImageNet (Table I) — parameter-heavy CNN.
pub fn vgg19() -> ModelSpec {
    ModelSpec {
        name: "VGG-19",
        kind: ModelKind::Cnn,
        domain: "CV",
        parameters: 143_667_240,
        gflops_per_sample: 62.0,
        half_saturation_batch: 6.0,
        dataset: "ImageNet",
        dataset_size: 1_281_167,
        max_batch_per_worker: 48,
    }
}

/// MobileNet-v2 on ImageNet (Table I) — compute-light CNN.
pub fn mobilenet_v2() -> ModelSpec {
    ModelSpec {
        name: "MobileNet-v2",
        kind: ModelKind::Cnn,
        domain: "CV",
        parameters: 3_504_872,
        gflops_per_sample: 1.0,
        half_saturation_batch: 32.0,
        dataset: "ImageNet",
        dataset_size: 1_281_167,
        max_batch_per_worker: 512,
    }
}

/// MobileNet-v2 on Cifar100 — the Fig. 5 batch-size/accuracy workload.
pub fn mobilenet_v2_cifar100() -> ModelSpec {
    ModelSpec {
        name: "MobileNet-v2/Cifar100",
        kind: ModelKind::Cnn,
        domain: "CV",
        parameters: 2_351_972,
        gflops_per_sample: 0.09,
        half_saturation_batch: 64.0,
        dataset: "Cifar100",
        dataset_size: 50_000,
        max_batch_per_worker: 1024,
    }
}

/// Seq2Seq (GNMT-style) on Tatoeba (Table I) — RNN translation model.
pub fn seq2seq() -> ModelSpec {
    ModelSpec {
        name: "Seq2Seq",
        kind: ModelKind::Rnn,
        domain: "NLP",
        parameters: 45_000_000,
        gflops_per_sample: 4.5,
        half_saturation_batch: 16.0,
        dataset: "Tatoeba",
        dataset_size: 500_000,
        max_batch_per_worker: 256,
    }
}

/// Transformer (base) on WMT'16 (Table I).
pub fn transformer() -> ModelSpec {
    ModelSpec {
        name: "Transformer",
        kind: ModelKind::Transformer,
        domain: "NLP",
        parameters: 47_000_000,
        gflops_per_sample: 11.0,
        half_saturation_batch: 12.0,
        dataset: "WMT'16",
        dataset_size: 4_500_000,
        max_batch_per_worker: 128,
    }
}

/// BERT-Large — the paper's §I example of heavyweight training state
/// ("more than 340 million parameters, which occupy more than 1GB").
pub fn bert_large() -> ModelSpec {
    ModelSpec {
        name: "BERT-Large",
        kind: ModelKind::Transformer,
        domain: "NLP",
        parameters: 340_000_000,
        gflops_per_sample: 240.0,
        half_saturation_batch: 4.0,
        dataset: "Wikipedia+BookCorpus",
        dataset_size: 3_300_000,
        max_batch_per_worker: 8,
    }
}

/// The five models used in the adjustment-performance experiments
/// (Fig. 15 labels A–E).
pub fn evaluation_models() -> Vec<ModelSpec> {
    vec![
        resnet50(),
        vgg19(),
        mobilenet_v2(),
        seq2seq(),
        transformer(),
    ]
}

/// Looks up a model by its display name.
pub fn by_name(name: &str) -> Option<ModelSpec> {
    let all = [
        resnet50(),
        vgg19(),
        mobilenet_v2(),
        mobilenet_v2_cifar100(),
        seq2seq(),
        transformer(),
        bert_large(),
    ];
    all.into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameter_sizes() {
        // Table I: VGG-19 143M, MobileNet-v2 3M, Seq2Seq 45M, Transformer 47M.
        assert_eq!(vgg19().parameters / 1_000_000, 143);
        assert_eq!(mobilenet_v2().parameters / 1_000_000, 3);
        assert_eq!(seq2seq().parameters / 1_000_000, 45);
        assert_eq!(transformer().parameters / 1_000_000, 47);
        assert_eq!(resnet50().parameters / 1_000_000, 25);
    }

    #[test]
    fn param_bytes_are_fp32() {
        let m = resnet50();
        assert_eq!(m.param_bytes().as_u64(), m.parameters * 4);
        // ResNet-50 fp32 ≈ 97.5 MiB.
        let mib = m.param_bytes().as_f64() / (1024.0 * 1024.0);
        assert!((97.0..99.0).contains(&mib), "got {mib}");
    }

    #[test]
    fn gpu_state_includes_optimizer() {
        let m = vgg19();
        assert_eq!(m.gpu_state_bytes().as_u64(), m.param_bytes().as_u64() * 3);
    }

    #[test]
    fn cpu_state_is_small() {
        // §IV-1: CPU states are quite small compared to GPU states.
        for m in evaluation_models() {
            assert!(m.cpu_state_bytes().as_u64() * 100 < m.gpu_state_bytes().as_u64());
        }
    }

    #[test]
    fn by_name_finds_all() {
        for m in evaluation_models() {
            assert_eq!(by_name(m.name).unwrap(), m);
        }
        assert!(by_name("AlexNet").is_none());
    }

    #[test]
    fn bert_states_exceed_a_gigabyte() {
        // §I: "BERT has more than 340 million parameters, which occupy
        // more than 1GB memory" — and 3x that with gradients+optimizer.
        let bert = bert_large();
        assert!(bert.param_bytes().as_u64() > 1_000_000_000);
        assert!(bert.gpu_state_bytes() > elan_sim::Bytes::from_gib(3));
    }

    #[test]
    fn evaluation_set_has_five_models() {
        let models = evaluation_models();
        assert_eq!(models.len(), 5);
        let mut names: Vec<_> = models.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
